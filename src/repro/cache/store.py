"""A persistent, directory-sharded, LRU-evicted JSON payload store.

This is the disk tier of the evaluation cache (``docs/service.md``):
entries are JSON mappings keyed by SHA-256 hex digests, written one file
per entry under 256 two-hex-digit shard directories::

    <root>/shards/ab/abcdef....json

Design constraints, in the order they drove the implementation:

- **Crash/restart durability** — writes go to a temp file in the shard
  directory and are published with an atomic ``os.replace``; a reader
  never observes a half-written entry, and a store killed mid-write
  loses at most the entry being written.
- **Corruption tolerance** — a file that fails to read, parse, or match
  its expected key/schema is counted, deleted, and reported as a miss;
  a damaged shard can never poison a repair run.
- **Bounded footprint** — total payload bytes are capped
  (``max_bytes``); eviction is least-recently-*used* (reads refresh both
  the in-memory LRU order and the file mtime, so the order survives a
  restart approximately).
- **Concurrent use** — instances are thread-safe (one lock around index
  mutations), and multiple *processes* sharing a root cooperate through
  the filesystem: an index miss falls through to a direct file probe, so
  entries written by a sibling process after this instance scanned the
  directory are still found.

The store is payload-agnostic: it moves ``dict`` payloads and knows
nothing about candidate results — see
:func:`repro.core.backend.encode_eval_payload` for the schema layered on
top of it.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from collections import OrderedDict
from pathlib import Path

logger = logging.getLogger("repro.cache")

#: On-disk entry schema version; bump on incompatible layout changes.
#: Entries with a different schema are treated as corrupt (dropped).
STORE_SCHEMA = 1

#: Hex digits of the key used as the shard directory name (256 shards).
_SHARD_CHARS = 2

#: Characters allowed in a store key (a SHA-256 hex digest).
_HEX = frozenset("0123456789abcdef")


def _is_key(key: str) -> bool:
    """True for a well-formed SHA-256 hex key."""
    return len(key) == 64 and set(key) <= _HEX


class PersistentEvalCache:
    """Sharded on-disk payload cache with byte-budget LRU eviction.

    Construct directly for a private instance, or go through
    :meth:`open` to share one instance per resolved root path within the
    process (the repair service does this so every job sees one set of
    statistics and one LRU order).
    """

    #: Process-wide shared instances, keyed by resolved root path.
    _shared: dict[Path, "PersistentEvalCache"] = {}
    _shared_lock = threading.Lock()

    def __init__(self, root: str | Path, max_bytes: int = 0):
        #: Root directory (created eagerly; shard dirs are made on demand).
        self.root = Path(root)
        #: Total payload budget in bytes; 0 = unbounded.
        self.max_bytes = max(0, int(max_bytes))
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        #: Entries dropped because they failed to read/parse/verify.
        self.corrupt_dropped = 0
        self._lock = threading.RLock()
        #: key → file size in bytes, in least-recently-used-first order.
        self._index: OrderedDict[str, int] = OrderedDict()
        self._bytes = 0
        (self.root / "shards").mkdir(parents=True, exist_ok=True)
        self._scan()

    # ------------------------------------------------------------------
    # Shared-instance registry
    # ------------------------------------------------------------------

    @classmethod
    def open(cls, root: str | Path, max_bytes: int = 0) -> "PersistentEvalCache":
        """One shared instance per resolved root path (process-wide).

        The first open of a root fixes its ``max_bytes``; later opens of
        the same root reuse the instance (a *larger* requested budget
        widens it, so concurrent jobs never fight over a narrower cap).
        """
        resolved = Path(root).resolve()
        with cls._shared_lock:
            store = cls._shared.get(resolved)
            if store is None:
                store = cls(resolved, max_bytes)
                cls._shared[resolved] = store
            elif max_bytes > store.max_bytes:
                store.max_bytes = int(max_bytes)
            return store

    @classmethod
    def reset_shared(cls) -> None:
        """Forget all shared instances (tests: force a fresh disk scan)."""
        with cls._shared_lock:
            cls._shared.clear()

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """Return the payload stored under ``key``, or None.

        A hit refreshes the entry's LRU position and file mtime; a
        damaged entry is deleted and reported as a miss.  An index miss
        probes the filesystem directly, so entries written by another
        process after this instance's startup scan are still found.
        """
        if not _is_key(key):
            raise ValueError(f"bad store key {key!r} (expected sha256 hex)")
        path = self._path(key)
        with self._lock:
            known = key in self._index
            if not known:
                try:
                    size = path.stat().st_size
                except OSError:
                    self.misses += 1
                    return None
                # Written by a sibling process since our scan: adopt it.
                self._admit(key, size)
            payload = self._read(key, path)
            if payload is None:
                self.misses += 1
                return None
            self._index.move_to_end(key)
            self.hits += 1
        try:
            os.utime(path)  # refresh mtime so LRU order survives restarts
        except OSError:  # pragma: no cover - best-effort
            pass
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Store ``payload`` under ``key`` (atomic publish, then evict).

        Overwrites an existing entry; storage failures are logged and
        swallowed (a full disk degrades the cache, never the caller).
        """
        if not _is_key(key):
            raise ValueError(f"bad store key {key!r} (expected sha256 hex)")
        record = {"schema": STORE_SCHEMA, "key": key, "payload": payload}
        try:
            data = json.dumps(record, separators=(",", ":")).encode("utf-8")
        except (TypeError, ValueError):
            logger.warning("unserializable cache payload for %s; skipping", key[:12])
            return
        path = self._path(key)
        tmp = path.with_suffix(".tmp.%d" % os.getpid())
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(data)
            os.replace(tmp, path)
        except OSError as exc:
            logger.warning("cache store failed for %s (%s)", key[:12], exc)
            tmp.unlink(missing_ok=True)
            return
        with self._lock:
            self._admit(key, len(data))
            self._index.move_to_end(key)
            self.stores += 1
            self._evict()

    def __contains__(self, key: str) -> bool:
        """True when ``key`` is present (no LRU refresh, no stats)."""
        with self._lock:
            return key in self._index or self._path(key).exists()

    def __len__(self) -> int:
        return len(self._index)

    def info(self) -> dict[str, int]:
        """Counters and occupancy (benchmarks, tests, ``repro jobs``)."""
        with self._lock:
            return {
                "entries": len(self._index),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "corrupt_dropped": self.corrupt_dropped,
            }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / "shards" / key[:_SHARD_CHARS] / f"{key}.json"

    def _admit(self, key: str, size: int) -> None:
        """Add/update one index entry (lock held)."""
        self._bytes += size - self._index.get(key, 0)
        self._index[key] = size

    def _scan(self) -> None:
        """Rebuild the index from disk, oldest-mtime first (startup).

        Ordered by ``(st_mtime_ns, key)``: nanosecond mtimes plus the
        key tie-break make the rebuilt LRU order — and therefore the
        eviction order — deterministic even on filesystems with coarse
        timestamps, where a whole run's entries can share one mtime.
        """
        found: list[tuple[int, str, int]] = []
        shards = self.root / "shards"
        try:
            for shard in shards.iterdir():
                if not shard.is_dir():
                    continue
                for path in shard.iterdir():
                    key = path.name[: -len(".json")] if path.name.endswith(".json") else ""
                    if not _is_key(key):
                        continue  # temp files, strays
                    try:
                        stat = path.stat()
                    except OSError:  # pragma: no cover - racing deletion
                        continue
                    found.append((stat.st_mtime_ns, key, stat.st_size))
        except OSError:  # pragma: no cover - unreadable root
            logger.warning("cache scan failed under %s", shards)
        for _, key, size in sorted(found):
            self._admit(key, size)

    def _read(self, key: str, path: Path) -> dict | None:
        """Load and verify one entry; drop it on any defect (lock held)."""
        try:
            record = json.loads(path.read_bytes())
            if (
                not isinstance(record, dict)
                or record.get("schema") != STORE_SCHEMA
                or record.get("key") != key
                or not isinstance(record.get("payload"), dict)
            ):
                raise ValueError("malformed cache entry")
        except (OSError, ValueError):
            self._drop(key, path)
            return None
        return record["payload"]

    def _drop(self, key: str, path: Path) -> None:
        """Delete a corrupt entry (lock held)."""
        self.corrupt_dropped += 1
        logger.warning("dropping corrupt cache entry %s", key[:12])
        self._forget(key)
        try:
            path.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - best-effort
            pass

    def _forget(self, key: str) -> None:
        size = self._index.pop(key, None)
        if size is not None:
            self._bytes -= size

    def _evict(self) -> None:
        """Evict least-recently-used entries over budget (lock held).

        The newest entry is never evicted, so one oversized payload
        cannot wedge the store into thrashing itself empty.
        """
        if self.max_bytes <= 0:
            return
        while self._bytes > self.max_bytes and len(self._index) > 1:
            key, size = self._index.popitem(last=False)
            self._bytes -= size
            self.evictions += 1
            try:
                self._path(key).unlink(missing_ok=True)
            except OSError:  # pragma: no cover - best-effort
                pass
