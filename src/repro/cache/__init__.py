"""Persistent, sharded, content-addressed caching (``repro.cache``).

The in-memory :class:`repro.core.backend.EvalCache` deduplicates repeated
candidate evaluations *within* one backend's lifetime; this package adds
the disk tier underneath it, so identical candidates are never simulated
twice **across jobs, processes, or daemon restarts** (the repair-as-a-
service workload — see ``docs/service.md``).

- :class:`PersistentEvalCache` — a directory-sharded JSON payload store
  keyed by SHA-256 hex digests, with byte-budget LRU eviction and
  corruption-tolerant reads.  It stores plain JSON mappings and knows
  nothing about candidate results; the encoding of
  :class:`~repro.core.backend.CandidateResult` payloads (and the
  *context digest* that keeps entries from aliasing across configs)
  lives next to ``EvalCache`` in :mod:`repro.core.backend`.
"""

from __future__ import annotations

from .store import PersistentEvalCache

__all__ = ["PersistentEvalCache"]
