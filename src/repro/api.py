"""High-level facade over the repro package (the stable entry points).

Callers — the CLI, the service daemon, the experiment drivers, notebooks
— should not need to know which internal module owns oracles, backends,
or fault localization.  This module collects the operations the paper's
pipeline is built from behind small functions:

- :func:`run_request` — execute one typed, versioned
  :class:`~repro.service.jobs.RepairRequest` (the canonical repair entry
  point; everything else funnels into it);
- :func:`repair_scenario` / :func:`repair_verilog` — convenience
  wrappers building a request from a benchmark scenario id or raw
  Verilog texts;
- :func:`localize` — Algorithm 2 on its own: simulate the faulty design
  once and return the implicated node set;
- :func:`simulate` — run a design (optionally under a testbench,
  optionally instrumented) and return the :class:`~repro.sim.SimResult`;
- :func:`lint` — static analysis (``repro.lint``) over a design source
  or AST, returning the :class:`~repro.lint.LintReport`;

plus the supporting constructors :func:`build_problem` (file-based, the
artifact's ``repair.conf`` workflow) and :func:`materialize_request`
(request → ready-to-run problem/config pair).

Every repair entry point accepts ``observers`` (:mod:`repro.obs`
instances receiving the engine's event stream — they never influence the
search), ``engine`` (a name registered in :mod:`repro.core.engines`;
built-ins are ``"cirfix"`` — the default GP loop — plus ``"synth"``
and ``"race"`` from :mod:`repro.synth`, see ``docs/synthesis.md``),
and ``cancel`` (a zero-argument callable polled cooperatively between
generations).

Compatibility: ``repair_scenario`` and ``repair_verilog`` historically
took ``config``/``seeds``/``observers`` positionally.  Those calls still
work but emit a :class:`DeprecationWarning`; pass them by keyword.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Callable, Sequence

from .core.config import RepairConfig
from .core.engines import DEFAULT_ENGINE, get_engine
from .core.faultloc import FaultLocalization, localize_faults
from .core.oracle import combine_sources, ensure_instrumented, generate_oracle
from .core.repair import RepairOutcome, RepairProblem
from .hdl import ast, parse
from .instrument.trace import SimulationTrace, output_mismatch
from .obs.observer import RepairObserver
from .service.jobs import RepairRequest
from .sim.simulator import SimResult, Simulator

__all__ = [
    "build_problem",
    "lint",
    "localize",
    "materialize_request",
    "repair_scenario",
    "repair_verilog",
    "run_request",
    "simulate",
]


def _as_source(design: "ast.Source | str") -> ast.Source:
    """Parse ``design`` if it is text; pass an AST through unchanged."""
    return parse(design) if isinstance(design, str) else design


def _as_problem(
    scenario: "str | object",
    config: RepairConfig,
) -> tuple[RepairProblem, RepairConfig]:
    """Resolve a scenario spec to ``(problem, scaled_config)``.

    Accepts a benchmark scenario id (``"dec_numeric"``),
    a :class:`~repro.benchsuite.Scenario`, or a ready
    :class:`RepairProblem` (returned unchanged, config unscaled).
    """
    if isinstance(scenario, RepairProblem):
        return scenario, config
    # Lazy import: the benchsuite loads all 32 scenarios' sources.
    from .benchsuite import Scenario, load_scenario

    if isinstance(scenario, str):
        scenario = load_scenario(scenario)
    if not isinstance(scenario, Scenario):
        raise TypeError(
            "scenario must be a scenario id, a Scenario, or a RepairProblem "
            f"(got {type(scenario).__name__})"
        )
    return scenario.problem(), scenario.suggested_config(config)


def materialize_request(
    request: RepairRequest,
    base_config: RepairConfig | None = None,
) -> tuple[RepairProblem, RepairConfig]:
    """Turn a typed request into a ready-to-run ``(problem, config)``.

    Validates the request, applies its config overrides on top of
    ``base_config``, resolves the scenario id or parses the raw texts,
    and — for benchmark scenarios — applies the per-scenario simulation
    bounds (``Scenario.suggested_config``), exactly like a direct
    ``repro repair`` of the same inputs.
    """
    request.validate()
    config = request.resolved_config(base_config)
    if request.scenario:
        return _as_problem(request.scenario, config)
    faulty = parse(request.design)
    bench = parse(request.testbench)
    if request.golden:
        golden = parse(request.golden)
        bench = ensure_instrumented(bench, golden)
        oracle = generate_oracle(golden, bench)
    else:
        bench = ensure_instrumented(bench, faulty)
        oracle = SimulationTrace.from_csv(request.oracle_csv)
    return RepairProblem(faulty, bench, oracle), config


def run_request(
    request: RepairRequest,
    base_config: RepairConfig | None = None,
    observers: Sequence[RepairObserver] | None = None,
    cancel: Callable[[], bool] | None = None,
    checkpoint: "Callable[[dict], None] | None" = None,
) -> RepairOutcome:
    """Execute one :class:`~repro.service.jobs.RepairRequest`.

    The canonical repair entry point: the service daemon, the CLI, and
    the convenience wrappers below all funnel through here, so a request
    submitted over the service protocol and the same request run
    in-process produce bit-identical outcomes.

    ``checkpoint`` (crash recovery, ``docs/service.md``) receives the
    engine's deterministic cursor snapshot at every search boundary; the
    daemon passes a journal-backed sink, batch callers leave it None.
    """
    problem, config = materialize_request(request, base_config)
    runner = get_engine(request.engine)
    return runner(
        problem,
        config,
        request.seeds,
        observers=observers,
        cancel=cancel,
        checkpoint=checkpoint,
    )


def _merge_positional(name: str, extras: tuple, config, seeds, observers):
    """Map legacy positional ``config, seeds, observers`` onto keywords.

    Emits the :class:`DeprecationWarning` and overlays the positional
    values in their historical order, leaving keyword-supplied later
    arguments untouched (matching the old signature's semantics).
    """
    warnings.warn(
        f"passing config/seeds/observers positionally to {name}() is "
        "deprecated; pass them as keyword arguments",
        DeprecationWarning,
        stacklevel=3,
    )
    if len(extras) > 3:
        raise TypeError(f"{name}() takes at most 3 positional extras")
    slots = [config, seeds, observers]
    for index, value in enumerate(extras):
        slots[index] = value
    return tuple(slots)


def repair_scenario(
    scenario: "str | object",
    *deprecated,
    config: RepairConfig | None = None,
    seeds: tuple[int, ...] = (0, 1, 2),
    observers: Sequence[RepairObserver] | None = None,
    engine: str = DEFAULT_ENGINE,
    cancel: Callable[[], bool] | None = None,
) -> RepairOutcome:
    """Run repair trials on a scenario and return the chosen outcome.

    The first plausible trial wins; otherwise the best-fitness trial is
    returned.  Benchmark scenarios get their per-scenario simulation
    bounds applied via ``Scenario.suggested_config``.  ``scenario`` may
    be a benchmark id (routed through :func:`run_request`), or an
    in-memory :class:`~repro.benchsuite.Scenario` /
    :class:`RepairProblem` (the non-serializable escape hatch).
    """
    if deprecated:
        config, seeds, observers = _merge_positional(
            "repair_scenario", deprecated, config, seeds, observers
        )
    if isinstance(scenario, str):
        request = RepairRequest(
            scenario=scenario, seeds=tuple(seeds), engine=engine
        )
        return run_request(
            request, base_config=config, observers=observers, cancel=cancel
        )
    problem, scaled = _as_problem(scenario, config or RepairConfig())
    runner = get_engine(engine)
    return runner(problem, scaled, tuple(seeds), observers=observers, cancel=cancel)


def repair_verilog(
    faulty_design: str,
    testbench: str,
    golden_design: str,
    *deprecated,
    config: RepairConfig | None = None,
    seeds: tuple[int, ...] = (0, 1, 2),
    observers: Sequence[RepairObserver] | None = None,
    engine: str = DEFAULT_ENGINE,
    cancel: Callable[[], bool] | None = None,
) -> RepairOutcome:
    """One-call repair: oracle from the golden design, then run repair.

    Args:
        faulty_design: Verilog source of the design to repair.
        testbench: Verilog testbench (instrumented automatically if it has
            no ``$cirfix_record`` hook).
        golden_design: A previously-functioning version of the design used
            to generate the expected-behaviour trace (paper §4.1.2).
        config: Search budget; defaults to paper-style parameters — pass
            :data:`repro.core.config.TEST_CONFIG` or a custom config for
            laptop-scale runs.
        seeds: Independent trial seeds; the first plausible repair wins.
        observers: Optional :mod:`repro.obs` observers receiving the
            engine's event stream.
        engine: Registered repair engine name (default ``"cirfix"``).
        cancel: Optional cooperative cancel callable (polled between
            generations; True stops the search at the next boundary).

    Returns:
        The best :class:`RepairOutcome` across trials.
    """
    if deprecated:
        config, seeds, observers = _merge_positional(
            "repair_verilog", deprecated, config, seeds, observers
        )
    request = RepairRequest(
        design=faulty_design,
        testbench=testbench,
        golden=golden_design,
        seeds=tuple(seeds),
        engine=engine,
    )
    return run_request(
        request, base_config=config, observers=observers, cancel=cancel
    )


def build_problem(
    source: "str | Path",
    testbench: "str | Path",
    golden: "str | Path | None" = None,
    oracle: "str | Path | None" = None,
) -> RepairProblem:
    """Assemble a :class:`RepairProblem` from files (the artifact workflow).

    Exactly one oracle source is required: ``golden`` (a
    previously-functioning design, simulated to produce the expected
    trace) or ``oracle`` (an expected-behaviour CSV in the Figure 2
    shape).  Raises :class:`ValueError` when neither is given.
    """
    source = Path(source)
    faulty = parse(source.read_text())
    testbench_ast = parse(Path(testbench).read_text())
    if golden is not None:
        golden_ast = parse(Path(golden).read_text())
        bench = ensure_instrumented(testbench_ast, golden_ast)
        oracle_trace = generate_oracle(golden_ast, bench)
    elif oracle is not None:
        bench = ensure_instrumented(testbench_ast, faulty)
        oracle_trace = SimulationTrace.from_csv(Path(oracle).read_text())
    else:
        raise ValueError("provide either a golden design or an oracle CSV")
    return RepairProblem(faulty, bench, oracle_trace, name=source.stem)


def localize(
    scenario: "str | object",
    config: RepairConfig | None = None,
) -> FaultLocalization:
    """Run fault localization (Algorithm 2) on the unpatched design.

    Simulates the faulty design once under its instrumented testbench,
    diffs the trace against the oracle, and returns the implicated node
    set.  An empty mismatch yields an empty localization (the design
    already matches its oracle).
    """
    config = config or RepairConfig()
    problem, scaled = _as_problem(scenario, config)
    sim = Simulator(
        combine_sources(problem.design, problem.testbench),
        max_steps=scaled.max_sim_steps,
    )
    result = sim.run(scaled.max_sim_time)
    trace = SimulationTrace.from_records(result.trace)
    mismatch = output_mismatch(problem.oracle, trace)
    if not mismatch:
        return FaultLocalization()
    return localize_faults(problem.design, mismatch)


def lint(design: "ast.Source | str", rules: "str | None" = None):
    """Run static analysis over a design and return the report.

    Args:
        design: Verilog source text or an already-parsed
            :class:`~repro.hdl.ast.Source`.
        rules: Optional comma-separated rule codes/slugs (``"L001"``,
            ``"multi-driver"``, …); ``None`` or ``"all"`` runs the full
            catalog.  Raises ``ValueError`` for unknown entries.

    Returns:
        The :class:`~repro.lint.LintReport`; ``report.ok`` is True when
        there are no findings, and ``report.profile()`` gives per-rule
        counts (the currency of the repair engine's candidate gate).
    """
    from .lint import lint_tree, resolve_rules

    return lint_tree(_as_source(design), resolve_rules(rules))


def simulate(
    design: "ast.Source | str",
    testbench: "ast.Source | str | None" = None,
    record: bool = False,
    max_time: int = 1_000_000,
    max_steps: int = 5_000_000,
) -> SimResult:
    """Simulate a design, optionally under a testbench.

    With ``record=True`` the testbench is instrumented with a
    ``$cirfix_record`` hook first (if it lacks one), so
    ``result.trace`` carries the sampled output signals.
    """
    design = _as_source(design)
    if testbench is not None:
        bench = _as_source(testbench)
        if record:
            bench = ensure_instrumented(bench, design)
        source = combine_sources(design, bench)
    else:
        source = design
    return Simulator(source, max_steps=max_steps).run(max_time)
