"""Typed run-telemetry events (the ``repro.obs`` event schema).

Every interesting moment of a repair run is described by one frozen
dataclass below.  Events are *pure data*: producers (the engine, the
backends) compute their fields from values the search has already
derived, so attaching observers can never perturb the search itself —
a fixed-seed run emits the same event sequence whether zero or ten
observers are listening, and the :class:`~repro.core.repair.RepairOutcome`
is bit-identical either way.

Determinism contract
--------------------

For a fixed seed the *sequence of event types* (and every non-timing
field) is identical across evaluation backends (``serial`` vs
``process``): events are emitted only at points of the engine's
deterministic schedule (unique candidate evaluations counted by
``eval_sims``, chunk boundaries, generation boundaries).  Wall-clock
fields — everything named in :data:`WALL_TIME_FIELDS`, plus the ``ts``
stamp added by :class:`~repro.obs.jsonl.JsonlTraceObserver` — are the
only values that vary between runs and backends.

Serialisation
-------------

``event.to_dict()`` yields a JSON-ready mapping with a ``type`` tag;
:func:`event_from_dict` reverses it (ignoring unknown keys, so traces
written by newer schema versions still load).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar

#: Fields whose values are wall-clock measurements: excluded from any
#: cross-backend or golden-file comparison (see ``docs/observability.md``).
WALL_TIME_FIELDS = frozenset({"ts", "wall_seconds", "seconds", "elapsed_seconds"})


@dataclass(frozen=True)
class RepairEvent:
    """Base class for all telemetry events."""

    type: ClassVar[str] = "event"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping with the ``type`` tag first."""
        return {"type": self.type, **dataclasses.asdict(self)}


@dataclass(frozen=True)
class TrialStarted(RepairEvent):
    """One engine trial (scenario × seed) is starting."""

    type: ClassVar[str] = "trial_started"
    scenario: str
    seed: int
    backend: str
    workers: int
    population_size: int
    max_generations: int


@dataclass(frozen=True)
class CandidateEvaluated(RepairEvent):
    """One *unique* candidate design was scored (an ``eval_sims`` tick).

    Emitted exactly once per unique design text the engine evaluates —
    cache hits and backend-dependent trace-refresh re-simulations do not
    emit, which is what keeps the event sequence identical across
    backends.  ``sim_events``/``sim_steps`` come from the simulator's
    scheduler counters; when the candidate ran in a pool worker they are
    measured worker-side and batched back with the chunk results.
    """

    type: ClassVar[str] = "candidate_evaluated"
    fitness: float
    compiled: bool
    wall_seconds: float
    sim_events: int
    sim_steps: int


@dataclass(frozen=True)
class CandidatePruned(RepairEvent):
    """The lint gate rejected a candidate before simulation.

    Emitted once per unique design text the gate rejects (duplicates of
    a pruned candidate hit the evaluation cache, like any other repeat).
    ``new_violations`` maps each gated rule code to how many findings the
    candidate added over the buggy baseline; ``rules`` is the canonical
    comma-joined code list the gate compared.  Pruned candidates consume
    no simulation budget, so they never tick ``eval_sims``.
    """

    type: ClassVar[str] = "candidate_pruned"
    new_violations: dict[str, int]
    rules: str


@dataclass(frozen=True)
class GenerationCompleted(RepairEvent):
    """A generation's population is fully scored.

    ``generation`` 0 is the seed population.  Fitness statistics cover
    the candidates whose fitness is known at the boundary (an early-stop
    generation may leave some unevaluated).  ``operator_stats`` is a
    cumulative snapshot of reproduction-path usage counts.
    """

    type: ClassVar[str] = "generation_completed"
    generation: int
    population: int
    best_fitness: float
    fitness_min: float
    fitness_mean: float
    fitness_max: float
    eval_sims: int
    operator_stats: dict[str, int]


@dataclass(frozen=True)
class BackendChunkDispatched(RepairEvent):
    """A chunk of unique candidates is about to go to the backend."""

    type: ClassVar[str] = "backend_chunk_dispatched"
    chunk: int
    size: int
    #: The adaptive chunk size the engine chose for this generation
    #: (:func:`repro.core.repair.adaptive_chunk_size`); the final chunk
    #: of a generation may be smaller (``size <= chunk_size``).
    chunk_size: int = 0


@dataclass(frozen=True)
class BackendChunkCompleted(RepairEvent):
    """The backend returned a chunk's results."""

    type: ClassVar[str] = "backend_chunk_completed"
    chunk: int
    size: int
    wall_seconds: float


@dataclass(frozen=True)
class CandidateTimedOut(RepairEvent):
    """The supervised pool killed a candidate that exceeded its deadline.

    Emitted (via the engine, which drains backend incidents at chunk
    boundaries) once per timed-out dispatch attempt.  ``quarantined``
    marks the final attempt — the candidate scored a deterministic
    :class:`~repro.core.backend.EvalFailure`; otherwise it was requeued.
    Fault-path only: a run with no deadline hits emits none of these, so
    golden traces are unaffected.
    """

    type: ClassVar[str] = "candidate_timed_out"
    deadline_seconds: float
    attempt: int
    quarantined: bool


@dataclass(frozen=True)
class WorkerCrashed(RepairEvent):
    """An evaluation worker died (or contained a fatal candidate failure).

    ``kind`` is ``"crash"`` or ``"oom"``; ``exitcode`` is the worker's
    exit code when the process died (negative = killed by that signal),
    or None when the worker survived and reported the failure itself.
    The pool respawned the worker; the candidate was requeued or, when
    ``quarantined``, scored as an :class:`~repro.core.backend.EvalFailure`.
    Fault-path only — never emitted by a healthy run.
    """

    type: ClassVar[str] = "worker_crashed"
    kind: str
    exitcode: int | None
    attempt: int
    quarantined: bool


@dataclass(frozen=True)
class ChunkRetried(RepairEvent):
    """A chunk needed supervised re-dispatches to complete.

    Emitted after the chunk's ``backend_chunk_completed`` when any of its
    candidates were requeued (``requeued`` counts the re-dispatches).
    Quarantined-only failures do not emit this.  Fault-path only.
    """

    type: ClassVar[str] = "chunk_retried"
    chunk: int
    requeued: int


@dataclass(frozen=True)
class PlausiblePatchFound(RepairEvent):
    """A candidate reached fitness 1.0 (before minimization)."""

    type: ClassVar[str] = "plausible_patch_found"
    generation: int
    fitness: float
    edits: int


@dataclass(frozen=True)
class PhaseCompleted(RepairEvent):
    """Aggregate wall-clock spent in one pipeline phase over a trial.

    Phases are ``parse`` (candidate parse/splice/elaborate, a sub-span of
    ``evaluation``), ``localization`` (fault localization excluding the
    evaluations it triggers), ``evaluation`` (all candidate scoring), and
    ``minimization`` (delta debugging excluding its evaluations).  One
    event per phase is emitted at the end of every trial, in that order.
    """

    type: ClassVar[str] = "phase_completed"
    phase: str
    seconds: float


@dataclass(frozen=True)
class TrialCompleted(RepairEvent):
    """One engine trial finished (counters mirror ``RepairOutcome``)."""

    type: ClassVar[str] = "trial_completed"
    plausible: bool
    fitness: float
    generations: int
    eval_sims: int
    fitness_evals: int
    simulations: int
    edits: int
    elapsed_seconds: float
    #: Unique candidates the lint gate rejected (0 when the gate is off).
    pruned: int = 0
    #: Candidates the supervised pool quarantined (0 on healthy runs).
    quarantined: int = 0


@dataclass(frozen=True)
class JobAdmitted(RepairEvent):
    """The service daemon accepted (or joined) one repair job.

    ``joined`` is True when an identical job — same
    ``(design, testbench, config, seeds, engine)`` key — was already
    queued or running and this submission attached to it instead of
    enqueuing new work.  ``queue_depth`` counts jobs waiting *after*
    admission.  Service-path only: batch runs never emit job events.
    """

    type: ClassVar[str] = "job_admitted"
    job_id: str
    tenant: str
    scenario: str
    joined: bool
    queue_depth: int


@dataclass(frozen=True)
class JobStarted(RepairEvent):
    """A queued job was scheduled onto the evaluation backend."""

    type: ClassVar[str] = "job_started"
    job_id: str
    tenant: str
    #: Jobs running daemon-wide the moment this one started (inclusive).
    running: int


@dataclass(frozen=True)
class JobCompleted(RepairEvent):
    """One repair job left the running state.

    ``status`` is ``"done"``, ``"failed"`` (the repair raised), or
    ``"cancelled"``.  ``cache_hit_rate`` is the job's evaluation-cache
    hit fraction across both tiers (0.0 when no lookups happened) — the
    service's headline number for warm resubmissions.
    """

    type: ClassVar[str] = "job_completed"
    job_id: str
    tenant: str
    status: str
    plausible: bool
    fitness: float
    elapsed_seconds: float
    cache_hit_rate: float


@dataclass(frozen=True)
class CheckpointSaved(RepairEvent):
    """The engine snapshotted its resume cursor at a search boundary.

    Emitted only when a checkpoint sink is attached (the service daemon
    attaches one per job when journaling is on), at each generation
    boundary (GP) / template round (synth) — so direct batch runs and
    their golden traces are untouched, while a journaled run emits the
    identical sequence whether or not it was ever interrupted.
    """

    type: ClassVar[str] = "checkpoint_saved"
    engine: str
    seed: int
    #: Generation (GP) / template-round (synth) index just completed.
    cursor: int
    eval_sims: int
    best_fitness: float


@dataclass(frozen=True)
class JobRecovered(RepairEvent):
    """The daemon re-admitted one unfinished job from its journal.

    Service-lifecycle only (like the other ``job_*`` events): emitted on
    ``repro serve --recover`` startup, once per journaled job that never
    reached a terminal state.  ``cursor`` is the last checkpointed
    generation/template round (-1 when the job died before its first
    checkpoint); ``attempts`` counts recovery re-admissions (1 = first).
    """

    type: ClassVar[str] = "job_recovered"
    job_id: str
    tenant: str
    scenario: str
    attempts: int
    had_checkpoint: bool
    cursor: int


@dataclass(frozen=True)
class JobShed(RepairEvent):
    """Admission control rejected a submission: queue depth at the cap.

    The client saw the typed ``{"code": "overloaded"}`` error carrying
    ``retry_after_hint`` (seconds; a smoothed estimate of when a slot
    frees up).  Joins to already-admitted jobs are never shed.
    """

    type: ClassVar[str] = "job_shed"
    tenant: str
    scenario: str
    queue_depth: int
    retry_after_hint: float


@dataclass(frozen=True)
class FuzzProgramChecked(RepairEvent):
    """One generated program went through the fuzz oracle battery.

    ``program_seed`` is the per-program seed (run seed + index), ``checks``
    the number of oracle checks that ran, ``violations`` how many of them
    failed.  Like every event, the non-timing fields are identical for a
    fixed seed regardless of evaluation backend.
    """

    type: ClassVar[str] = "fuzz_program_checked"
    index: int
    program_seed: int
    checks: int
    violations: int


@dataclass(frozen=True)
class FuzzViolationFound(RepairEvent):
    """A fuzz oracle rejected a generated (or corpus) program."""

    type: ClassVar[str] = "fuzz_violation_found"
    index: int
    program_seed: int
    oracle: str
    detail: str


@dataclass(frozen=True)
class FuzzRunCompleted(RepairEvent):
    """A fuzz run finished (counters mirror ``FuzzReport``)."""

    type: ClassVar[str] = "fuzz_run_completed"
    seed: int
    programs: int
    checks: int
    violations: int
    elapsed_seconds: float


@dataclass(frozen=True)
class MintScenarioAdmitted(RepairEvent):
    """The scenario factory admitted one observable-defect scenario.

    ``faulty_fitness`` is the mutant's fitness against the golden oracle
    (< 1.0 by the admission rule); it is a deterministic function of the
    mint seed, so traces are byte-comparable across runs and backends.
    """

    type: ClassVar[str] = "mint_scenario_admitted"
    index: int
    scenario_id: str
    source: str
    mutator: str
    category: int
    faulty_fitness: float


@dataclass(frozen=True)
class MintScenarioRejected(RepairEvent):
    """The scenario factory rejected one mint attempt.

    ``reason`` is one of the factory's rejection codes (``base_unusable``,
    ``no_sites``, ``mutate_refused``, ``uncompilable``, ``unobservable``);
    ``mutator`` is empty when rejection happened before a mutator was
    chosen.  ``shrunk`` counts the decisions of the ddmin-reduced
    reproducer (0 when shrinking was off or not applicable).
    """

    type: ClassVar[str] = "mint_scenario_rejected"
    index: int
    source: str
    mutator: str
    reason: str
    shrunk: int


@dataclass(frozen=True)
class MintRunCompleted(RepairEvent):
    """A mint run finished (counters mirror ``MintReport``)."""

    type: ClassVar[str] = "mint_run_completed"
    seed: int
    requested: int
    admitted: int
    rejected: int
    elapsed_seconds: float


@dataclass(frozen=True)
class MintedScenarioGraded(RepairEvent):
    """The grading harness finished one minted scenario with one engine.

    ``ground_truth_match`` is True when the repaired design is
    structurally identical to the golden design the defect was minted
    from — the strongest grade (plausible ⊇ correct ⊇ ground-truth
    match need not hold in general, but each is computed independently).
    """

    type: ClassVar[str] = "minted_scenario_graded"
    scenario_id: str
    engine: str
    mutator: str
    category: int
    plausible: bool
    correct: bool
    ground_truth_match: bool
    fitness: float
    #: Unique candidate evaluations (backend-independent, unlike raw
    #: simulation counts).
    eval_sims: int


@dataclass(frozen=True)
class MintedGradingCompleted(RepairEvent):
    """A grading run finished (counters mirror ``GradeReport``)."""

    type: ClassVar[str] = "minted_grading_completed"
    seed: int
    engine: str
    scenarios: int
    plausible: int
    correct: int
    ground_truth_matches: int
    elapsed_seconds: float


@dataclass(frozen=True)
class SynthTemplateEnumerated(RepairEvent):
    """The synth engine enumerated one repair template's instantiations.

    Emitted once per template round, *before* the round's candidates are
    scored, at a deterministic point of the engine's schedule — counts
    depend only on the design, the fault localization, and the oracle.
    """

    type: ClassVar[str] = "synth_template_enumerated"
    template: str
    sites: int
    candidates: int


@dataclass(frozen=True)
class SynthSolveCompleted(RepairEvent):
    """The synth engine finished its template sweep.

    ``winner_template`` is the template whose instantiation reached
    fitness 1.0, or ``""`` when no plausible repair was found.
    """

    type: ClassVar[str] = "synth_solve_completed"
    templates: int
    candidates: int
    winner_template: str
    plausible: bool


#: ``type`` tag → event class, for parsing traces back into events.
EVENT_TYPES: dict[str, type[RepairEvent]] = {
    cls.type: cls
    for cls in (
        TrialStarted,
        CandidateEvaluated,
        CandidatePruned,
        GenerationCompleted,
        BackendChunkDispatched,
        BackendChunkCompleted,
        CandidateTimedOut,
        WorkerCrashed,
        ChunkRetried,
        PlausiblePatchFound,
        PhaseCompleted,
        TrialCompleted,
        JobAdmitted,
        JobStarted,
        JobCompleted,
        CheckpointSaved,
        JobRecovered,
        JobShed,
        FuzzProgramChecked,
        FuzzViolationFound,
        FuzzRunCompleted,
        MintScenarioAdmitted,
        MintScenarioRejected,
        MintRunCompleted,
        MintedScenarioGraded,
        MintedGradingCompleted,
        SynthTemplateEnumerated,
        SynthSolveCompleted,
    )
}


def event_from_dict(data: dict[str, Any]) -> RepairEvent:
    """Rebuild an event from its :meth:`RepairEvent.to_dict` form.

    Raises ``ValueError`` for an unknown ``type`` tag; silently drops
    unknown field keys (forward compatibility with newer traces).
    """
    tag = data.get("type")
    cls = EVENT_TYPES.get(tag)  # type: ignore[arg-type]
    if cls is None:
        raise ValueError(f"unknown telemetry event type {tag!r}")
    names = {f.name for f in dataclasses.fields(cls)}
    return cls(**{k: v for k, v in data.items() if k in names})
