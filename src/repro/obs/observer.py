"""The observer protocol and the engine-side fan-out set.

``RepairObserver`` is the single extension point of the telemetry layer:
anything with an ``on_event(event)`` method can be attached to the
engine, ``repro.api`` entry points, or the experiment drivers.  The
engine never calls observers directly — it emits through an
:class:`ObserverSet`, which guarantees that a misbehaving observer can
neither raise into the search nor slow an unobserved run (an empty set
is falsy and every emit site is guarded by ``if self.events:``).
"""

from __future__ import annotations

import logging
from typing import Iterable, Protocol, runtime_checkable

from .events import RepairEvent

logger = logging.getLogger("repro.obs")


@runtime_checkable
class RepairObserver(Protocol):
    """Anything that wants to watch a repair run.

    Implementations must treat events as read-only facts: the engine's
    determinism guarantee (same seed → bit-identical outcome with or
    without observers) holds because telemetry never feeds back into the
    search.
    """

    def on_event(self, event: RepairEvent) -> None:
        """Handle one telemetry event."""
        ...  # pragma: no cover - protocol


class ObserverSet:
    """Fans events out to observers, isolating the search from them.

    An observer whose ``on_event`` raises is logged once and detached —
    telemetry failures degrade telemetry, never the repair.  The set is
    falsy when empty so hot paths can skip event construction entirely.
    """

    def __init__(self, observers: Iterable[RepairObserver] | None = None):
        self._observers: list[RepairObserver] = [
            obs for obs in (observers or ()) if obs is not None
        ]

    def __bool__(self) -> bool:
        return bool(self._observers)

    def __len__(self) -> int:
        return len(self._observers)

    def emit(self, event: RepairEvent) -> None:
        """Deliver ``event`` to every live observer."""
        dead: list[RepairObserver] = []
        for observer in self._observers:
            try:
                observer.on_event(event)
            except Exception:
                logger.exception(
                    "observer %r failed on %s; detaching it",
                    observer, event.type,
                )
                dead.append(observer)
        for observer in dead:
            self._observers.remove(observer)

    def close(self) -> None:
        """Close observers that support it (e.g. trace writers)."""
        for observer in self._observers:
            close = getattr(observer, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:  # pragma: no cover - best-effort cleanup
                    logger.exception("observer %r failed to close", observer)


class RecordingObserver:
    """Keeps every event in memory — for tests and interactive use."""

    def __init__(self) -> None:
        self.events: list[RepairEvent] = []

    def on_event(self, event: RepairEvent) -> None:
        """Append the event to :attr:`events`."""
        self.events.append(event)

    def types(self) -> list[str]:
        """The event-type sequence (the determinism-test fingerprint)."""
        return [event.type for event in self.events]
