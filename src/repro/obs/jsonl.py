"""Streaming JSONL trace writer and reader.

A *run trace* is one JSON object per line: the event's
:meth:`~repro.obs.events.RepairEvent.to_dict` payload plus a ``ts``
wall-clock stamp added at write time.  Keeping timestamps out of the
event objects themselves is what lets tests compare traces across
backends byte-for-byte after dropping the wall-time fields.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable

from .events import RepairEvent, event_from_dict


class JsonlTraceObserver:
    """Streams every event to a per-run ``run.jsonl`` artifact.

    The file is created (parents included) when the observer is built and
    each event is flushed on write, so a trace is inspectable while the
    run is still going and survives a crashed run up to its last event.
    """

    def __init__(self, path: str | Path, *, clock: Callable[[], float] = time.time):
        self.path = Path(path)
        self._clock = clock
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", encoding="utf-8")

    def on_event(self, event: RepairEvent) -> None:
        """Append one event as a JSON line (no-op after :meth:`close`)."""
        if self._fh is None:
            return
        record: dict[str, Any] = {"ts": round(self._clock(), 6)}
        record.update(event.to_dict())
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()

    def close(self) -> None:
        """Close the trace file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlTraceObserver":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Parse a ``run.jsonl`` into raw records (``ts`` included).

    Raises ``ValueError`` on a line that is not valid JSON, naming the
    line number.
    """
    records: list[dict[str, Any]] = []
    with Path(path).open(encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid trace line ({exc})") from exc
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{lineno}: trace line is not an object")
            records.append(record)
    return records


def read_events(path: str | Path) -> list[RepairEvent]:
    """Parse a ``run.jsonl`` back into typed events (``ts`` dropped)."""
    return [event_from_dict(record) for record in read_trace(path)]
