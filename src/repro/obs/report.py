"""Render a run summary from a ``run.jsonl`` trace (``repro report``).

The report is built entirely by replaying the trace through
:class:`~repro.obs.metrics.MetricsObserver`, so anything the report
shows can also be computed live — the CLI is just a convenience view.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from .events import RepairEvent, event_from_dict
from .jsonl import read_trace
from .metrics import PHASES, MetricsObserver

#: Max per-generation rows rendered before eliding the middle.
_MAX_GENERATION_ROWS = 12


def _format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width text table (kept local: obs must not import experiments)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _seconds(value: float) -> str:
    return f"{value:.2f}s"


def render_report(events: list[RepairEvent], source: str = "run.jsonl") -> str:
    """Render the human-readable summary of one run's event stream."""
    metrics = MetricsObserver.replay(events)
    sections: list[str] = [f"Run report — {source}"]

    scenario_text = ", ".join(metrics.scenarios) or "(unknown scenario)"
    sections.append(
        f"scenario(s): {scenario_text}\n"
        f"trials: {metrics.trials_completed} completed "
        f"({metrics.plausible_trials} plausible), "
        f"best fitness {metrics.best_fitness:.3f}, "
        f"total generations {metrics.generations}, "
        f"wall {_seconds(metrics.elapsed_seconds)}"
    )

    eval_stats = metrics.eval_seconds
    sections.append(
        "Candidate evaluation\n"
        + _format_table(
            ["Metric", "Value"],
            [
                ["unique evaluations (eval_sims)", str(metrics.candidates)],
                # Lint-gate rows appear only on gated runs, so reports
                # (and their golden files) from ungated traces are
                # unchanged.
                *(
                    [["pruned by lint gate", str(metrics.candidates_pruned)]]
                    if metrics.candidates_pruned
                    else []
                ),
                *(
                    [[f"pruned under {code}", str(count)]
                     for code, count in sorted(metrics.pruned_by_rule.items())]
                    if metrics.candidates_pruned
                    else []
                ),
                # Supervision rows appear only when the fault-tolerance
                # machinery actually fired, so healthy-run reports are
                # unchanged.
                *(
                    [["quarantined by supervisor", str(metrics.candidates_quarantined)]]
                    if metrics.candidates_quarantined
                    else []
                ),
                *(
                    [[f"quarantined as {kind}", str(count)]
                     for kind, count in sorted(metrics.quarantined_by_kind.items())]
                    if metrics.candidates_quarantined
                    else []
                ),
                *(
                    [["requeued after worker faults", str(metrics.candidates_requeued)]]
                    if metrics.candidates_requeued
                    else []
                ),
                # Crash-safety rows appear only on journaled service
                # traces, so direct-run reports are unchanged.
                *(
                    [["checkpoints saved", str(metrics.checkpoints_saved)]]
                    if metrics.checkpoints_saved
                    else []
                ),
                *(
                    [["jobs recovered from journal", str(metrics.jobs_recovered)]]
                    if metrics.jobs_recovered
                    else []
                ),
                *(
                    [["submissions shed (overload)", str(metrics.jobs_shed)]]
                    if metrics.jobs_shed
                    else []
                ),
                ["compile failures", str(metrics.compile_failures)],
                ["fitness evals (incl. cached)", str(metrics.fitness_evals)],
                ["simulations", str(metrics.simulations)],
                ["sim scheduler events", str(metrics.sim_events)],
                ["sim statements", str(metrics.sim_steps)],
                ["evaluation wall", _seconds(eval_stats.total)],
                ["evals/sec", f"{metrics.evals_per_second:.2f}"],
                ["sim events/sec", f"{metrics.sim_events_per_second:.0f}"],
                [
                    "per-eval seconds (min/mean/max)",
                    f"{eval_stats.min or 0:.4f} / {eval_stats.mean:.4f} / {eval_stats.max or 0:.4f}",
                ],
            ],
        )
    )

    if metrics.chunks_completed:
        sections.append(
            "Backend chunks\n"
            + _format_table(
                ["Metric", "Value"],
                [
                    ["chunks dispatched", str(metrics.chunks_dispatched)],
                    ["chunks completed", str(metrics.chunks_completed)],
                    ["candidates via chunks", str(metrics.chunk_candidates)],
                    [
                        "chunk seconds (min/mean/max)",
                        f"{metrics.chunk_seconds.min or 0:.4f} / "
                        f"{metrics.chunk_seconds.mean:.4f} / "
                        f"{metrics.chunk_seconds.max or 0:.4f}",
                    ],
                ],
            )
        )

    total_phase = sum(metrics.phase_seconds.values())
    phase_rows = []
    for phase in PHASES:
        seconds = metrics.phase_seconds.get(phase, 0.0)
        share = (seconds / total_phase * 100.0) if total_phase > 0 else 0.0
        phase_rows.append([phase, _seconds(seconds), f"{share:.1f}%"])
    sections.append("Phase timing\n" + _format_table(["Phase", "Wall", "Share"], phase_rows))

    if metrics.generation_stats:
        gens = metrics.generation_stats
        shown = gens
        elided = 0
        if len(gens) > _MAX_GENERATION_ROWS:
            head = _MAX_GENERATION_ROWS // 2
            tail = _MAX_GENERATION_ROWS - head
            shown = gens[:head] + gens[-tail:]
            elided = len(gens) - len(shown)
        gen_rows = [
            [
                str(g.generation),
                str(g.population),
                f"{g.fitness_min:.3f}",
                f"{g.fitness_mean:.3f}",
                f"{g.fitness_max:.3f}",
                f"{g.best_fitness:.3f}",
                str(g.eval_sims),
            ]
            for g in shown
        ]
        table = _format_table(
            ["Gen", "Pop", "Min", "Mean", "Max", "Best", "EvalSims"], gen_rows
        )
        if elided:
            table += f"\n({elided} generation rows elided)"
        sections.append("Generations\n" + table)

    if metrics.operator_stats:
        op_rows = [[name, str(count)] for name, count in sorted(metrics.operator_stats.items())]
        sections.append("Operator usage\n" + _format_table(["Operator", "Count"], op_rows))

    return "\n\n".join(sections)


def _load_known_events(
    records: list[dict[str, Any]],
) -> tuple[list[RepairEvent], int]:
    """Parse trace records, skipping event types this version doesn't know.

    Traces written by newer schema versions may contain extra event
    types; a report over the events we do understand beats a crash.
    (:func:`~repro.obs.jsonl.read_events` stays strict — programmatic
    consumers should see the mismatch.)  Returns the events plus how
    many records were skipped.
    """
    events: list[RepairEvent] = []
    skipped = 0
    for record in records:
        try:
            events.append(event_from_dict(record))
        except ValueError:
            skipped += 1
    return events, skipped


def report_text(path: str | Path) -> str:
    """Load a ``run.jsonl`` and render its report.

    Raises ``ValueError`` when the file is not a valid trace.  Records
    with unknown event types are skipped (with a note in the report),
    so traces from newer schema versions still render.
    """
    records = read_trace(path)
    if not records:
        raise ValueError(f"{path}: trace contains no events")
    events, skipped = _load_known_events(records)
    if not events:
        raise ValueError(f"{path}: trace contains no recognised events")
    report = render_report(events, source=str(path))
    if skipped:
        report += (
            f"\n\n({skipped} record{'s' if skipped != 1 else ''} of unknown "
            "event types skipped)"
        )
    return report


def summary_dict(path: str | Path) -> dict[str, Any]:
    """Load a trace and return the machine-readable metrics summary.

    Like :func:`report_text`, unknown event types are tolerated: they
    are skipped and counted under the ``"skipped_records"`` key (absent
    when everything parsed).
    """
    events, skipped = _load_known_events(read_trace(path))
    summary = MetricsObserver.replay(events).summary()
    if skipped:
        summary["skipped_records"] = skipped
    return summary
