"""In-process aggregation of run telemetry.

:class:`MetricsObserver` folds the event stream into counters, per-phase
timing, and throughput summaries — the numbers every perf PR benchmarks
against (the ROADMAP's "fast as the hardware allows" needs measurement
first).  It can run live (attached to an engine) or replay a stored
trace (:meth:`MetricsObserver.replay`), and the two are guaranteed to
agree because both consume the same events.

Consistency contract (pinned by tests): after a run,
``metrics.candidates`` equals the engine's deterministic ``eval_sims``
budget counter, and the trial totals equal the ``RepairOutcome``
counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from .events import (
    BackendChunkCompleted,
    BackendChunkDispatched,
    CandidateEvaluated,
    CandidatePruned,
    CandidateTimedOut,
    CheckpointSaved,
    ChunkRetried,
    GenerationCompleted,
    JobRecovered,
    JobShed,
    PhaseCompleted,
    PlausiblePatchFound,
    RepairEvent,
    TrialCompleted,
    TrialStarted,
    WorkerCrashed,
)

#: Phase keys in canonical display order.
PHASES = ("parse", "localization", "evaluation", "minimization")


@dataclass
class Summary:
    """Streaming count/total/min/max/mean over one quantity."""

    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None

    def add(self, value: float) -> None:
        """Fold one sample into the summary."""
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, float]:
        """JSON-ready snapshot (missing min/max rendered as 0)."""
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "min": round(self.min or 0.0, 6),
            "mean": round(self.mean, 6),
            "max": round(self.max or 0.0, 6),
        }


@dataclass
class MetricsObserver:
    """Aggregates counters and timing histograms over a run's events."""

    # -- trials ---------------------------------------------------------
    trials_started: int = 0
    trials_completed: int = 0
    plausible_trials: int = 0
    scenarios: list[str] = field(default_factory=list)
    best_fitness: float = 0.0
    # -- trial-total counters (mirror RepairOutcome) --------------------
    eval_sims: int = 0
    fitness_evals: int = 0
    simulations: int = 0
    generations: int = 0
    elapsed_seconds: float = 0.0
    # -- candidates -----------------------------------------------------
    candidates: int = 0
    #: Unique candidates the lint gate rejected before simulation.
    candidates_pruned: int = 0
    #: Gated rule code → pruned-candidate count (a candidate adding
    #: violations under two rules counts once under each).
    pruned_by_rule: dict[str, int] = field(default_factory=dict)
    compile_failures: int = 0
    sim_events: int = 0
    sim_steps: int = 0
    eval_seconds: Summary = field(default_factory=Summary)
    # -- backend chunks -------------------------------------------------
    chunks_dispatched: int = 0
    chunks_completed: int = 0
    chunk_candidates: int = 0
    chunk_seconds: Summary = field(default_factory=Summary)
    # -- supervision (fault-path only; all zero on healthy runs) --------
    #: Dispatch attempts the supervised pool killed at the deadline.
    candidates_timed_out: int = 0
    #: Worker-death kind (``crash``/``oom``) → observed count.
    worker_failures: dict[str, int] = field(default_factory=dict)
    #: Candidates quarantined as deterministic ``EvalFailure`` results.
    candidates_quarantined: int = 0
    #: Quarantine kind (``timeout``/``crash``/``oom``) → count.
    quarantined_by_kind: dict[str, int] = field(default_factory=dict)
    #: Chunks that needed supervised re-dispatches to complete.
    chunks_retried: int = 0
    #: Total candidate re-dispatches across those chunks.
    candidates_requeued: int = 0
    # -- crash safety (journaled service runs only; else all zero) ------
    #: Engine cursor snapshots persisted to the job journal.
    checkpoints_saved: int = 0
    #: Jobs re-admitted from the journal after a daemon crash.
    jobs_recovered: int = 0
    #: Submissions shed by admission backpressure.
    jobs_shed: int = 0
    # -- phases ---------------------------------------------------------
    phase_seconds: dict[str, float] = field(default_factory=dict)
    # -- search shape ---------------------------------------------------
    generation_stats: list[GenerationCompleted] = field(default_factory=list)
    plausible_found: int = 0
    operator_stats: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------

    def on_event(self, event: RepairEvent) -> None:
        """Fold one event into the aggregates."""
        if isinstance(event, CandidateEvaluated):
            self.candidates += 1
            if not event.compiled:
                self.compile_failures += 1
            self.sim_events += event.sim_events
            self.sim_steps += event.sim_steps
            self.eval_seconds.add(event.wall_seconds)
        elif isinstance(event, CandidatePruned):
            self.candidates_pruned += 1
            for code in event.new_violations:
                self.pruned_by_rule[code] = self.pruned_by_rule.get(code, 0) + 1
        elif isinstance(event, GenerationCompleted):
            self.generation_stats.append(event)
            self.operator_stats = dict(event.operator_stats)
        elif isinstance(event, BackendChunkDispatched):
            self.chunks_dispatched += 1
            self.chunk_candidates += event.size
        elif isinstance(event, BackendChunkCompleted):
            self.chunks_completed += 1
            self.chunk_seconds.add(event.wall_seconds)
        elif isinstance(event, CandidateTimedOut):
            self.candidates_timed_out += 1
            if event.quarantined:
                self.candidates_quarantined += 1
                self.quarantined_by_kind["timeout"] = (
                    self.quarantined_by_kind.get("timeout", 0) + 1
                )
        elif isinstance(event, WorkerCrashed):
            self.worker_failures[event.kind] = (
                self.worker_failures.get(event.kind, 0) + 1
            )
            if event.quarantined:
                self.candidates_quarantined += 1
                self.quarantined_by_kind[event.kind] = (
                    self.quarantined_by_kind.get(event.kind, 0) + 1
                )
        elif isinstance(event, ChunkRetried):
            self.chunks_retried += 1
            self.candidates_requeued += event.requeued
        elif isinstance(event, CheckpointSaved):
            self.checkpoints_saved += 1
        elif isinstance(event, JobRecovered):
            self.jobs_recovered += 1
        elif isinstance(event, JobShed):
            self.jobs_shed += 1
        elif isinstance(event, PhaseCompleted):
            self.phase_seconds[event.phase] = (
                self.phase_seconds.get(event.phase, 0.0) + event.seconds
            )
        elif isinstance(event, PlausiblePatchFound):
            self.plausible_found += 1
        elif isinstance(event, TrialStarted):
            self.trials_started += 1
            if event.scenario not in self.scenarios:
                self.scenarios.append(event.scenario)
        elif isinstance(event, TrialCompleted):
            self.trials_completed += 1
            self.plausible_trials += event.plausible
            self.best_fitness = max(self.best_fitness, event.fitness)
            self.eval_sims += event.eval_sims
            self.fitness_evals += event.fitness_evals
            self.simulations += event.simulations
            self.generations += event.generations
            self.elapsed_seconds += event.elapsed_seconds

    @classmethod
    def replay(cls, events: Iterable[RepairEvent]) -> "MetricsObserver":
        """Aggregate a stored event stream (e.g. from ``run.jsonl``)."""
        metrics = cls()
        for event in events:
            metrics.on_event(event)
        return metrics

    # ------------------------------------------------------------------
    # Derived rates
    # ------------------------------------------------------------------

    @property
    def evaluation_seconds(self) -> float:
        """Total wall-clock spent scoring candidates."""
        return self.eval_seconds.total

    @property
    def evals_per_second(self) -> float:
        """Unique candidate evaluations per second of evaluation time."""
        total = self.eval_seconds.total
        return self.candidates / total if total > 0 else 0.0

    @property
    def sim_events_per_second(self) -> float:
        """Simulator scheduler events per second of evaluation time."""
        total = self.eval_seconds.total
        return self.sim_events / total if total > 0 else 0.0

    def summary(self) -> dict[str, Any]:
        """All aggregates as one JSON-ready mapping."""
        return {
            "scenarios": list(self.scenarios),
            "trials": {
                "started": self.trials_started,
                "completed": self.trials_completed,
                "plausible": self.plausible_trials,
                "best_fitness": round(self.best_fitness, 6),
            },
            "totals": {
                "eval_sims": self.eval_sims,
                "fitness_evals": self.fitness_evals,
                "simulations": self.simulations,
                "generations": self.generations,
                "elapsed_seconds": round(self.elapsed_seconds, 3),
            },
            "candidates": {
                "evaluated": self.candidates,
                "pruned": self.candidates_pruned,
                "pruned_by_rule": dict(sorted(self.pruned_by_rule.items())),
                "compile_failures": self.compile_failures,
                "sim_events": self.sim_events,
                "sim_steps": self.sim_steps,
                "eval_seconds": self.eval_seconds.to_dict(),
                "evals_per_second": round(self.evals_per_second, 3),
                "sim_events_per_second": round(self.sim_events_per_second, 1),
            },
            "chunks": {
                "dispatched": self.chunks_dispatched,
                "completed": self.chunks_completed,
                "candidates": self.chunk_candidates,
                "seconds": self.chunk_seconds.to_dict(),
            },
            "supervision": {
                "timed_out": self.candidates_timed_out,
                "worker_failures": dict(sorted(self.worker_failures.items())),
                "quarantined": self.candidates_quarantined,
                "quarantined_by_kind": dict(
                    sorted(self.quarantined_by_kind.items())
                ),
                "chunks_retried": self.chunks_retried,
                "requeued": self.candidates_requeued,
            },
            "crash_safety": {
                "checkpoints_saved": self.checkpoints_saved,
                "jobs_recovered": self.jobs_recovered,
                "jobs_shed": self.jobs_shed,
            },
            "phases": {
                phase: round(self.phase_seconds.get(phase, 0.0), 6) for phase in PHASES
            },
            "operators": dict(self.operator_stats),
        }
