"""Bridging synchronous telemetry into an asyncio consumer.

Repair runs execute in worker threads (the service daemon offloads the
blocking engine onto a thread pool), but their observers' ``on_event``
calls must reach clients sitting on the daemon's asyncio loop.
:class:`AsyncEventBridge` is the adapter: a :class:`RepairObserver`
whose ``on_event`` is thread-safe — it hands each event to the loop via
``call_soon_threadsafe`` — feeding an ``asyncio.Queue`` that the
streaming side drains with ``async for``.

Backpressure policy: the queue is *lossy at the tail* when bounded.
Telemetry must never slow the search (the ``repro.obs`` contract), so
when a slow client lets the queue fill, newest events are dropped and
counted (``dropped``) instead of blocking the repair thread.  The
terminal ``None`` sentinel pushed by :meth:`finish` is exempt — closing
the stream always succeeds.
"""

from __future__ import annotations

import asyncio

from .events import RepairEvent

#: Queue slot budget when the caller does not choose one.  Big enough to
#: absorb any realistic burst between two scheduler ticks of the
#: consumer; small enough to bound a dead client's memory.
DEFAULT_QUEUE_SIZE = 4096


class AsyncEventBridge:
    """A repair observer that feeds an asyncio queue across threads.

    Construct on the event loop thread, attach to a repair run like any
    other observer, and consume with ``async for event in bridge``.  The
    iterator terminates after :meth:`finish` is called (typically from a
    ``finally`` on the producing side).
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, maxsize: int = DEFAULT_QUEUE_SIZE):
        self._loop = loop
        #: Events awaiting the consumer; ``None`` terminates the stream.
        self.queue: asyncio.Queue[RepairEvent | None] = asyncio.Queue(maxsize)
        #: Events discarded because the queue was full (slow consumer).
        self.dropped = 0
        self._finished = False

    def on_event(self, event: RepairEvent) -> None:
        """Observer hook (any thread): enqueue one event, never block."""
        self._loop.call_soon_threadsafe(self._offer, event)

    def finish(self) -> None:
        """Terminate the stream (any thread); idempotent."""
        self._loop.call_soon_threadsafe(self._close)

    def _offer(self, event: RepairEvent) -> None:
        """Loop-side: admit one event, dropping it if the queue is full."""
        if self._finished:
            return
        try:
            self.queue.put_nowait(event)
        except asyncio.QueueFull:
            self.dropped += 1

    def _close(self) -> None:
        """Loop-side: push the terminal sentinel past any full queue."""
        if self._finished:
            return
        self._finished = True
        while True:
            try:
                self.queue.put_nowait(None)
                return
            except asyncio.QueueFull:
                # Sacrifice the oldest queued event to make room — the
                # stream must always observably end.
                try:
                    self.queue.get_nowait()
                    self.dropped += 1
                except asyncio.QueueEmpty:  # pragma: no cover - race
                    continue

    def __aiter__(self) -> "AsyncEventBridge":
        """Async-iterate the bridged events until :meth:`finish`."""
        return self

    async def __anext__(self) -> RepairEvent:
        """The next bridged event; stops on the terminal sentinel."""
        event = await self.queue.get()
        if event is None:
            raise StopAsyncIteration
        return event
