"""repro.obs — run telemetry for the repair pipeline.

A structured tracing + metrics layer: the engine (and both evaluation
backends) emit typed :mod:`~repro.obs.events` through an
:class:`~repro.obs.observer.ObserverSet`; observers consume them without
ever feeding back into the search, so fixed-seed outcomes are
bit-identical with or without telemetry attached.

Ships three observers:

- :class:`JsonlTraceObserver` — streams events to a per-run ``run.jsonl``
  (rendered later by ``python -m repro report run.jsonl``);
- :class:`MetricsObserver` — live counters, per-phase timing, and
  throughput summaries (evals/sec, sim events/sec);
- :class:`RecordingObserver` — in-memory event list for tests.

See ``docs/observability.md`` for the event schema and extension guide.
"""

from __future__ import annotations

from .bridge import AsyncEventBridge
from .events import (
    EVENT_TYPES,
    WALL_TIME_FIELDS,
    BackendChunkCompleted,
    BackendChunkDispatched,
    CandidateEvaluated,
    CandidatePruned,
    CandidateTimedOut,
    CheckpointSaved,
    ChunkRetried,
    FuzzProgramChecked,
    FuzzRunCompleted,
    FuzzViolationFound,
    GenerationCompleted,
    JobAdmitted,
    JobCompleted,
    JobRecovered,
    JobShed,
    JobStarted,
    MintedGradingCompleted,
    MintedScenarioGraded,
    MintRunCompleted,
    MintScenarioAdmitted,
    MintScenarioRejected,
    PhaseCompleted,
    PlausiblePatchFound,
    RepairEvent,
    TrialCompleted,
    TrialStarted,
    WorkerCrashed,
    event_from_dict,
)
from .jsonl import JsonlTraceObserver, read_events, read_trace
from .metrics import MetricsObserver, Summary
from .observer import ObserverSet, RecordingObserver, RepairObserver
from .report import render_report, report_text, summary_dict

__all__ = [
    "RepairEvent",
    "TrialStarted",
    "TrialCompleted",
    "CandidateEvaluated",
    "CandidatePruned",
    "CandidateTimedOut",
    "WorkerCrashed",
    "ChunkRetried",
    "GenerationCompleted",
    "BackendChunkDispatched",
    "BackendChunkCompleted",
    "PlausiblePatchFound",
    "PhaseCompleted",
    "JobAdmitted",
    "JobStarted",
    "JobCompleted",
    "CheckpointSaved",
    "JobRecovered",
    "JobShed",
    "FuzzProgramChecked",
    "FuzzViolationFound",
    "FuzzRunCompleted",
    "MintScenarioAdmitted",
    "MintScenarioRejected",
    "MintRunCompleted",
    "MintedScenarioGraded",
    "MintedGradingCompleted",
    "AsyncEventBridge",
    "EVENT_TYPES",
    "WALL_TIME_FIELDS",
    "event_from_dict",
    "RepairObserver",
    "ObserverSet",
    "RecordingObserver",
    "JsonlTraceObserver",
    "MetricsObserver",
    "Summary",
    "read_events",
    "read_trace",
    "render_report",
    "report_text",
    "summary_dict",
]
