"""Shared infrastructure for the experiment harness.

Budgets: the paper ran population 5000 × 8 generations × 12 h per trial on
a commercial simulator.  The same algorithm runs here at laptop scale; the
three presets trade coverage for wall-clock time.  ``EXPERIMENTS.md``
records which preset produced the committed numbers.
"""

from __future__ import annotations

import contextlib
import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence, TypeVar

from ..benchsuite import Scenario, load_scenario
from ..core.backend import EvaluationBackend, _mp_context, make_backend
from ..core.config import RepairConfig
from ..core.engines import DEFAULT_ENGINE, get_engine
from ..core.repair import CirFixEngine, RepairOutcome
from ..obs.observer import ObserverSet, RepairObserver

logger = logging.getLogger("repro.experiments")

T = TypeVar("T")

#: CI-sized preset: seconds per scenario.  A large generation-0 seed pool
#: matters more than generation count (the paper's population of 5000 means
#: most of its fast repairs surfaced in the first generations).
SMOKE = RepairConfig(
    population_size=120,
    max_generations=4,
    max_wall_seconds=90.0,
    max_fitness_evals=600,
    minimize_budget=64,
)

#: Default preset for the committed experiment numbers.
QUICK = RepairConfig(
    population_size=300,
    max_generations=8,
    max_wall_seconds=420.0,
    max_fitness_evals=4000,
    minimize_budget=128,
)

#: Overnight-style preset approximating the paper's budgets.
FULL = RepairConfig(
    population_size=1500,
    max_generations=8,
    max_wall_seconds=3600.0,
    max_fitness_evals=60000,
    minimize_budget=256,
)

PRESETS: dict[str, RepairConfig] = {"smoke": SMOKE, "quick": QUICK, "full": FULL}


@dataclass
class ScenarioResult:
    """Outcome of repairing one scenario (one Table 3 row)."""

    scenario_id: str
    project: str
    description: str
    category: int
    plausible: bool
    correct: bool
    repair_seconds: float | None
    fitness: float
    simulations: int
    generations: int
    edits: int
    paper_outcome: str
    seed: int
    best_fitness_history: list[float] = field(default_factory=list)
    repaired_source: str | None = None
    #: Unique candidate evaluations across the trials that ran — the
    #: deterministic budget counter (identical across backends, unlike
    #: ``simulations``, which counts actual simulator invocations).
    eval_sims: int = 0

    @property
    def outcome(self) -> str:
        if self.correct:
            return "correct"
        if self.plausible:
            return "plausible"
        return "none"


def run_scenario(
    scenario: Scenario,
    config: RepairConfig,
    observers: Sequence[RepairObserver] | None = None,
    *,
    seeds: tuple[int, ...] = (0, 1),
    engine: str = DEFAULT_ENGINE,
) -> ScenarioResult:
    """Run repair trials on one scenario (paper: 5 independent trials,
    stopping at the first plausible repair).

    This is the one driver every experiment funnels through.  With
    ``config.workers > 1`` the trials share one evaluation backend (a
    persistent process pool), so the pool is paid for once per scenario,
    not once per seed.  ``observers`` (repro.obs) see every trial's event
    stream; they never influence the search.  ``engine`` names a
    registered repair engine (:mod:`repro.core.engines`); the built-in
    ``"cirfix"`` keeps the historical per-seed trial loop bit-for-bit,
    other engines receive all seeds in one runner call.
    """
    scaled = scenario.suggested_config(config)
    events = observers if isinstance(observers, ObserverSet) else ObserverSet(observers)
    start = time.monotonic()
    best: RepairOutcome | None = None
    winner: RepairOutcome | None = None
    total_sims = 0
    total_evals = 0
    problem = scenario.problem()
    backend: EvaluationBackend | None = (
        make_backend(problem, scaled) if scaled.workers > 1 else None
    )
    # Backends are context managers; a serial run needs no scope at all.
    with backend if backend is not None else contextlib.nullcontext():
        if engine == DEFAULT_ENGINE:
            for seed in seeds:
                outcome = CirFixEngine(
                    problem, scaled, seed, backend=backend, observers=events
                ).run()
                total_sims += outcome.simulations
                total_evals += outcome.eval_sims
                if best is None or outcome.fitness > best.fitness:
                    best = outcome
                if outcome.plausible:
                    winner = outcome
                    break
        else:
            runner = get_engine(engine)
            outcome = runner(
                problem, scaled, tuple(seeds), backend=backend, observers=events
            )
            total_sims = outcome.simulations
            total_evals = outcome.eval_sims
            best = outcome
            if outcome.plausible:
                winner = outcome
    assert best is not None
    chosen = winner if winner is not None else best
    correct = False
    if winner is not None and winner.repaired_source is not None:
        correct = scenario.is_correct_repair(winner.repaired_source)
    defect = scenario.defect
    return ScenarioResult(
        scenario_id=scenario.scenario_id,
        project=defect.project,
        description=defect.description,
        category=defect.category,
        plausible=winner is not None,
        correct=correct,
        repair_seconds=(time.monotonic() - start) if winner is not None else None,
        fitness=chosen.fitness,
        simulations=total_sims,
        generations=chosen.generations,
        edits=len(chosen.patch),
        paper_outcome=defect.paper_outcome,
        seed=chosen.seed,
        best_fitness_history=chosen.best_fitness_history,
        repaired_source=chosen.repaired_source,
        eval_sims=total_evals,
    )


def _scenario_worker(
    payload: tuple[str, RepairConfig, tuple[int, ...], str | None],
) -> ScenarioResult:
    # Module-level so multiprocessing pools can pickle it.  Observers are
    # generally not picklable, so the trace path travels instead and the
    # JSONL observer is constructed inside the worker.
    scenario_id, config, seeds, trace_path = payload
    observers: list[RepairObserver] = []
    if trace_path is not None:
        from ..obs import JsonlTraceObserver

        observers.append(JsonlTraceObserver(trace_path))
    try:
        return run_scenario(
            load_scenario(scenario_id), config, observers, seeds=seeds
        )
    finally:
        for observer in observers:
            observer.close()


def run_scenarios(
    scenario_ids: Iterable[str],
    config: RepairConfig,
    *,
    seeds: tuple[int, ...] = (0, 1),
    workers: int | None = None,
    trace_dir: "str | Path | None" = None,
) -> list[ScenarioResult]:
    """Run a sweep of scenarios, optionally fanned out over a pool.

    ``workers`` (default ``config.workers``) fans independent scenarios
    out over a process pool; each child then runs fully serially so pools
    never nest.  Row order and per-row results match the serial sweep
    exactly.  With ``trace_dir`` set, each scenario writes a repro.obs
    JSONL trace to ``trace_dir/<scenario_id>.jsonl`` (works in both the
    serial and the fanned-out path — workers reconstruct the observer
    from the path).
    """
    ids = list(scenario_ids)
    workers = config.workers if workers is None else workers
    fan_out = workers > 1 and len(ids) > 1
    child_config = config.scaled(workers=1) if fan_out else config
    if trace_dir is not None:
        trace_dir = Path(trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
    payloads = [
        (
            sid,
            child_config,
            seeds,
            str(trace_dir / f"{sid}.jsonl") if trace_dir is not None else None,
        )
        for sid in ids
    ]
    return map_parallel(_scenario_worker, payloads, workers if fan_out else 1)


def map_parallel(
    worker: Callable[[object], T],
    payloads: Sequence[object],
    workers: int,
) -> list[T]:
    """Order-preserving ``map`` over a process pool, with serial fallback.

    ``worker`` must be a module-level function so the pool can pickle it.
    With ``workers <= 1``, a single payload, or an unavailable pool, the
    map simply runs in-process.  Results are identical either way: each
    payload is independent and output order matches input order.
    """
    items = list(payloads)
    if workers <= 1 or len(items) <= 1:
        return [worker(p) for p in items]
    try:
        pool = _mp_context().Pool(min(workers, len(items)))
    except (OSError, ValueError, ImportError) as exc:  # pragma: no cover
        logger.warning("worker pool unavailable (%s); running sweep serially", exc)
        return [worker(p) for p in items]
    try:
        return pool.map(worker, items, chunksize=1)
    finally:
        pool.terminate()
        pool.join()


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render a fixed-width text table (the harness's output format)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
