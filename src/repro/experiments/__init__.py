"""Experiment harness: regenerates every table and figure in the paper.

Run from the command line::

    python -m repro.experiments table2
    python -m repro.experiments table3 --preset smoke
    python -m repro.experiments all

Each experiment also has a pytest-benchmark target under ``benchmarks/``.
"""

from .common import FULL, PRESETS, QUICK, SMOKE, ScenarioResult, run_scenario

__all__ = ["run_scenario", "ScenarioResult", "PRESETS", "SMOKE", "QUICK", "FULL"]
