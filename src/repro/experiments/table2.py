"""Table 2: benchmark hardware projects and their sizes.

Regenerates the paper's project inventory from the packaged benchmark
suite.  Absolute LoC differs from the paper (our large cores are
re-authored at reduced scale — see DESIGN.md), but the *structure* matches:
the same 11 projects, six small course-style components and five larger
OpenCores-style designs, small-to-large ordering preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..benchsuite import all_projects
from .common import format_table

#: Paper Table 2 LoC values, for side-by-side comparison.
PAPER_LOC: dict[str, tuple[int, int]] = {
    "decoder_3_to_8": (25, 56),
    "counter": (56, 135),
    "flip_flop": (16, 39),
    "fsm_full": (115, 66),
    "lshift_reg": (30, 44),
    "mux_4_1": (19, 51),
    "i2c": (2018, 482),
    "sha3": (499, 824),
    "tate_pairing": (2206, 983),
    "reed_solomon_decoder": (4366, 148),
    "sdram_controller": (420, 95),
}


@dataclass
class Table2Row:
    project: str
    description: str
    design_loc: int
    testbench_loc: int
    paper_design_loc: int
    paper_testbench_loc: int


def compute_table2() -> list[Table2Row]:
    """Compute the project-inventory rows."""
    rows = []
    for project in all_projects():
        paper_design, paper_tb = PAPER_LOC[project.name]
        rows.append(
            Table2Row(
                project.name,
                project.description,
                project.design_loc,
                project.testbench_loc,
                paper_design,
                paper_tb,
            )
        )
    return rows


def render_table2() -> str:
    """Render Table 2 with the paper's LoC side by side."""
    rows = compute_table2()
    body = [
        [r.project, str(r.design_loc), str(r.testbench_loc), str(r.paper_design_loc), str(r.paper_testbench_loc)]
        for r in rows
    ]
    total = [
        "Total",
        str(sum(r.design_loc for r in rows)),
        str(sum(r.testbench_loc for r in rows)),
        str(sum(r.paper_design_loc for r in rows)),
        str(sum(r.paper_testbench_loc for r in rows)),
    ]
    body.append(total)
    return format_table(
        ["Project", "LoC", "TB LoC", "Paper LoC", "Paper TB LoC"], body
    )


def main() -> None:
    """Print Table 2."""
    print("Table 2: benchmark hardware projects")
    print(render_table2())


if __name__ == "__main__":  # pragma: no cover
    main()
