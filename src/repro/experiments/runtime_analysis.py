"""Runtime analysis (paper §5.1 and artifact appendix A.2).

The paper reports: "The average wall-clock time for a trial to find a
repair was 2.03 hours, of which an average of over 90% was spent on
fitness evaluations (i.e., design simulations)."  This experiment runs a
few trials and measures the same breakdown for our pipeline — time inside
candidate evaluation (codegen + parse + elaborate + simulate + fitness)
versus total trial time (selection, localization bookkeeping, patching).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..benchsuite import load_scenario
from ..core.config import RepairConfig
from ..core.repair import CirFixEngine
from .common import SMOKE, format_table

PROFILE_SCENARIOS: tuple[str, ...] = ("counter_reset", "ff_cond", "lshift_cond")


@dataclass
class RuntimeRow:
    scenario_id: str
    total_seconds: float
    evaluation_seconds: float
    simulations: int
    plausible: bool

    @property
    def evaluation_share(self) -> float:
        return self.evaluation_seconds / self.total_seconds if self.total_seconds else 0.0

    @property
    def sims_per_second(self) -> float:
        return self.simulations / self.total_seconds if self.total_seconds else 0.0


def run_runtime_analysis(
    config: RepairConfig | None = None,
    scenario_ids: tuple[str, ...] = PROFILE_SCENARIOS,
    seed: int = 0,
) -> list[RuntimeRow]:
    """Profile trials and split evaluation time from total time."""
    config = config or SMOKE
    rows = []
    for scenario_id in scenario_ids:
        scenario = load_scenario(scenario_id)
        engine = CirFixEngine(scenario.problem(), scenario.suggested_config(config), seed)
        started = time.monotonic()
        outcome = engine.run()
        total = time.monotonic() - started
        rows.append(
            RuntimeRow(
                scenario_id=scenario_id,
                total_seconds=total,
                evaluation_seconds=engine.evaluation_seconds,
                simulations=engine.simulations,
                plausible=outcome.plausible,
            )
        )
    return rows


def render_runtime_analysis(rows: list[RuntimeRow]) -> str:
    """Render the runtime rows as a text table."""
    body = [
        [
            r.scenario_id,
            f"{r.total_seconds:.2f}",
            f"{r.evaluation_seconds:.2f}",
            f"{r.evaluation_share * 100:.1f}%",
            f"{r.sims_per_second:.0f}",
            "yes" if r.plausible else "no",
        ]
        for r in rows
    ]
    table = format_table(
        ["Scenario", "Total(s)", "Eval(s)", "Eval share", "Sims/s", "Repaired"], body
    )
    mean_share = sum(r.evaluation_share for r in rows) / len(rows) if rows else 0.0
    return table + (
        f"\nmean evaluation share: {mean_share * 100:.1f}% "
        "(paper: >90% of trial time in fitness evaluations)"
    )


def main(preset: str = "smoke") -> None:
    """Print the runtime analysis."""
    from .common import PRESETS

    print("Runtime analysis (Section 5.1)")
    print(render_runtime_analysis(run_runtime_analysis(PRESETS[preset])))


if __name__ == "__main__":  # pragma: no cover
    main()
