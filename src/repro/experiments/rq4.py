"""RQ4: sensitivity to the quality of the correctness information (§5.4).

The paper degrades the expected-behaviour annotations from 100% → 50% →
25% of timestamps and observes plausible repairs go 21 → 20 → 20 while
correct repairs drop 16 → 12 → 10: the repair *rate* is robust but
repair *quality* degrades gracefully.

We reproduce the protocol: for each scenario, subsample the oracle rows,
re-run the repair, and judge plausibility against the degraded oracle but
correctness against the held-out validation bench.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from ..api import repair_scenario
from ..benchsuite import Scenario, all_scenarios, load_scenario
from ..core.config import RepairConfig
from ..core.repair import RepairProblem
from .common import QUICK, format_table

#: The paper's oracle-completeness levels.
LEVELS: tuple[float, ...] = (1.0, 0.5, 0.25)


@dataclass
class Rq4Cell:
    fraction: float
    plausible: int
    correct: int
    total: int


@dataclass
class Rq4Result:
    cells: list[Rq4Cell]

    def by_fraction(self, fraction: float) -> Rq4Cell:
        """The cell for one oracle-completeness level."""
        for cell in self.cells:
            if cell.fraction == fraction:
                return cell
        raise KeyError(fraction)


def _repair_with_degraded_oracle(
    scenario: Scenario,
    fraction: float,
    config: RepairConfig,
    seeds: tuple[int, ...],
) -> tuple[bool, bool]:
    """Returns (plausible, correct) for one scenario at one oracle level."""
    oracle = scenario.oracle().subsample(fraction)
    problem = RepairProblem(
        scenario.problem().design,
        scenario.instrumented_testbench(),
        oracle,
        name=f"{scenario.scenario_id}@{fraction}",
    )
    scaled = scenario.suggested_config(config)
    # repair() stops at the first plausible seed, matching the old loop.
    outcome = repair_scenario(problem, config=scaled, seeds=seeds)
    if outcome.plausible and outcome.repaired_source is not None:
        return True, scenario.is_correct_repair(outcome.repaired_source)
    return False, False


def run_rq4(
    config: RepairConfig | None = None,
    seeds: tuple[int, ...] = (0, 1),
    scenario_ids: Iterable[str] | None = None,
    levels: tuple[float, ...] = LEVELS,
) -> Rq4Result:
    """Repair every scenario at each oracle-completeness level."""
    config = config or QUICK
    scenarios = (
        [load_scenario(sid) for sid in scenario_ids]
        if scenario_ids is not None
        else all_scenarios()
    )
    cells = []
    for fraction in levels:
        plausible = correct = 0
        for scenario in scenarios:
            p, c = _repair_with_degraded_oracle(scenario, fraction, config, seeds)
            plausible += p
            correct += c
        cells.append(Rq4Cell(fraction, plausible, correct, len(scenarios)))
    return Rq4Result(cells)


#: Paper headline numbers for the summary line.
PAPER_RQ4 = {1.0: (21, 16), 0.5: (20, 12), 0.25: (20, 10)}


def render_rq4(result: Rq4Result) -> str:
    """Render the RQ4 cells as a text table."""
    rows = []
    for cell in result.cells:
        paper = PAPER_RQ4.get(cell.fraction)
        paper_text = f"{paper[0]}/{paper[1]}" if paper else "-"
        rows.append(
            [
                f"{cell.fraction * 100:.0f}%",
                f"{cell.plausible}/{cell.total}",
                f"{cell.correct}/{cell.total}",
                paper_text,
            ]
        )
    return format_table(
        ["Oracle level", "Plausible", "Correct", "Paper (plaus/correct of 32)"], rows
    )


def main(preset: str = "quick") -> None:
    """Print RQ4."""
    from .common import PRESETS

    print("RQ4: sensitivity to correctness information")
    print(render_rq4(run_rq4(PRESETS[preset])))


if __name__ == "__main__":  # pragma: no cover
    main()
