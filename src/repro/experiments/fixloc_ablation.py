"""Fix-localization ablation (paper §3.6).

The paper reports fix localization reduces the fraction of mutants that
fail to compile from ~35% to ~10%.  This experiment generates mutants two
ways — naively (replace any node with any node, insert anything anywhere)
and with the CirFix fix-localization rules — and measures the compile
failure rate of each (compile = codegen → parse → elaborate).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..benchsuite import load_scenario
from ..core import fixloc
from ..core.faultloc import all_statement_ids
from ..core.operators import mutate
from ..core.patch import Edit, Patch
from ..core.repair import CirFixEngine
from ..hdl import ast
from .common import QUICK, format_table


@dataclass
class AblationCell:
    strategy: str
    mutants: int
    compile_failures: int

    @property
    def failure_rate(self) -> float:
        return self.compile_failures / self.mutants if self.mutants else 0.0


@dataclass
class FixlocAblationResult:
    naive: AblationCell
    fixloc: AblationCell


def _naive_mutant(tree: ast.Source, rng: random.Random) -> Patch:
    """Unrestricted mutation: any node replaced by / inserted after any
    other, no type compatibility, no lvalue checks."""
    nodes = [n for n in tree.walk() if n.node_id is not None]
    kind = rng.choice(("replace", "insert_after", "delete"))
    target = rng.choice(nodes)
    assert target.node_id is not None
    if kind == "delete":
        return Patch([Edit("delete", target.node_id)])
    source = rng.choice(nodes)
    return Patch([Edit(kind, target.node_id, source.clone())])


def run_ablation(
    scenario_id: str = "counter_reset", mutants_per_strategy: int = 150, seed: int = 0
) -> FixlocAblationResult:
    """Measure compile-failure rates for naive vs fix-localized mutants."""
    scenario = load_scenario(scenario_id)
    engine = CirFixEngine(scenario.problem(), scenario.suggested_config(QUICK), seed)
    base = scenario.problem().design
    fault_ids = all_statement_ids(base)
    rng = random.Random(seed)

    def compile_fails(patch: Patch) -> bool:
        evaluation = engine.evaluate(patch)
        return not evaluation.compiled

    naive_failures = 0
    for _ in range(mutants_per_strategy):
        if compile_fails(_naive_mutant(base, rng)):
            naive_failures += 1

    guided_failures = 0
    produced = 0
    while produced < mutants_per_strategy:
        patch = mutate(Patch.empty(), base, fault_ids, rng)
        if not patch.edits:
            continue
        produced += 1
        if compile_fails(patch):
            guided_failures += 1

    return FixlocAblationResult(
        naive=AblationCell("naive (unrestricted)", mutants_per_strategy, naive_failures),
        fixloc=AblationCell("fix localization", mutants_per_strategy, guided_failures),
    )


def render_ablation(result: FixlocAblationResult) -> str:
    """Render the ablation cells as a text table."""
    rows = [
        [
            cell.strategy,
            str(cell.mutants),
            str(cell.compile_failures),
            f"{cell.failure_rate * 100:.1f}%",
        ]
        for cell in (result.naive, result.fixloc)
    ]
    table = format_table(["Strategy", "Mutants", "Compile failures", "Rate"], rows)
    return table + "\n(paper: ~35% naive vs ~10% with fix localization)"


def main() -> None:
    """Print the fix-localization ablation."""
    print("Fix localization ablation (Section 3.6)")
    print(render_ablation(run_ablation()))


if __name__ == "__main__":  # pragma: no cover
    main()
