"""Extended-template ablation (paper §5.2 future work, implemented).

The paper's canonical unrepairable defect is rs_regsize: an expert shrank
``delay_cnt`` to 8 bits before it must hold the decimal 500, and "none of
[CirFix's] operators or repair templates are capable of increasing the
number of bits allocated".  The paper suggests "adding more repair
templates can help in such cases" — this experiment runs that suggestion:
same engine, same budgets, template set ± the extensions of
:mod:`repro.core.templates_ext`, on defects from the unsupported classes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..benchsuite import load_scenario
from ..core.config import RepairConfig
from ..core.repair import CirFixEngine
from .common import QUICK, format_table

#: Defect scenarios from classes the paper reports as unrepairable with the
#: core template set.
TARGET_SCENARIOS: tuple[str, ...] = ("rs_regsize", "ff_branches")


@dataclass
class ExtAblationRow:
    scenario_id: str
    core_plausible: bool
    core_fitness: float
    extended_plausible: bool
    extended_fitness: float
    extended_patch: str


def run_ext_ablation(
    scenario_ids: tuple[str, ...] = TARGET_SCENARIOS,
    config: RepairConfig | None = None,
    seeds: tuple[int, ...] = (0, 1),
) -> list[ExtAblationRow]:
    """Run each target scenario with and without the extension templates."""
    config = config or QUICK
    rows = []
    for scenario_id in scenario_ids:
        scenario = load_scenario(scenario_id)
        scaled = scenario.suggested_config(config)

        def best_run(extended: bool):
            best = None
            for seed in seeds:
                outcome = CirFixEngine(
                    scenario.problem(),
                    scaled.scaled(extended_templates=extended),
                    seed,
                ).run()
                if best is None or outcome.fitness > best.fitness:
                    best = outcome
                if outcome.plausible:
                    break
            return best

        core = best_run(extended=False)
        ext = best_run(extended=True)
        rows.append(
            ExtAblationRow(
                scenario_id=scenario_id,
                core_plausible=core.plausible,
                core_fitness=core.fitness,
                extended_plausible=ext.plausible,
                extended_fitness=ext.fitness,
                extended_patch=ext.patch.describe() if ext.plausible else "-",
            )
        )
    return rows


def render_ext_ablation(rows: list[ExtAblationRow]) -> str:
    """Render the ablation rows as a text table."""
    body = [
        [
            r.scenario_id,
            "yes" if r.core_plausible else "no",
            f"{r.core_fitness:.3f}",
            "yes" if r.extended_plausible else "no",
            f"{r.extended_fitness:.3f}",
            r.extended_patch[:50],
        ]
        for r in rows
    ]
    table = format_table(
        ["Scenario", "Core", "Fitness", "Extended", "Fitness", "Extended patch"], body
    )
    return table + (
        "\n(paper: rs_regsize unrepairable with the core templates; "
        "'adding more repair templates can help')"
    )


def main(preset: str = "quick") -> None:
    """Print the extended-template ablation."""
    from .common import PRESETS

    print("Extended-template ablation (Section 5.2 future work)")
    print(render_ext_ablation(run_ext_ablation(config=PRESETS[preset])))


if __name__ == "__main__":  # pragma: no cover
    main()
