"""RQ2: repair performance by defect category (paper §5.2).

Aggregates Table 3 results into Category 1 ("easy") vs Category 2 ("hard")
repair rates and compares repair times with a two-tailed Mann-Whitney U
test — the paper found no significant difference (p = 0.373), i.e. CirFix
repairs both categories comparably.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy import stats

from .common import ScenarioResult, format_table


@dataclass
class CategorySummary:
    category: int
    total: int
    plausible: int
    correct: int
    mean_repair_seconds: float | None
    mean_simulations: float

    @property
    def plausible_rate(self) -> float:
        return self.plausible / self.total if self.total else 0.0


@dataclass
class Rq2Result:
    cat1: CategorySummary
    cat2: CategorySummary
    mannwhitney_u: float | None
    p_value: float | None


def _summarise(results: list[ScenarioResult], category: int) -> CategorySummary:
    subset = [r for r in results if r.category == category]
    times = [r.repair_seconds for r in subset if r.repair_seconds is not None]
    return CategorySummary(
        category=category,
        total=len(subset),
        plausible=sum(1 for r in subset if r.plausible),
        correct=sum(1 for r in subset if r.correct),
        mean_repair_seconds=sum(times) / len(times) if times else None,
        mean_simulations=(
            sum(r.simulations for r in subset) / len(subset) if subset else 0.0
        ),
    )


def analyze_rq2(results: list[ScenarioResult]) -> Rq2Result:
    """Aggregate Table 3 results by category and run the Mann-Whitney U test."""
    cat1 = _summarise(results, 1)
    cat2 = _summarise(results, 2)
    times1 = [r.repair_seconds for r in results if r.category == 1 and r.repair_seconds]
    times2 = [r.repair_seconds for r in results if r.category == 2 and r.repair_seconds]
    u_stat = p_value = None
    if times1 and times2:
        u_stat, p_value = stats.mannwhitneyu(times1, times2, alternative="two-sided")
        u_stat, p_value = float(u_stat), float(p_value)
    return Rq2Result(cat1, cat2, u_stat, p_value)


def render_rq2(result: Rq2Result) -> str:
    """Render the category summaries as a text table."""
    rows = []
    for summary in (result.cat1, result.cat2):
        mean_time = (
            f"{summary.mean_repair_seconds:.1f}"
            if summary.mean_repair_seconds is not None
            else "-"
        )
        rows.append(
            [
                f"Category {summary.category}",
                f"{summary.plausible}/{summary.total}",
                f"{summary.plausible_rate * 100:.1f}%",
                str(summary.correct),
                mean_time,
                f"{summary.mean_simulations:.0f}",
            ]
        )
    table = format_table(
        ["Category", "Plausible", "Rate", "Correct", "MeanTime(s)", "MeanSims"], rows
    )
    if result.p_value is not None:
        table += (
            f"\nMann-Whitney U on repair times: U={result.mannwhitney_u:.1f}, "
            f"p={result.p_value:.3f} (paper: p=0.373, not significant)"
        )
    return table


def main(preset: str = "quick") -> None:
    """Print RQ2."""
    from .common import PRESETS
    from .table3 import run_table3

    results = run_table3(PRESETS[preset])
    print("RQ2: performance by defect category")
    print(render_rq2(analyze_rq2(results)))


if __name__ == "__main__":  # pragma: no cover
    main()
