"""Engine race: GP vs. template synthesis over minted defect families.

Runs both registered engines on the *same* minted scenario set — same
seed, same budget, same trial seeds — and reports which Table-3 defect
families each engine wins.  A scenario's winner is the engine that
reached a plausible repair with the fewest ``eval_sims`` (the
deterministic budget counter; engine name breaks exact ties), so the
verdict table is byte-identical on every backend.  First-to-plausible
wall-clock is measured per leg and reported alongside, but never enters
the verdict (wall time varies by host and backend).

Each (scenario, engine) pair is an independent job fanned out over the
same scheduler every experiment sweep uses (:func:`map_parallel`) —
the legs run exactly as a standalone grading of that engine would, so
the per-engine summaries here match ``repro.experiments minted`` /
``grade_scenarios`` runs of the same engine verbatim (the race smoke in
``scripts/check_all.sh`` pins this).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import RepairConfig
from ..mint import GRADE_CONFIG, MintConfig, mint_scenarios
from ..mint.factory import MintedScenario
from ..synth.race import RACE_ENGINES
from .common import ScenarioResult, format_table, map_parallel, run_scenario
from .minted import MINTED_COUNT, MINTED_SEED


@dataclass
class RaceStudy:
    """Both engines' results over one minted scenario set."""

    seed: int
    engines: tuple[str, ...]
    minted: list[MintedScenario]
    #: engine → per-scenario results, aligned with ``minted``.
    results: dict[str, list[ScenarioResult]]

    def winner_of(self, index: int) -> str:
        """The deterministic winner of one scenario's race (``""`` = none)."""
        legs = [
            (engine, self.results[engine][index])
            for engine in self.engines
            if self.results[engine][index].plausible
        ]
        if not legs:
            return ""
        return min(legs, key=lambda leg: (leg[1].eval_sims, leg[0]))[0]

    def by_family(self) -> dict[str, dict[str, object]]:
        """mutator family → per-engine totals and win counts (stable)."""
        out: dict[str, dict[str, object]] = {}
        for index, scenario in enumerate(self.minted):
            row = out.setdefault(
                scenario.mutator,
                {
                    "scenarios": 0,
                    "wins": {engine: 0 for engine in self.engines},
                    "engines": {
                        engine: {"plausible": 0, "eval_sims": 0}
                        for engine in self.engines
                    },
                },
            )
            row["scenarios"] += 1  # type: ignore[operator]
            winner = self.winner_of(index)
            if winner:
                row["wins"][winner] += 1  # type: ignore[index]
            for engine in self.engines:
                result = self.results[engine][index]
                stats = row["engines"][engine]  # type: ignore[index]
                stats["plausible"] += int(result.plausible)
                stats["eval_sims"] += result.eval_sims
        return dict(sorted(out.items()))

    def stable_text(self) -> str:
        """Byte-stable verdict table: no wall-clock anywhere."""
        body = []
        for family, row in self.by_family().items():
            cells = [family, str(row["scenarios"])]
            for engine in self.engines:
                stats = row["engines"][engine]  # type: ignore[index]
                cells.append(f"{stats['plausible']}/{row['scenarios']}")
                cells.append(str(stats["eval_sims"]))
            cells.append(
                " ".join(
                    f"{engine}:{row['wins'][engine]}"  # type: ignore[index]
                    for engine in self.engines
                )
            )
            body.append(cells)
        headers = ["Family", "Scenarios"]
        for engine in self.engines:
            headers.extend([f"{engine} plausible", f"{engine} eval_sims"])
        headers.append("Wins")
        return format_table(headers, body)

    def wall_clock_text(self) -> str:
        """Per-engine first-to-plausible wall-clock (measured, unstable)."""
        lines = []
        for engine in self.engines:
            legs = [r.repair_seconds for r in self.results[engine] if r.repair_seconds]
            total = sum(legs)  # type: ignore[arg-type]
            mean = total / len(legs) if legs else 0.0
            lines.append(
                f"  {engine:8s} first-to-plausible: {len(legs)} scenarios, "
                f"mean {mean:.2f}s, total {total:.2f}s"
            )
        return "\n".join(lines)


def _race_worker(
    payload: "tuple[MintedScenario, str, RepairConfig, tuple[int, ...]]",
) -> ScenarioResult:
    # Module-level so multiprocessing pools can pickle it.
    scenario, engine, config, seeds = payload
    return run_scenario(scenario.to_scenario(), config, seeds=seeds, engine=engine)


def run_engine_race(
    *,
    seed: int = MINTED_SEED,
    count: int = MINTED_COUNT,
    engines: tuple[str, ...] = RACE_ENGINES,
    config: RepairConfig | None = None,
    workers: int | None = None,
    seeds: tuple[int, ...] = (0,),
) -> RaceStudy:
    """Mint a seeded scenario set and race every engine across it.

    Jobs are (scenario, engine) pairs; ``workers > 1`` fans them out over
    the experiment scheduler's process pool (each leg then evaluates
    serially, exactly like a standalone run, so results are identical to
    the serial sweep).
    """
    minted = mint_scenarios(
        MintConfig(seed=seed, count=count, shrink_rejected=False)
    ).admitted
    config = config or GRADE_CONFIG
    payloads = [
        (scenario, engine, config, seeds)
        for engine in engines
        for scenario in minted
    ]
    flat = map_parallel(_race_worker, payloads, workers or 1)
    results = {
        engine: flat[i * len(minted) : (i + 1) * len(minted)]
        for i, engine in enumerate(engines)
    }
    return RaceStudy(seed=seed, engines=engines, minted=minted, results=results)


def main(preset: str = "smoke", workers: int | None = None) -> None:
    """Print the engine-race study."""
    del preset  # racing uses the grading budget (GRADE_CONFIG)
    print(
        f"Engine race (factory seed {MINTED_SEED}, {MINTED_COUNT} attempts): "
        "winner = plausible with fewest eval_sims"
    )
    study = run_engine_race(workers=workers)
    print(study.stable_text())
    print(study.wall_clock_text())


if __name__ == "__main__":  # pragma: no cover
    main()
