"""RQ1: repair rate and the brute-force comparison (paper §5.1).

Beyond Table 3's per-defect outcomes, RQ1 makes two claims we reproduce:

1. CirFix's plausible-repair rate is in the range of strong software APR
   systems (paper: 65.6%);
2. a uniform-edit brute-force search "did not scale to the complexity of
   defects in our benchmark suite" — under the same simulation budget it
   repairs (almost) nothing that CirFix repairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..baselines.brute_force import BruteForceRepair
from ..benchsuite import load_scenario
from ..core.config import RepairConfig
from ..obs.observer import RepairObserver
from .common import QUICK, format_table, map_parallel, run_scenario

#: Scenarios used for the head-to-head (a spread of difficulties).
HEAD_TO_HEAD: tuple[str, ...] = (
    "counter_sens",
    "ff_cond",
    "lshift_cond",
    "sha3_loop",
    "counter_reset",
    "i2c_ack",
)


@dataclass
class HeadToHeadRow:
    scenario_id: str
    cirfix_plausible: bool
    cirfix_sims: int
    brute_plausible: bool
    brute_sims: int


@dataclass
class Rq1Result:
    rows: list[HeadToHeadRow]

    @property
    def cirfix_wins(self) -> int:
        return sum(1 for r in self.rows if r.cirfix_plausible and not r.brute_plausible)


def _rq1_worker(
    payload: tuple[str, RepairConfig, tuple[int, ...], str | None],
) -> HeadToHeadRow:
    # Module-level so multiprocessing pools can pickle it.  The CirFix
    # side goes through the shared run_scenario driver; the brute-force
    # side runs under the same per-scenario budget.
    scenario_id, config, seeds, trace_path = payload
    scenario = load_scenario(scenario_id)
    observers: list[RepairObserver] = []
    if trace_path is not None:
        from ..obs import JsonlTraceObserver

        observers.append(JsonlTraceObserver(trace_path))
    try:
        cirfix = run_scenario(scenario, config, observers, seeds=seeds)
    finally:
        for observer in observers:
            observer.close()
    scaled = scenario.suggested_config(config)
    brute = BruteForceRepair(scenario.problem(), scaled, seed=seeds[0]).run()
    return HeadToHeadRow(
        scenario_id,
        cirfix.plausible,
        cirfix.simulations,
        brute.plausible,
        brute.simulations,
    )


def run_rq1(
    config: RepairConfig | None = None,
    scenario_ids: tuple[str, ...] = HEAD_TO_HEAD,
    seeds: tuple[int, ...] = (0, 1),
    workers: int | None = None,
    trace_dir: "str | Path | None" = None,
) -> Rq1Result:
    """Run the CirFix vs brute-force head-to-head.

    ``workers`` (default ``config.workers``) fans the head-to-head
    scenarios out over a process pool, one fully-serial child each, with
    results in ``scenario_ids`` order — identical to the serial sweep.
    With ``trace_dir`` set, the CirFix side of each row writes a
    repro.obs JSONL trace to ``trace_dir/<scenario_id>.jsonl``.
    """
    config = config or QUICK
    workers = config.workers if workers is None else workers
    fan_out = workers > 1 and len(scenario_ids) > 1
    child_config = config.scaled(workers=1) if fan_out else config
    if trace_dir is not None:
        trace_dir = Path(trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
    payloads = [
        (
            sid,
            child_config,
            seeds,
            str(trace_dir / f"{sid}.jsonl") if trace_dir is not None else None,
        )
        for sid in scenario_ids
    ]
    rows = map_parallel(_rq1_worker, payloads, workers if fan_out else 1)
    return Rq1Result(rows)


def render_rq1(result: Rq1Result) -> str:
    """Render the head-to-head rows as a text table."""
    rows = [
        [
            r.scenario_id,
            "yes" if r.cirfix_plausible else "no",
            str(r.cirfix_sims),
            "yes" if r.brute_plausible else "no",
            str(r.brute_sims),
        ]
        for r in result.rows
    ]
    table = format_table(
        ["Scenario", "CirFix", "CirFix sims", "BruteForce", "Brute sims"], rows
    )
    return table + (
        f"\nCirFix repairs {result.cirfix_wins} scenarios brute force misses "
        "(paper: brute force reported no repairs within bounds)"
    )


def main(
    preset: str = "quick",
    workers: int | None = None,
    trace_dir: "str | Path | None" = None,
) -> None:
    """Print RQ1."""
    from .common import PRESETS

    print("RQ1: CirFix vs brute-force search")
    print(render_rq1(run_rq1(PRESETS[preset], workers=workers, trace_dir=trace_dir)))


if __name__ == "__main__":  # pragma: no cover
    main()
