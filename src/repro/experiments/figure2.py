"""Figure 2: simulation result vs expected behaviour for the faulty counter.

Regenerates the juxtaposed trace comparison from the motivating example:
the faulty 4-bit counter (missing overflow reset) produces ``x`` for
``overflow_out`` until the counter first overflows, while the oracle shows
``0`` from the first reset onwards.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..benchsuite import load_scenario
from ..benchsuite.scenario import simulate_design_text
from ..instrument.trace import SimulationTrace, output_mismatch
from .common import format_table


@dataclass
class Figure2Data:
    simulated: SimulationTrace
    expected: SimulationTrace
    mismatched_vars: set[str]
    faulty_fitness: float


def compute_figure2() -> Figure2Data:
    """Simulate the faulty counter and diff it against the oracle."""
    scenario = load_scenario("counter_reset")
    expected = scenario.oracle()
    simulated = simulate_design_text(
        scenario.faulty_design_text, scenario.instrumented_testbench()
    )
    return Figure2Data(
        simulated=simulated,
        expected=expected,
        mismatched_vars=output_mismatch(expected, simulated),
        faulty_fitness=scenario.faulty_fitness(),
    )


def render_figure2(data: Figure2Data, var: str = "overflow_out") -> str:
    """Render the Figure 2 trace comparison table."""
    sim_by_time = {t: v for t, v in data.simulated.rows}
    rows = []
    for time, values in data.expected.rows:
        expected_bits = values[var].to_bit_string()
        actual = sim_by_time.get(time, {}).get(var)
        actual_bits = actual.to_bit_string() if actual is not None else "?"
        marker = "  <-- mismatch" if actual_bits != expected_bits else ""
        rows.append([str(time), actual_bits, expected_bits + marker])
    header = format_table(["time", "simulated " + var, "expected " + var], rows)
    return (
        header
        + f"\n\nmismatched wires: {sorted(data.mismatched_vars)}"
        + f"\nfaulty-design fitness: {data.faulty_fitness:.2f} (paper: 0.58)"
    )


def main() -> None:
    """Print Figure 2."""
    print("Figure 2: simulation result vs expected behaviour (faulty counter)")
    print(render_figure2(compute_figure2()))


if __name__ == "__main__":  # pragma: no cover
    main()
