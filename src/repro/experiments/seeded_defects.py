"""Repair rate on randomly seeded defects (§4.1.3 methodology comparison).

The paper argues expert-transplanted defects avoid the bias of the
"randomly-seeded or self-seeded defects" used by earlier evaluations.
This experiment measures CirFix on the random-seeding baseline: generate
valid random defects for the small projects and report the repair rate —
typically *higher* than on the expert suite, quantifying why random
seeding can overstate a repair tool's ability.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..benchsuite import load_project
from ..benchsuite.seeding import DefectSeeder
from ..core.config import RepairConfig
from ..core.repair import CirFixEngine
from .common import SMOKE, format_table

SEED_PROJECTS: tuple[str, ...] = ("flip_flop", "lshift_reg", "counter")


@dataclass
class SeededRepairRow:
    project: str
    defects: int
    repaired: int
    mean_faulty_fitness: float

    @property
    def repair_rate(self) -> float:
        return self.repaired / self.defects if self.defects else 0.0


def run_seeded_defects(
    config: RepairConfig | None = None,
    projects: tuple[str, ...] = SEED_PROJECTS,
    defects_per_project: int = 3,
    seeds: tuple[int, ...] = (0, 1),
) -> list[SeededRepairRow]:
    """Generate random defects per project and measure the repair rate."""
    config = config or SMOKE
    rows = []
    for name in projects:
        project = load_project(name)
        seeder = DefectSeeder(project, rng_seed=0)
        seeded = seeder.generate(defects_per_project)
        repaired = 0
        for defect in seeded:
            scenario = seeder.as_scenario(defect)
            scaled = scenario.suggested_config(config)
            for seed in seeds:
                outcome = CirFixEngine(scenario.problem(), scaled, seed).run()
                if outcome.plausible:
                    repaired += 1
                    break
        mean_fitness = (
            sum(d.faulty_fitness for d in seeded) / len(seeded) if seeded else 0.0
        )
        rows.append(SeededRepairRow(name, len(seeded), repaired, mean_fitness))
    return rows


def render_seeded_defects(rows: list[SeededRepairRow]) -> str:
    """Render the seeded-defect rows as a text table."""
    body = [
        [
            r.project,
            str(r.defects),
            str(r.repaired),
            f"{r.repair_rate * 100:.0f}%",
            f"{r.mean_faulty_fitness:.3f}",
        ]
        for r in rows
    ]
    table = format_table(
        ["Project", "Seeded defects", "Repaired", "Rate", "Mean faulty fitness"], body
    )
    total = sum(r.defects for r in rows)
    repaired = sum(r.repaired for r in rows)
    return table + (
        f"\noverall: {repaired}/{total} — random single-edit defects repair more"
        " easily than the expert-transplanted Table 3 suite (the bias §4.1.3"
        " warns about)"
    )


def main(preset: str = "smoke") -> None:
    """Print the seeded-defect study."""
    from .common import PRESETS

    print("Randomly seeded defects (Section 4.1.3 methodology baseline)")
    print(render_seeded_defects(run_seeded_defects(PRESETS[preset])))


if __name__ == "__main__":  # pragma: no cover
    main()
