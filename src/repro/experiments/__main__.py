"""CLI entry point: ``python -m repro.experiments <experiment> [--preset p]``."""

from __future__ import annotations

import argparse

from . import (
    ext_templates,
    figure2,
    figure3,
    fixloc_ablation,
    param_sensitivity,
    phi_ablation,
    rq1,
    rq2,
    rq3,
    rq4,
    runtime_analysis,
    seeded_defects,
    table2,
    table3,
)

EXPERIMENTS = {
    "table2": lambda preset, workers: table2.main(),
    "table3": lambda preset, workers: table3.main(preset, workers=workers),
    "figure2": lambda preset, workers: figure2.main(),
    "figure3": lambda preset, workers: figure3.main(),
    "rq1": lambda preset, workers: rq1.main(preset, workers=workers),
    "rq2": lambda preset, workers: rq2.main(preset),
    "rq3": lambda preset, workers: rq3.main(),
    "rq4": lambda preset, workers: rq4.main(preset),
    "fixloc": lambda preset, workers: fixloc_ablation.main(),
    "phi": lambda preset, workers: phi_ablation.main(),
    "ext-templates": lambda preset, workers: ext_templates.main(preset),
    "param-sensitivity": lambda preset, workers: param_sensitivity.main(preset),
    "runtime": lambda preset, workers: runtime_analysis.main(preset),
    "seeded": lambda preset, workers: seeded_defects.main(preset),
}


def main() -> None:
    """CLI entry point for the experiment harness."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the CirFix paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--preset",
        choices=["smoke", "quick", "full"],
        default="quick",
        help="search budget preset (default: quick)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for scenario sweeps (table3/rq1; default serial)",
    )
    args = parser.parse_args()
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        EXPERIMENTS[name](args.preset, args.workers)
        print()


if __name__ == "__main__":
    main()
