"""CLI entry point: ``python -m repro.experiments <experiment> [--preset p]``."""

from __future__ import annotations

import argparse

from . import (
    ext_templates,
    figure2,
    figure3,
    fixloc_ablation,
    param_sensitivity,
    phi_ablation,
    rq1,
    rq2,
    rq3,
    rq4,
    runtime_analysis,
    seeded_defects,
    table2,
    table3,
)

EXPERIMENTS = {
    "table2": lambda preset: table2.main(),
    "table3": lambda preset: table3.main(preset),
    "figure2": lambda preset: figure2.main(),
    "figure3": lambda preset: figure3.main(),
    "rq1": lambda preset: rq1.main(preset),
    "rq2": lambda preset: rq2.main(preset),
    "rq3": lambda preset: rq3.main(),
    "rq4": lambda preset: rq4.main(preset),
    "fixloc": lambda preset: fixloc_ablation.main(),
    "phi": lambda preset: phi_ablation.main(),
    "ext-templates": lambda preset: ext_templates.main(preset),
    "param-sensitivity": lambda preset: param_sensitivity.main(preset),
    "runtime": lambda preset: runtime_analysis.main(preset),
    "seeded": lambda preset: seeded_defects.main(preset),
}


def main() -> None:
    """CLI entry point for the experiment harness."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the CirFix paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--preset",
        choices=["smoke", "quick", "full"],
        default="quick",
        help="search budget preset (default: quick)",
    )
    args = parser.parse_args()
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        EXPERIMENTS[name](args.preset)
        print()


if __name__ == "__main__":
    main()
