"""CLI entry point: ``python -m repro.experiments <experiment> [--preset p]``."""

from __future__ import annotations

import argparse
from pathlib import Path

from . import (
    ext_templates,
    figure2,
    figure3,
    fixloc_ablation,
    minted,
    param_sensitivity,
    phi_ablation,
    race,
    rq1,
    rq2,
    rq3,
    rq4,
    runtime_analysis,
    seeded_defects,
    table2,
    table3,
)

EXPERIMENTS = {
    "table2": lambda ctx: table2.main(),
    "table3": lambda ctx: table3.main(
        ctx.preset, workers=ctx.workers, trace_dir=ctx.trace_dir
    ),
    "figure2": lambda ctx: figure2.main(),
    "figure3": lambda ctx: figure3.main(),
    "rq1": lambda ctx: rq1.main(
        ctx.preset, workers=ctx.workers, trace_dir=ctx.trace_dir
    ),
    "rq2": lambda ctx: rq2.main(ctx.preset),
    "rq3": lambda ctx: rq3.main(),
    "rq4": lambda ctx: rq4.main(ctx.preset),
    "fixloc": lambda ctx: fixloc_ablation.main(),
    "phi": lambda ctx: phi_ablation.main(),
    "ext-templates": lambda ctx: ext_templates.main(ctx.preset),
    "param-sensitivity": lambda ctx: param_sensitivity.main(ctx.preset),
    "runtime": lambda ctx: runtime_analysis.main(ctx.preset),
    "seeded": lambda ctx: seeded_defects.main(ctx.preset),
    "minted": lambda ctx: minted.main(ctx.preset, workers=ctx.workers),
    "race": lambda ctx: race.main(ctx.preset, workers=ctx.workers),
}


def main() -> None:
    """CLI entry point for the experiment harness."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the CirFix paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--preset",
        choices=["smoke", "quick", "full"],
        default="quick",
        help="search budget preset (default: quick)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for scenario sweeps (table3/rq1; default serial)",
    )
    parser.add_argument(
        "--trace-dir",
        type=Path,
        default=None,
        help="write one repro.obs JSONL trace per scenario here (table3/rq1); "
        "per-experiment subdirectories are created automatically",
    )
    args = parser.parse_args()
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        ctx = argparse.Namespace(
            preset=args.preset,
            workers=args.workers,
            trace_dir=(args.trace_dir / name) if args.trace_dir is not None else None,
        )
        EXPERIMENTS[name](ctx)
        print()


if __name__ == "__main__":
    main()
