"""Minted-scenario grading: auto-grade repair engines on factory defects.

The frozen Table 3 suite has 32 expert-transplanted defects; the mint
factory (:mod:`repro.mint`) supplies an unbounded, ground-truth-labeled
complement.  This experiment mints a seeded scenario set, grades one or
more registered engines on it, and reports per-defect-family repair,
plausibility, and ground-truth-match rates — the regression signal CI
watches to catch engine quality drift that the fixed suite cannot.
"""

from __future__ import annotations

from ..core.config import RepairConfig
from ..core.engines import DEFAULT_ENGINE
from ..mint import GRADE_CONFIG, GradeReport, MintConfig, grade_scenarios, mint_scenarios
from .common import format_table

#: Experiment-sized mint run: enough attempts to cover every mutator
#: family while keeping the grading sweep in CI territory.
MINTED_SEED = 0
MINTED_COUNT = 12


def run_minted_grading(
    *,
    seed: int = MINTED_SEED,
    count: int = MINTED_COUNT,
    engine: str = DEFAULT_ENGINE,
    config: RepairConfig | None = None,
    workers: int | None = None,
    seeds: tuple[int, ...] = (0,),
) -> GradeReport:
    """Mint a seeded scenario set and grade ``engine`` across it.

    ``workers > 1`` switches candidate evaluation to the process backend;
    the returned report's non-timing content is backend-independent.
    """
    minted = mint_scenarios(
        MintConfig(seed=seed, count=count, shrink_rejected=False)
    ).admitted
    config = config or GRADE_CONFIG
    if workers is not None and workers > 1:
        config = config.scaled(workers=workers, backend="process")
    return grade_scenarios(
        minted, seed=seed, engine=engine, config=config, seeds=seeds
    )


def render_minted_grading(report: GradeReport) -> str:
    """Render the per-mutator grading rates as a text table."""
    body = [
        [
            mutator,
            str(total),
            f"{plausible}/{total}",
            f"{correct}/{total}",
            f"{truth}/{total}",
        ]
        for mutator, (total, plausible, correct, truth) in report.by_mutator().items()
    ]
    table = format_table(
        ["Mutator", "Scenarios", "Plausible", "Correct", "Ground-truth"], body
    )
    n = len(report.results)
    return table + (
        f"\noverall ({report.engine}): plausible {report.plausible}/{n}"
        f"  correct {report.correct}/{n}"
        f"  ground-truth match {report.ground_truth_matches}/{n}"
    )


def run_minted_comparison(
    *,
    seed: int = MINTED_SEED,
    count: int = MINTED_COUNT,
    engines: tuple[str, ...] = ("cirfix", "synth"),
    config: RepairConfig | None = None,
    workers: int | None = None,
    seeds: tuple[int, ...] = (0,),
) -> dict[str, GradeReport]:
    """Grade every engine in ``engines`` on the *same* minted set."""
    return {
        engine: run_minted_grading(
            seed=seed, count=count, engine=engine, config=config,
            workers=workers, seeds=seeds,
        )
        for engine in engines
    }


def render_minted_comparison(reports: "dict[str, GradeReport]") -> str:
    """Render per-mutator grading rates with one column pair per engine."""
    engines = list(reports)
    by_mutator = {engine: reports[engine].by_mutator() for engine in engines}
    families = sorted({m for rates in by_mutator.values() for m in rates})
    body = []
    for family in families:
        totals = [
            by_mutator[engine].get(family, (0, 0, 0, 0))[0] for engine in engines
        ]
        row = [family, str(max(totals))]
        for engine in engines:
            total, plausible, _correct, truth = by_mutator[engine].get(
                family, (0, 0, 0, 0)
            )
            row.append(f"{plausible}/{total}")
            row.append(f"{truth}/{total}")
        body.append(row)
    headers = ["Mutator", "Scenarios"]
    for engine in engines:
        headers.extend([f"{engine} plausible", f"{engine} truth"])
    table = format_table(headers, body)
    lines = [table]
    for engine in engines:
        report = reports[engine]
        n = len(report.results)
        lines.append(
            f"overall ({engine}): plausible {report.plausible}/{n}"
            f"  correct {report.correct}/{n}"
            f"  ground-truth match {report.ground_truth_matches}/{n}"
        )
    return "\n".join(lines)


def main(preset: str = "smoke", workers: int | None = None) -> None:
    """Print the minted-scenario grading study, one column pair per engine."""
    del preset  # grading uses its own deterministic budget (GRADE_CONFIG)
    print(
        f"Minted-scenario grading (factory seed {MINTED_SEED}, "
        f"{MINTED_COUNT} attempts)"
    )
    reports = run_minted_comparison(workers=workers)
    print(render_minted_comparison(reports))


if __name__ == "__main__":  # pragma: no cover
    main()
