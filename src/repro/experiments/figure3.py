"""Figure 3: a representative multi-edit repair for sdram_controller.

The paper's Figure 3 shows a Category-2 defect in the controller's reset
block (one assignment missing, one incorrect) repaired by CirFix with an
insert and a replace.  This experiment reproduces exactly that shape: it
constructs the known-good two-edit patch, verifies it is plausible, shows
the repaired reset block, and (optionally) lets the GP search find its own.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..benchsuite import load_scenario
from ..core.patch import Edit, Patch
from ..core.repair import CirFixEngine
from ..hdl import ast, generate
from .common import QUICK, ScenarioResult, run_scenario


@dataclass
class Figure3Data:
    faulty_fitness: float
    patch: Patch
    patched_fitness: float
    repaired_block: str
    edit_kinds: list[str]


def _find_reset_anchor(tree: ast.Source) -> tuple[int, ast.Node, int]:
    """Locate the reset branch: returns (anchor id for insert, donor busy
    assignment, id of the wrong rd_data assignment)."""
    donor_busy: ast.Node | None = None
    wrong_rd_data_rhs: int | None = None
    anchor_id: int | None = None
    for node in tree.walk():
        if isinstance(node, ast.NonBlockingAssign):
            lhs, rhs = node.lhs, node.rhs
            if isinstance(lhs, ast.Identifier) and lhs.name == "busy":
                if isinstance(rhs, ast.Number) and rhs.aval == 1 and donor_busy is None:
                    donor_busy = node
            if (
                isinstance(lhs, ast.Identifier)
                and lhs.name == "rd_data"
                and isinstance(rhs, ast.Identifier)
                and rhs.name == "wr_data"
            ):
                wrong_rd_data_rhs = rhs.node_id
                anchor_id = node.node_id
    if donor_busy is None or wrong_rd_data_rhs is None or anchor_id is None:
        raise RuntimeError("sdram_reset defect structure not found")
    return anchor_id, donor_busy, wrong_rd_data_rhs


def compute_figure3() -> Figure3Data:
    """Construct and verify the Figure 3 insert+replace repair."""
    scenario = load_scenario("sdram_reset")
    engine = CirFixEngine(scenario.problem(), scenario.suggested_config(QUICK), seed=0)
    faulty_fitness = engine.evaluate(Patch.empty()).fitness

    base = scenario.problem().design
    anchor_id, donor_busy, wrong_rhs_id = _find_reset_anchor(base)
    zero8 = ast.Number("8'h00", 8, 0, 0)
    patch = Patch(
        [
            Edit("insert_after", anchor_id, donor_busy.clone()),
            Edit("replace", wrong_rhs_id, zero8),
        ]
    )
    evaluation = engine.evaluate(patch)

    repaired = patch.apply(base)
    block = _render_reset_block(repaired)
    return Figure3Data(
        faulty_fitness=faulty_fitness,
        patch=patch,
        patched_fitness=evaluation.fitness,
        repaired_block=block,
        edit_kinds=[e.kind for e in patch.edits],
    )


def _render_reset_block(tree: ast.Source) -> str:
    for node in tree.walk():
        if isinstance(node, ast.If):
            cond_text = generate(node.cond)
            if "rst_n" in cond_text and node.then_stmt is not None:
                return generate(node.then_stmt)
    return "<reset block not found>"


def run_search(seeds: tuple[int, ...] = (0, 1, 2)) -> ScenarioResult:
    """Let the GP find the Figure 3 repair itself (slower)."""
    return run_scenario(load_scenario("sdram_reset"), QUICK, seeds=seeds)


def main() -> None:
    """Print Figure 3."""
    data = compute_figure3()
    print("Figure 3: multi-edit repair for sdram_controller")
    print(f"faulty fitness: {data.faulty_fitness:.3f} (paper: 0.818)")
    print(f"edits: {data.edit_kinds} (paper: insert + replace)")
    print(f"patched fitness: {data.patched_fitness:.3f}")
    print("repaired reset block:")
    print(data.repaired_block)


if __name__ == "__main__":  # pragma: no cover
    main()
