"""RQ3: quality of the fitness function (paper §5.3).

Two reproductions:

1. **Incremental fitness for a multi-edit repair.**  The paper reports a
   counter defect whose repair raised the best fitness 0 → 0.58 → 0.77 →
   1.0 as edits accumulated.  We construct the edit chain for the
   counter_reset defect and show each prefix's fitness is monotonically
   increasing (strong fitness-distance correlation).

2. **Catching errors the original testbench misses.**  The paper's
   out_stage (reed_solomon_decoder) sensitivity-list defect passes the
   original testbench but gets a non-perfect 0.999 fitness from the
   instrumented comparison.  We reproduce that near-1.0 signature on the
   rs_sens scenario.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..benchsuite import load_scenario
from ..core.patch import Edit, Patch
from ..core.repair import CirFixEngine
from ..hdl import ast
from .common import QUICK


@dataclass
class Rq3Result:
    #: Fitness after each successive edit of the multi-edit repair chain
    #: (index 0 = unpatched).
    fitness_trajectory: list[float]
    #: rs_sens faulty fitness (paper: 0.999).
    rs_sens_fitness: float

    @property
    def is_monotone(self) -> bool:
        return all(
            later >= earlier
            for earlier, later in zip(self.fitness_trajectory, self.fitness_trajectory[1:])
        )


def _counter_edit_chain() -> tuple[CirFixEngine, list[Patch]]:
    """Build the prefix chain of the known counter_reset repair."""
    scenario = load_scenario("counter_reset")
    engine = CirFixEngine(scenario.problem(), scenario.suggested_config(QUICK), seed=0)
    base = scenario.problem().design
    nba_nodes = [n for n in base.walk() if isinstance(n, ast.NonBlockingAssign)]
    # Faulty design has: counter reset assign, counter increment, overflow set.
    anchor = nba_nodes[0]
    donor = nba_nodes[2]
    assert anchor.node_id is not None
    patch1 = Patch([Edit("insert_after", anchor.node_id, donor.clone())])
    tree1 = patch1.apply(base)
    inserted_numbers = [
        n
        for n in tree1.walk()
        if isinstance(n, ast.Number) and n.text == "1'b1" and (n.node_id or 0) > 1000
    ]
    patch2 = patch1.extended(
        Edit("template", inserted_numbers[0].node_id, template="decrement_by_one")
    )
    return engine, [Patch.empty(), patch1, patch2]


def compute_rq3() -> Rq3Result:
    """Build the multi-edit fitness trajectory and the rs_sens signature."""
    engine, chain = _counter_edit_chain()
    trajectory = [engine.evaluate(p).fitness for p in chain]
    rs = load_scenario("rs_sens")
    return Rq3Result(fitness_trajectory=trajectory, rs_sens_fitness=rs.faulty_fitness())


def render_rq3(result: Rq3Result) -> str:
    """Render the RQ3 findings."""
    steps = " -> ".join(f"{f:.3f}" for f in result.fitness_trajectory)
    lines = [
        f"multi-edit fitness trajectory: {steps}",
        f"  (paper: 0 -> 0.58 -> 0.77 -> 1.0; monotone: {result.is_monotone})",
        f"rs_sens faulty fitness: {result.rs_sens_fitness:.4f} (paper: 0.999)",
        "  the original testbench reports no failure for this defect; only the",
        "  instrumented bit-level comparison exposes it.",
    ]
    return "\n".join(lines)


def main() -> None:
    """Print RQ3."""
    print("RQ3: quality of the fitness function")
    print(render_rq3(compute_rq3()))


if __name__ == "__main__":  # pragma: no cover
    main()
