"""Table 3: per-defect repair results (the paper's headline table).

Runs CirFix on every defect scenario and prints, per row: category,
plausible/correct outcome, repair time, and the paper's outcome for
comparison.  The paper reports 21/32 plausible and 16/32 correct under
5 × 12-hour trials with population 5000; laptop presets necessarily
repair a subset, but the *shape* — template-class defects repaired fast,
width/instantiation defects never repaired — should reproduce.
"""

from __future__ import annotations

from collections.abc import Iterable
from pathlib import Path

from ..benchsuite import all_scenarios
from ..core.config import RepairConfig
from .common import QUICK, ScenarioResult, format_table, run_scenarios


def run_table3(
    config: RepairConfig | None = None,
    seeds: tuple[int, ...] = (0, 1),
    scenario_ids: Iterable[str] | None = None,
    workers: int | None = None,
    trace_dir: "str | Path | None" = None,
) -> list[ScenarioResult]:
    """Run the full (or filtered) Table 3 experiment.

    Delegates to :func:`repro.experiments.common.run_scenarios`:
    ``workers`` fans independent scenarios out over a process pool (one
    fully-serial child each), and ``trace_dir`` writes one repro.obs
    JSONL trace per scenario.
    """
    config = config or QUICK
    ids = (
        list(scenario_ids)
        if scenario_ids is not None
        else [s.scenario_id for s in all_scenarios()]
    )
    return run_scenarios(
        ids, config, seeds=seeds, workers=workers, trace_dir=trace_dir
    )


def render_table3(results: list[ScenarioResult]) -> str:
    """Render Table 3 rows plus the plausible/correct summary."""
    rows = []
    for r in results:
        time_text = f"{r.repair_seconds:.1f}" if r.repair_seconds is not None else "-"
        rows.append(
            [
                r.project,
                r.description[:48],
                str(r.category),
                r.outcome,
                time_text,
                f"{r.fitness:.3f}",
                r.paper_outcome,
            ]
        )
    table = format_table(
        ["Project", "Defect", "Cat", "Outcome", "Time(s)", "Fitness", "Paper"], rows
    )
    plausible = sum(1 for r in results if r.plausible)
    correct = sum(1 for r in results if r.correct)
    paper_plausible = sum(1 for r in results if r.paper_outcome in ("correct", "plausible"))
    paper_correct = sum(1 for r in results if r.paper_outcome == "correct")
    summary = (
        f"\nPlausible: {plausible}/{len(results)} (paper: {paper_plausible}/{len(results)})"
        f"\nCorrect:   {correct}/{len(results)} (paper: {paper_correct}/{len(results)})"
    )
    return table + summary


def main(
    preset: str = "quick",
    workers: int | None = None,
    trace_dir: "str | Path | None" = None,
) -> None:
    """Run and print Table 3."""
    from .common import PRESETS

    results = run_table3(PRESETS[preset], workers=workers, trace_dir=trace_dir)
    print("Table 3: repair results for CirFix")
    print(render_table3(results))
    if trace_dir is not None:
        print(f"\ntelemetry traces written to {trace_dir}/<scenario>.jsonl")


if __name__ == "__main__":  # pragma: no cover
    main()
