"""GP parameter sensitivity study (paper §4.2 future work, implemented).

"While we leave a comprehensive study of CirFix's parameter sensitivity as
future work, we evaluated other values suggested by literature (e.g.,
smaller population sizes), and found no significant differences in
CirFix's performance."

This experiment sweeps the three most influential knobs — population size,
repair-template threshold, and mutation threshold — on fast scenarios and
reports repair rate and search cost per setting, quantifying the paper's
informal claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..benchsuite import load_scenario
from ..core.config import RepairConfig
from ..core.repair import CirFixEngine
from .common import SMOKE, format_table

#: Fast scenarios with distinct repair mechanisms (template vs operator).
SWEEP_SCENARIOS: tuple[str, ...] = ("ff_cond", "lshift_blocking", "counter_incr")

#: knob → settings swept (one at a time, others at paper defaults).
SWEEPS: dict[str, tuple[float, ...]] = {
    "population_size": (30, 120, 480),
    "rt_threshold": (0.0, 0.2, 0.5),
    "mut_threshold": (0.3, 0.7, 1.0),
}


@dataclass
class SweepCell:
    knob: str
    value: float
    repaired: int
    total: int
    mean_simulations: float

    @property
    def repair_rate(self) -> float:
        return self.repaired / self.total if self.total else 0.0


def run_param_sensitivity(
    base: RepairConfig | None = None,
    scenario_ids: tuple[str, ...] = SWEEP_SCENARIOS,
    seeds: tuple[int, ...] = (0, 1),
    sweeps: dict[str, tuple[float, ...]] | None = None,
) -> list[SweepCell]:
    """Sweep each knob one at a time and measure repair rate and cost."""
    base = base or SMOKE
    sweeps = sweeps or SWEEPS
    cells: list[SweepCell] = []
    for knob, values in sweeps.items():
        for value in values:
            override = int(value) if knob == "population_size" else float(value)
            repaired = 0
            simulations = 0
            runs = 0
            for scenario_id in scenario_ids:
                scenario = load_scenario(scenario_id)
                config = scenario.suggested_config(base).scaled(**{knob: override})
                for seed in seeds:
                    runs += 1
                    outcome = CirFixEngine(scenario.problem(), config, seed).run()
                    simulations += outcome.simulations
                    if outcome.plausible:
                        repaired += 1
                        break
            cells.append(
                SweepCell(
                    knob=knob,
                    value=value,
                    repaired=repaired,
                    total=len(scenario_ids),
                    mean_simulations=simulations / max(runs, 1),
                )
            )
    return cells


def render_param_sensitivity(cells: list[SweepCell]) -> str:
    """Render the sweep cells as a text table."""
    rows = [
        [
            cell.knob,
            f"{cell.value:g}",
            f"{cell.repaired}/{cell.total}",
            f"{cell.repair_rate * 100:.0f}%",
            f"{cell.mean_simulations:.0f}",
        ]
        for cell in cells
    ]
    table = format_table(["Knob", "Value", "Repaired", "Rate", "Mean sims/run"], rows)
    return table + (
        "\n(paper: no significant performance differences across "
        "literature-suggested parameter values)"
    )


def main(preset: str = "smoke") -> None:
    """Print the parameter-sensitivity study."""
    from .common import PRESETS

    print("GP parameter sensitivity (Section 4.2 future work)")
    print(render_param_sensitivity(run_param_sensitivity(PRESETS[preset])))


if __name__ == "__main__":  # pragma: no cover
    main()
