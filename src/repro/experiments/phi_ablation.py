"""φ-weight ablation (paper §4.2).

The paper chose φ = 2 after observing φ = 1 "did not penalize [x/z]
comparisons enough" and φ = 3 "caused too significant a drop in fitness".
This experiment measures, for a defect whose signature is x-valued output
(the motivating counter defect), how φ shapes (a) the faulty design's
fitness and (b) the fitness gap a partial repair gains — the gradient the
GP climbs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..benchsuite import load_scenario
from ..core.fitness import evaluate_fitness
from ..benchsuite.scenario import simulate_design_text
from .common import format_table

PHI_VALUES: tuple[float, ...] = (1.0, 2.0, 3.0)


@dataclass
class PhiCell:
    phi: float
    faulty_fitness: float
    partial_fitness: float

    @property
    def gradient(self) -> float:
        """Fitness gained by the partial (defined-but-wrong) repair."""
        return self.partial_fitness - self.faulty_fitness


@dataclass
class PhiAblationResult:
    cells: list[PhiCell]


def run_phi_ablation(scenario_id: str = "counter_reset") -> PhiAblationResult:
    """Score the faulty and partially-repaired designs at each phi."""
    scenario = load_scenario(scenario_id)
    oracle = scenario.oracle()
    bench = scenario.instrumented_testbench()
    faulty_trace = simulate_design_text(scenario.faulty_design_text, bench)
    # Partial repair: overflow_out driven (defined) but to the wrong value —
    # the intermediate point of the paper's multi-edit trajectory.
    partial_text = scenario.faulty_design_text.replace(
        "counter_out <= #1 4'b0000;",
        "counter_out <= #1 4'b0000;\n      overflow_out <= #1 1'b1;",
    )
    partial_trace = simulate_design_text(partial_text, bench)
    cells = []
    for phi in PHI_VALUES:
        cells.append(
            PhiCell(
                phi=phi,
                faulty_fitness=evaluate_fitness(faulty_trace, oracle, phi).fitness,
                partial_fitness=evaluate_fitness(partial_trace, oracle, phi).fitness,
            )
        )
    return PhiAblationResult(cells)


def render_phi_ablation(result: PhiAblationResult) -> str:
    """Render the phi cells as a text table."""
    rows = [
        [
            f"{cell.phi:.0f}",
            f"{cell.faulty_fitness:.3f}",
            f"{cell.partial_fitness:.3f}",
            f"{cell.gradient:+.3f}",
        ]
        for cell in result.cells
    ]
    table = format_table(
        ["phi", "faulty fitness", "partial-repair fitness", "gradient"], rows
    )
    return table + (
        "\n(paper: phi=1 under-penalises x/z, phi=3 over-penalises; phi=2 chosen)"
    )


def main() -> None:
    """Print the phi ablation."""
    print("phi weight ablation (Section 4.2)")
    print(render_phi_ablation(run_phi_ablation()))


if __name__ == "__main__":  # pragma: no cover
    main()
