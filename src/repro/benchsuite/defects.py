"""The 32 defect scenarios of the benchmark suite (paper Table 3).

Each :class:`~repro.benchsuite.scenario.Defect` transplants the same *class*
of mistake the paper's hardware experts injected, expressed as exact-string
replacements over our re-authored golden projects.  ``paper_outcome`` and
``paper_repair_seconds`` record the corresponding Table 3 row so the
experiment harness can compare reproduction results against the paper.
"""

from __future__ import annotations

from .scenario import Defect

DEFECTS: tuple[Defect, ...] = (
    # ------------------------------------------------------------------
    # decoder_3_to_8
    # ------------------------------------------------------------------
    Defect(
        "dec_numeric",
        "decoder_3_to_8",
        "Two separate numeric errors",
        1,
        (
            ("3'b010 : out = 8'b00000100;", "3'b010 : out = 8'b00001000;"),
            ("3'b011 : out = 8'b00001000;", "3'b011 : out = 8'b00000100;"),
        ),
        paper_outcome="correct",
        paper_repair_seconds=13984.3,
    ),
    Defect(
        "dec_assign",
        "decoder_3_to_8",
        "Incorrect assignment",
        2,
        (
            (
                "    else begin\n      out = 8'b00000000;\n    end",
                "    else begin\n      out = {5'b00000, sel};\n    end",
            ),
        ),
        paper_outcome="none",
    ),
    # ------------------------------------------------------------------
    # counter
    # ------------------------------------------------------------------
    Defect(
        "counter_sens",
        "counter",
        "Incorrect sensitivity list",
        1,
        (("always @(posedge clk)", "always @(negedge clk)"),),
        paper_outcome="correct",
        paper_repair_seconds=19.8,
    ),
    Defect(
        "counter_reset",
        "counter",
        "Incorrect reset",
        1,
        (("      overflow_out <= #1 1'b0;\n", ""),),
        paper_outcome="correct",
        paper_repair_seconds=32239.2,
    ),
    Defect(
        "counter_incr",
        "counter",
        "Incorrect incremental of counter",
        1,
        (("counter_out <= #1 counter_out + 1;", "counter_out <= #1 counter_out + 2;"),),
        paper_outcome="correct",
        paper_repair_seconds=27781.3,
    ),
    # ------------------------------------------------------------------
    # flip_flop
    # ------------------------------------------------------------------
    Defect(
        "ff_cond",
        "flip_flop",
        "Incorrect conditional",
        1,
        (("      if (t) begin", "      if (!t) begin"),),
        paper_outcome="correct",
        paper_repair_seconds=7.8,
    ),
    Defect(
        "ff_branches",
        "flip_flop",
        "Branches of if-statement swapped",
        1,
        (
            ("        q <= !q;\n      end\n      else begin\n        q <= q;",
             "        q <= q;\n      end\n      else begin\n        q <= !q;"),
        ),
        paper_outcome="correct",
        paper_repair_seconds=923.5,
    ),
    # ------------------------------------------------------------------
    # fsm_full
    # ------------------------------------------------------------------
    Defect(
        "fsm_case",
        "fsm_full",
        "Incorrect case statement",
        1,
        (
            (
                "      GNT0 : begin\n        if (req_0 == 1'b1) begin",
                "      GNT0 : begin\n        if (req_1 == 1'b1) begin",
            ),
            (
                "      GNT1 : begin\n        if (req_1 == 1'b1) begin",
                "      GNT1 : begin\n        if (req_0 == 1'b1) begin",
            ),
        ),
        paper_outcome="none",
    ),
    Defect(
        "fsm_blocking",
        "fsm_full",
        "Incorrectly blocking assignments",
        1,
        (
            ("      state <= IDLE;", "      state = IDLE;"),
            ("      state <= next_state;", "      state = next_state;"),
        ),
        paper_outcome="plausible",
        paper_repair_seconds=4282.2,
    ),
    Defect(
        "fsm_next_default",
        "fsm_full",
        "Assignment to next state and default in case statement omitted",
        2,
        (
            ("          next_state = GNT0;\n", "\n"),
            ("      default : next_state = IDLE;\n", "\n"),
        ),
        paper_outcome="plausible",
        paper_repair_seconds=1536.4,
    ),
    Defect(
        "fsm_next_sens",
        "fsm_full",
        "Assignment to next state omitted, incorrect sensitivity list",
        2,
        (
            ("always @(state or req_0 or req_1)", "always @(state or req_0)"),
            (
                "      GNT1 : begin\n        if (req_1 == 1'b1) begin\n"
                "          next_state = GNT1;\n        end\n        else begin\n"
                "          next_state = IDLE;\n        end\n      end",
                "      GNT1 : begin\n        if (req_1 == 1'b1) begin\n"
                "          next_state = GNT1;\n        end\n      end",
            ),
        ),
        paper_outcome="correct",
        paper_repair_seconds=37.0,
    ),
    # ------------------------------------------------------------------
    # lshift_reg
    # ------------------------------------------------------------------
    Defect(
        "lshift_blocking",
        "lshift_reg",
        "Incorrect blocking assignment",
        1,
        (("        op <= {op[6:0], op[7]};", "        op = {op[6:0], op[7]};"),),
        paper_outcome="correct",
        paper_repair_seconds=14.6,
    ),
    Defect(
        "lshift_cond",
        "lshift_reg",
        "Incorrect conditional",
        1,
        (("      if (load_en) begin", "      if (!load_en) begin"),),
        paper_outcome="correct",
        paper_repair_seconds=33.74,
    ),
    Defect(
        "lshift_sens",
        "lshift_reg",
        "Incorrect sensitivity list",
        1,
        (
            (
                "  always @(posedge clk)\n  begin : SHIFT",
                "  always @(negedge clk)\n  begin : SHIFT",
            ),
        ),
        paper_outcome="correct",
        paper_repair_seconds=7.8,
    ),
    # ------------------------------------------------------------------
    # mux_4_1
    # ------------------------------------------------------------------
    Defect(
        "mux_width",
        "mux_4_1",
        "1 bit instead of 4 bit output",
        1,
        (
            ("  output [3:0] out;", "  output out;"),
            ("  reg [3:0] out;", "  reg out;"),
        ),
        paper_outcome="none",
    ),
    Defect(
        "mux_hex",
        "mux_4_1",
        "Hex instead of binary constants",
        1,
        (
            ("      2'b10 : out = c;", "      2'h10 : out = c;"),
            ("      2'b11 : out = d;", "      2'h11 : out = d;"),
        ),
        paper_outcome="plausible",
        paper_repair_seconds=10315.4,
    ),
    Defect(
        "mux_numeric",
        "mux_4_1",
        "Three separate numeric errors",
        2,
        (
            ("      2'b00 : out = a;", "      2'b01 : out = a;"),
            ("      2'b01 : out = b;", "      2'b10 : out = b;"),
            ("      2'b10 : out = c;", "      2'b00 : out = c;"),
        ),
        paper_outcome="plausible",
        paper_repair_seconds=15387.9,
    ),
    # ------------------------------------------------------------------
    # i2c
    # ------------------------------------------------------------------
    Defect(
        "i2c_sens",
        "i2c",
        "Incorrect sensitivity list",
        2,
        (
            (
                "  always @(posedge clk)\n  begin : FSM",
                "  always @(negedge clk)\n  begin : FSM",
            ),
        ),
        paper_outcome="correct",
        paper_repair_seconds=183.0,
    ),
    Defect(
        "i2c_addr",
        "i2c",
        "Incorrect address assignment",
        2,
        (
            (
                "addr_match <= (shift[7:1] == OWN_ADDR);",
                "addr_match <= (shift[6:0] == OWN_ADDR);",
            ),
        ),
        paper_outcome="plausible",
        paper_repair_seconds=57.9,
    ),
    Defect(
        "i2c_ack",
        "i2c",
        "No command acknowledgement",
        2,
        (
            (
                "            if (addr_match) begin\n              sda_out <= 1'b0;\n            end\n",
                "",
            ),
        ),
        paper_outcome="correct",
        paper_repair_seconds=1560.5,
    ),
    # ------------------------------------------------------------------
    # sha3
    # ------------------------------------------------------------------
    Defect(
        "sha3_loop",
        "sha3",
        "Off-by-one error in loop",
        1,
        (("for (i = 0; i < 8; i = i + 1)", "for (i = 0; i < 7; i = i + 1)"),),
        paper_outcome="correct",
        paper_repair_seconds=50.4,
    ),
    Defect(
        "sha3_neg",
        "sha3",
        "Incorrect bitwise negation",
        1,
        (
            (
                "tmp = tmp ^ (rotated & (~{tmp[0], tmp[63:1]}));",
                "tmp = tmp ^ (rotated & ({tmp[0], tmp[63:1]}));",
            ),
        ),
        paper_outcome="none",
    ),
    Defect(
        "sha3_wires",
        "sha3",
        "Incorrect assignment to wires",
        2,
        (
            ("  assign hash_out = sponge;", "  assign hash_out = sponge ^ block;"),
            ("  assign out_valid = out_valid_r;", "  assign out_valid = (state == S_ABSORB);"),
            ("  assign ready = (state == S_ABSORB);", "  assign ready = out_valid_r;"),
        ),
        paper_outcome="none",
    ),
    Defect(
        "sha3_overflow",
        "sha3",
        "Skipped buffer overflow check",
        2,
        (("            if (word_cnt < 2'd2) begin", "            if (word_cnt <= 2'd2) begin"),),
        paper_outcome="correct",
        paper_repair_seconds=50.0,
    ),
    # ------------------------------------------------------------------
    # tate_pairing
    # ------------------------------------------------------------------
    Defect(
        "tate_shift_logic",
        "tate_pairing",
        "Incorrect logic for bitshifting",
        1,
        (("      if (tmp[8]) begin", "      if (tmp[7]) begin"),),
        paper_outcome="none",
    ),
    Defect(
        "tate_shift_op",
        "tate_pairing",
        "Incorrect operator for bitshifting",
        1,
        (("      tmp = aa << 1;", "      tmp = aa >> 1;"),),
        paper_outcome="none",
    ),
    Defect(
        "tate_inst",
        "tate_pairing",
        "Incorrect instantiation of modules",
        2,
        (
            (
                "gf8_mul mul(.a(acc_squared), .b(coeff), .p(acc_next));",
                "gf8_mul mul(.a(acc), .b(coeff), .p(acc_next));",
            ),
        ),
        paper_outcome="none",
    ),
    # ------------------------------------------------------------------
    # reed_solomon_decoder
    # ------------------------------------------------------------------
    Defect(
        "rs_regsize",
        "reed_solomon_decoder",
        "Insufficient register size for decimal values",
        1,
        (("  reg [9:0] delay_cnt;", "  reg [7:0] delay_cnt;"),),
        paper_outcome="none",
    ),
    Defect(
        "rs_sens",
        "reed_solomon_decoder",
        "Incorrect sensitivity list for reset",
        2,
        (
            (
                "always @(posedge clk or posedge reset)",
                "always @(posedge clk or negedge reset)",
            ),
        ),
        paper_outcome="correct",
        paper_repair_seconds=28547.8,
    ),
    # ------------------------------------------------------------------
    # sdram_controller
    # ------------------------------------------------------------------
    Defect(
        "sdram_numeric",
        "sdram_controller",
        "Numeric error in definitions",
        1,
        (("  parameter CMD_NOP = 3'b000;", "  parameter CMD_NOP = 3'b110;"),),
        paper_outcome="none",
    ),
    Defect(
        "sdram_case",
        "sdram_controller",
        "Incorrect case statement",
        2,
        (
            (
                "        ACTIVE : begin\n          command <= CMD_ACTIVE;\n          state <= RW_CMD;\n        end",
                "        ACTIVE : begin\n          command <= CMD_PRECHARGE;\n          state <= IDLE;\n        end",
            ),
            (
                "        PRECHARGE : begin\n          command <= CMD_PRECHARGE;\n          state <= IDLE;\n        end",
                "        PRECHARGE : begin\n          command <= CMD_ACTIVE;\n          state <= RW_CMD;\n        end",
            ),
        ),
        paper_outcome="none",
    ),
    Defect(
        "sdram_reset",
        "sdram_controller",
        "Incorrect assignments to registers during synchronous reset",
        2,
        (
            ("      busy <= 1'b1;\n      rd_data <= 8'h00;", "      rd_data <= wr_data;"),
        ),
        paper_outcome="correct",
        paper_repair_seconds=16607.6,
    ),
)

#: Quick lookup by scenario id.
DEFECTS_BY_ID: dict[str, Defect] = {d.scenario_id: d for d in DEFECTS}
