// Testbench for the arbiter FSM: reset, single requests, overlapping
// requests, and request withdrawal.
module fsm_full_tb;
  reg clock;
  reg reset;
  reg req_0;
  reg req_1;
  wire gnt_0;
  wire gnt_1;

  fsm_full dut(.clock(clock), .reset(reset), .req_0(req_0), .req_1(req_1),
               .gnt_0(gnt_0), .gnt_1(gnt_1));

  always #5 clock = !clock;

  initial begin
    clock = 0;
    reset = 1;
    req_0 = 0;
    req_1 = 0;
    repeat (2) begin
      @(negedge clock);
    end
    reset = 0;
    @(negedge clock);
    // Requester 0 alone.
    req_0 = 1;
    repeat (3) begin
      @(negedge clock);
    end
    req_0 = 0;
    repeat (2) begin
      @(negedge clock);
    end
    // Requester 1 alone.
    req_1 = 1;
    repeat (3) begin
      @(negedge clock);
    end
    // Requester 0 joins while 1 holds the grant.
    req_0 = 1;
    repeat (2) begin
      @(negedge clock);
    end
    req_1 = 0;
    repeat (3) begin
      @(negedge clock);
    end
    req_0 = 0;
    repeat (2) begin
      @(negedge clock);
    end
    #5 $finish;
  end
endmodule
