// Two-requester arbiter finite state machine: a combinational next-state
// block, a sequential state register, and registered grant outputs.
module fsm_full(clock, reset, req_0, req_1, gnt_0, gnt_1);
  input clock;
  input reset;
  input req_0;
  input req_1;
  output gnt_0;
  output gnt_1;
  reg gnt_0;
  reg gnt_1;

  parameter IDLE = 3'b001;
  parameter GNT0 = 3'b010;
  parameter GNT1 = 3'b100;

  reg [2:0] state;
  reg [2:0] next_state;

  always @(state or req_0 or req_1)
  begin : FSM_COMBO
    next_state = 3'b000;
    case (state)
      IDLE : begin
        if (req_0 == 1'b1) begin
          next_state = GNT0;
        end
        else if (req_1 == 1'b1) begin
          next_state = GNT1;
        end
        else begin
          next_state = IDLE;
        end
      end
      GNT0 : begin
        if (req_0 == 1'b1) begin
          next_state = GNT0;
        end
        else begin
          next_state = IDLE;
        end
      end
      GNT1 : begin
        if (req_1 == 1'b1) begin
          next_state = GNT1;
        end
        else begin
          next_state = IDLE;
        end
      end
      default : next_state = IDLE;
    endcase
  end

  always @(posedge clock)
  begin : FSM_SEQ
    if (reset == 1'b1) begin
      state <= IDLE;
    end
    else begin
      state <= next_state;
    end
  end

  always @(posedge clock)
  begin : FSM_OUTPUT
    if (reset == 1'b1) begin
      gnt_0 <= 1'b0;
      gnt_1 <= 1'b0;
    end
    else begin
      case (state)
        GNT0 : begin
          gnt_0 <= 1'b1;
          gnt_1 <= 1'b0;
        end
        GNT1 : begin
          gnt_0 <= 1'b0;
          gnt_1 <= 1'b1;
        end
        default : begin
          gnt_0 <= 1'b0;
          gnt_1 <= 1'b0;
        end
      endcase
    end
  end
endmodule
