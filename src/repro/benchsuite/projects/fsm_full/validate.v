// Held-out validation stimulus for the arbiter FSM: mid-run reset and an
// interleaved request pattern.
module fsm_full_validate_tb;
  reg clock;
  reg reset;
  reg req_0;
  reg req_1;
  wire gnt_0;
  wire gnt_1;
  integer i;

  fsm_full dut(.clock(clock), .reset(reset), .req_0(req_0), .req_1(req_1),
               .gnt_0(gnt_0), .gnt_1(gnt_1));

  always #5 clock = !clock;

  initial begin
    clock = 0;
    reset = 1;
    req_0 = 0;
    req_1 = 0;
    @(negedge clock);
    reset = 0;
    for (i = 0; i < 10; i = i + 1) begin
      req_0 = (i % 2);
      req_1 = (i % 3 == 0);
      @(negedge clock);
    end
    reset = 1;
    @(negedge clock);
    reset = 0;
    req_0 = 1;
    req_1 = 1;
    repeat (4) begin
      @(negedge clock);
    end
    req_0 = 0;
    repeat (3) begin
      @(negedge clock);
    end
    req_1 = 0;
    repeat (2) begin
      @(negedge clock);
    end
    #5 $finish;
  end
endmodule
