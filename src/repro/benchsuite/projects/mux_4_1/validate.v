// Held-out validation stimulus for the 4-to-1 mux: pseudo-random data and
// select sweeps in a different order.
module mux_4_1_validate_tb;
  reg clk;
  reg [1:0] sel;
  reg [3:0] a;
  reg [3:0] b;
  reg [3:0] c;
  reg [3:0] d;
  wire [3:0] out;
  integer i;

  mux_4_1 dut(.sel(sel), .a(a), .b(b), .c(c), .d(d), .out(out));

  always #5 clk = !clk;

  initial begin
    clk = 0;
    a = 4'hE;
    b = 4'h7;
    c = 4'h3;
    d = 4'hC;
    sel = 2'b11;
    @(negedge clk);
    for (i = 15; i >= 0; i = i - 1) begin
      sel = i;
      a = i;
      d = 15 - i;
      @(negedge clk);
    end
    #5 $finish;
  end
endmodule
