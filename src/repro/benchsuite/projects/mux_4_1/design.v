// 4-to-1 multiplexer over 4-bit data inputs.
module mux_4_1(sel, a, b, c, d, out);
  input [1:0] sel;
  input [3:0] a;
  input [3:0] b;
  input [3:0] c;
  input [3:0] d;
  output [3:0] out;
  reg [3:0] out;

  always @(*)
  begin : MUX
    case (sel)
      2'b00 : out = a;
      2'b01 : out = b;
      2'b10 : out = c;
      2'b11 : out = d;
      default : out = 4'b0000;
    endcase
  end
endmodule
