// Testbench for the 4-to-1 mux: distinct data values, all select codes,
// then changing data under a fixed select.
module mux_4_1_tb;
  reg clk;
  reg [1:0] sel;
  reg [3:0] a;
  reg [3:0] b;
  reg [3:0] c;
  reg [3:0] d;
  wire [3:0] out;
  integer i;

  mux_4_1 dut(.sel(sel), .a(a), .b(b), .c(c), .d(d), .out(out));

  always #5 clk = !clk;

  initial begin
    clk = 0;
    a = 4'h1;
    b = 4'h2;
    c = 4'h4;
    d = 4'h8;
    sel = 2'b00;
    @(negedge clk);
    for (i = 0; i < 4; i = i + 1) begin
      sel = i;
      @(negedge clk);
    end
    sel = 2'b10;
    for (i = 0; i < 4; i = i + 1) begin
      c = i + 9;
      @(negedge clk);
    end
    sel = 2'b01;
    b = 4'hF;
    @(negedge clk);
    #5 $finish;
  end
endmodule
