// Testbench for the pairing accumulator: feed a fixed coefficient
// sequence, with gaps in coeff_valid, and observe the accumulator.
module tate_pairing_tb;
  reg clk;
  reg rst;
  reg [7:0] coeff;
  reg coeff_valid;
  wire [7:0] acc_out;
  wire done;

  tate_pairing dut(.clk(clk), .rst(rst), .coeff(coeff),
                   .coeff_valid(coeff_valid), .acc_out(acc_out), .done(done));

  always #5 clk = !clk;

  initial begin
    clk = 0;
    rst = 1;
    coeff = 8'h00;
    coeff_valid = 0;
    repeat (2) begin
      @(negedge clk);
    end
    rst = 0;
    @(negedge clk);

    coeff = 8'h03;
    coeff_valid = 1;
    @(negedge clk);
    coeff = 8'h1D;
    @(negedge clk);
    coeff_valid = 0;
    @(negedge clk);
    coeff = 8'hB7;
    coeff_valid = 1;
    @(negedge clk);
    coeff = 8'h42;
    @(negedge clk);
    coeff = 8'h05;
    @(negedge clk);
    coeff = 8'hF0;
    @(negedge clk);
    coeff_valid = 0;
    repeat (2) begin
      @(negedge clk);
    end
    $display("acc=%h done=%b", acc_out, done);
    #5 $finish;
  end
endmodule
