// Core for a Tate-bilinear-pairing style accumulator over GF(2^8).
//
// The datapath is the characteristic-two field arithmetic the pairing
// algorithm iterates: a combinational GF(2^8) multiplier (shift-and-add
// with reduction by x^8 + x^4 + x^3 + x + 1), a squaring unit built from
// the multiplier, and a Miller-loop-style accumulator that folds in one
// coefficient per cycle:  acc <= acc^2 * coeff.
module gf8_mul(a, b, p);
  input [7:0] a;
  input [7:0] b;
  output [7:0] p;
  reg [7:0] p;
  reg [8:0] tmp;
  reg [7:0] aa;
  integer i;

  always @(*)
  begin : MUL
    p = 8'h00;
    aa = a;
    for (i = 0; i < 8; i = i + 1) begin
      if (b[i]) begin
        p = p ^ aa;
      end
      // Multiply the running operand by x (left shift) and reduce.
      tmp = aa << 1;
      if (tmp[8]) begin
        tmp = tmp ^ 9'h11B;
      end
      aa = tmp[7:0];
    end
  end
endmodule

module gf8_square(a, q);
  input [7:0] a;
  output [7:0] q;

  gf8_mul squarer(.a(a), .b(a), .p(q));
endmodule

module tate_pairing(clk, rst, coeff, coeff_valid, acc_out, done);
  input clk;
  input rst;
  input [7:0] coeff;
  input coeff_valid;
  output [7:0] acc_out;
  output done;

  parameter STEPS = 4'd6;

  reg [7:0] acc;
  reg [3:0] step_cnt;
  reg done_r;

  wire [7:0] acc_squared;
  wire [7:0] acc_next;

  assign acc_out = acc;
  assign done = done_r;

  gf8_square sq(.a(acc), .q(acc_squared));
  gf8_mul mul(.a(acc_squared), .b(coeff), .p(acc_next));

  always @(posedge clk)
  begin : MILLER
    if (rst == 1'b1) begin
      acc <= 8'h01;
      step_cnt <= 4'd0;
      done_r <= 1'b0;
    end
    else begin
      if (coeff_valid && !done_r) begin
        acc <= acc_next;
        step_cnt <= step_cnt + 1;
        if (step_cnt == STEPS - 1) begin
          done_r <= 1'b1;
        end
      end
    end
  end
endmodule
