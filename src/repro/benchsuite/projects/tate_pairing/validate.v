// Held-out validation stimulus for the pairing accumulator: a different
// coefficient schedule and a mid-run reset.
module tate_pairing_validate_tb;
  reg clk;
  reg rst;
  reg [7:0] coeff;
  reg coeff_valid;
  wire [7:0] acc_out;
  wire done;
  integer i;

  tate_pairing dut(.clk(clk), .rst(rst), .coeff(coeff),
                   .coeff_valid(coeff_valid), .acc_out(acc_out), .done(done));

  always #5 clk = !clk;

  initial begin
    clk = 0;
    rst = 1;
    coeff = 8'hFF;
    coeff_valid = 0;
    @(negedge clk);
    rst = 0;
    coeff_valid = 1;
    for (i = 0; i < 3; i = i + 1) begin
      coeff = (i * 37) + 11;
      @(negedge clk);
    end
    rst = 1;
    @(negedge clk);
    rst = 0;
    for (i = 0; i < 7; i = i + 1) begin
      coeff = (i * 73) + 5;
      coeff_valid = (i != 4);
      @(negedge clk);
    end
    coeff_valid = 0;
    repeat (2) begin
      @(negedge clk);
    end
    #5 $finish;
  end
endmodule
