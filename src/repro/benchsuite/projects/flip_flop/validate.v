// Held-out validation stimulus for the T flip-flop: mid-run reset and an
// alternating t pattern.
module tff_validate_tb;
  reg clk;
  reg rstn;
  reg t;
  wire q;
  integer i;

  tff dut(.clk(clk), .rstn(rstn), .t(t), .q(q));

  always #5 clk = !clk;

  initial begin
    clk = 0;
    rstn = 0;
    t = 1;
    @(negedge clk);
    rstn = 1;
    for (i = 0; i < 12; i = i + 1) begin
      t = (i % 2);
      @(negedge clk);
    end
    rstn = 0;
    @(negedge clk);
    rstn = 1;
    t = 1;
    repeat (7) begin
      @(negedge clk);
    end
    #5 $finish;
  end
endmodule
