// T flip-flop with an active-low synchronous reset.
module tff(clk, rstn, t, q);
  input clk;
  input rstn;
  input t;
  output q;
  reg q;

  always @(posedge clk)
  begin : TFF
    if (!rstn) begin
      q <= 1'b0;
    end
    else begin
      if (t) begin
        q <= !q;
      end
      else begin
        q <= q;
      end
    end
  end
endmodule
