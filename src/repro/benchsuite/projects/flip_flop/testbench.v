// Testbench for the T flip-flop: reset, then a toggle pattern on t.
module tff_tb;
  reg clk;
  reg rstn;
  reg t;
  wire q;

  tff dut(.clk(clk), .rstn(rstn), .t(t), .q(q));

  always #5 clk = !clk;

  initial begin
    clk = 0;
    rstn = 0;
    t = 0;
    repeat (2) begin
      @(negedge clk);
    end
    rstn = 1;
    t = 1;
    repeat (6) begin
      @(negedge clk);
    end
    t = 0;
    repeat (3) begin
      @(negedge clk);
    end
    t = 1;
    repeat (5) begin
      @(negedge clk);
    end
    #5 $finish;
  end
endmodule
