// Two-wire bidirectional serial bus receiver (I2C-style slave core).
//
// The core watches a serial clock (scl) and data line (sda_in), both
// oversampled by the system clock.  A transaction is:
//   START (sda falls while scl high)
//   8 address bits (7-bit address + R/W), MSB first, sampled on scl rise
//   ACK slot: the core drives sda_out low when the address matches
//   8 data bits, MSB first
//   ACK slot for the data byte
//   STOP (sda rises while scl high)
//
// Outputs: ack-driven sda_out, the received byte, a one-cycle data_valid
// strobe, and a busy flag covering the whole transaction.
module i2c(clk, rst, scl, sda_in, sda_out, data_out, data_valid, busy);
  input clk;
  input rst;
  input scl;
  input sda_in;
  output sda_out;
  output [7:0] data_out;
  output data_valid;
  output busy;

  reg sda_out;
  reg [7:0] data_out;
  reg data_valid;
  reg busy;

  parameter OWN_ADDR = 7'h51;

  parameter S_IDLE = 3'd0;
  parameter S_ADDR = 3'd1;
  parameter S_ACK_ADDR = 3'd2;
  parameter S_DATA = 3'd3;
  parameter S_ACK_DATA = 3'd4;

  reg [2:0] state;
  reg [7:0] shift;
  reg [3:0] bit_cnt;
  reg addr_match;
  reg scl_prev;
  reg sda_prev;

  wire scl_rise;
  wire scl_fall;
  wire start_cond;
  wire stop_cond;

  assign scl_rise = scl & !scl_prev;
  assign scl_fall = !scl & scl_prev;
  assign start_cond = scl & scl_prev & sda_prev & !sda_in;
  assign stop_cond = scl & scl_prev & !sda_prev & sda_in;

  always @(posedge clk)
  begin : SAMPLE
    if (rst == 1'b1) begin
      scl_prev <= 1'b0;
      sda_prev <= 1'b1;
    end
    else begin
      scl_prev <= scl;
      sda_prev <= sda_in;
    end
  end

  always @(posedge clk)
  begin : FSM
    if (rst == 1'b1) begin
      state <= S_IDLE;
      shift <= 8'h00;
      bit_cnt <= 4'd0;
      addr_match <= 1'b0;
      sda_out <= 1'b1;
      data_out <= 8'h00;
      data_valid <= 1'b0;
      busy <= 1'b0;
    end
    else begin
      data_valid <= 1'b0;
      if (start_cond) begin
        state <= S_ADDR;
        bit_cnt <= 4'd0;
        shift <= 8'h00;
        busy <= 1'b1;
        sda_out <= 1'b1;
      end
      else if (stop_cond) begin
        state <= S_IDLE;
        busy <= 1'b0;
        sda_out <= 1'b1;
      end
      else begin
        case (state)
          S_ADDR : begin
            if (scl_rise) begin
              shift <= {shift[6:0], sda_in};
              bit_cnt <= bit_cnt + 1;
            end
            if (scl_fall && bit_cnt == 4'd8) begin
              addr_match <= (shift[7:1] == OWN_ADDR);
              state <= S_ACK_ADDR;
            end
          end
          S_ACK_ADDR : begin
            if (addr_match) begin
              sda_out <= 1'b0;
            end
            if (scl_fall) begin
              sda_out <= 1'b1;
              bit_cnt <= 4'd0;
              shift <= 8'h00;
              if (addr_match) begin
                state <= S_DATA;
              end
              else begin
                state <= S_IDLE;
                busy <= 1'b0;
              end
            end
          end
          S_DATA : begin
            if (scl_rise) begin
              shift <= {shift[6:0], sda_in};
              bit_cnt <= bit_cnt + 1;
            end
            if (scl_fall && bit_cnt == 4'd8) begin
              data_out <= shift;
              data_valid <= 1'b1;
              state <= S_ACK_DATA;
            end
          end
          S_ACK_DATA : begin
            sda_out <= 1'b0;
            if (scl_fall) begin
              sda_out <= 1'b1;
              bit_cnt <= 4'd0;
              state <= S_IDLE;
              busy <= 1'b0;
            end
          end
          default : state <= S_IDLE;
        endcase
      end
    end
  end
endmodule
