// Held-out validation stimulus for the I2C-style slave: two back-to-back
// write transactions with different data bytes and a mid-sequence reset.
module i2c_validate_tb;
  reg clk;
  reg rst;
  reg scl;
  reg sda;
  wire sda_out;
  wire [7:0] data_out;
  wire data_valid;
  wire busy;
  integer i;

  i2c dut(.clk(clk), .rst(rst), .scl(scl), .sda_in(sda),
          .sda_out(sda_out), .data_out(data_out),
          .data_valid(data_valid), .busy(busy));

  always #5 clk = !clk;

  task send_bit;
    input b;
    begin
      sda = b;
      #10;
      scl = 1;
      #20;
      scl = 0;
      #10;
    end
  endtask

  task send_byte;
    input [7:0] value;
    begin
      for (i = 7; i >= 0; i = i - 1) begin
        send_bit(value[i]);
      end
    end
  endtask

  task ack_slot;
    begin
      sda = 1;
      #10;
      scl = 1;
      #20;
      scl = 0;
      #10;
    end
  endtask

  task start_cond;
    begin
      sda = 1;
      scl = 1;
      #20;
      sda = 0;
      #20;
      scl = 0;
      #10;
    end
  endtask

  task stop_cond;
    begin
      sda = 0;
      #10;
      scl = 1;
      #20;
      sda = 1;
      #20;
    end
  endtask

  initial begin
    clk = 0;
    rst = 1;
    scl = 0;
    sda = 1;
    #25;
    rst = 0;
    #20;

    // Write 0x96 to our address.
    start_cond;
    send_byte(8'hA2);
    ack_slot;
    send_byte(8'h96);
    ack_slot;
    stop_cond;
    #30;

    // Reset in the middle of a transaction; the core must recover.
    start_cond;
    send_byte(8'hA2);
    rst = 1;
    #20;
    rst = 0;
    #20;
    stop_cond;
    #30;

    // Write 0x0F to our address after the aborted transfer.
    start_cond;
    send_byte(8'hA2);
    ack_slot;
    send_byte(8'h0F);
    ack_slot;
    stop_cond;
    #40;

    $finish;
  end
endmodule
