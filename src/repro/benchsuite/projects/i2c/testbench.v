// Testbench for the I2C-style slave: bit-bangs a full write transaction to
// the core's own address, then one to a foreign address (must be NAKed).
module i2c_tb;
  reg clk;
  reg rst;
  reg scl;
  reg sda;
  wire sda_out;
  wire [7:0] data_out;
  wire data_valid;
  wire busy;
  integer i;

  i2c dut(.clk(clk), .rst(rst), .scl(scl), .sda_in(sda),
          .sda_out(sda_out), .data_out(data_out),
          .data_valid(data_valid), .busy(busy));

  always #5 clk = !clk;

  task send_bit;
    input b;
    begin
      sda = b;
      #10;
      scl = 1;
      #20;
      scl = 0;
      #10;
    end
  endtask

  task send_byte;
    input [7:0] value;
    begin
      for (i = 7; i >= 0; i = i - 1) begin
        send_bit(value[i]);
      end
    end
  endtask

  task ack_slot;
    begin
      sda = 1;
      #10;
      scl = 1;
      #20;
      scl = 0;
      #10;
    end
  endtask

  task start_cond;
    begin
      sda = 1;
      scl = 1;
      #20;
      sda = 0;
      #20;
      scl = 0;
      #10;
    end
  endtask

  task stop_cond;
    begin
      sda = 0;
      #10;
      scl = 1;
      #20;
      sda = 1;
      #20;
    end
  endtask

  initial begin
    clk = 0;
    rst = 1;
    scl = 0;
    sda = 1;
    #25;
    rst = 0;
    #20;

    // Transaction 1: our address (0x51) + write, data byte 0x3C.
    start_cond;
    send_byte(8'hA2);
    ack_slot;
    send_byte(8'h3C);
    ack_slot;
    stop_cond;
    #40;

    // Transaction 2: foreign address (0x23) — core must not ACK.
    start_cond;
    send_byte(8'h46);
    ack_slot;
    stop_cond;
    #40;

    $finish;
  end
endmodule
