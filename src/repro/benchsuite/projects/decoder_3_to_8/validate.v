// Held-out validation stimulus for the decoder: a pseudo-random walk over
// (enable, sel) pairs, including enable toggles mid-sequence.
module decoder_3_to_8_validate_tb;
  reg clk;
  reg enable;
  reg [2:0] sel;
  wire [7:0] out;
  integer i;

  decoder_3_to_8 dut(.enable(enable), .sel(sel), .out(out));

  always #5 clk = !clk;

  initial begin
    clk = 0;
    enable = 1;
    sel = 3'b111;
    @(negedge clk);
    for (i = 0; i < 16; i = i + 1) begin
      sel = (i * 5) + 3;
      enable = (i % 3 != 0);
      @(negedge clk);
    end
    enable = 1;
    for (i = 7; i >= 0; i = i - 1) begin
      sel = i;
      @(negedge clk);
    end
    #5 $finish;
  end
endmodule
