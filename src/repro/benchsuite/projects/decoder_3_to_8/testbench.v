// Testbench for the 3-to-8 decoder: walks every select value with the
// enable both low and high, paced by a local clock for recording.
module decoder_3_to_8_tb;
  reg clk;
  reg enable;
  reg [2:0] sel;
  wire [7:0] out;
  integer i;

  decoder_3_to_8 dut(.enable(enable), .sel(sel), .out(out));

  always #5 clk = !clk;

  initial begin
    clk = 0;
    enable = 0;
    sel = 3'b000;
    @(negedge clk);
    for (i = 0; i < 8; i = i + 1) begin
      sel = i;
      @(negedge clk);
    end
    enable = 1;
    for (i = 0; i < 8; i = i + 1) begin
      sel = i;
      @(negedge clk);
    end
    enable = 0;
    sel = 3'b101;
    @(negedge clk);
    enable = 1;
    @(negedge clk);
    #5 $finish;
  end
endmodule
