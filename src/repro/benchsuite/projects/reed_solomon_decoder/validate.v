// Held-out validation stimulus for the RS output stage: a fuller buffer,
// interleaved writes during the drain window, and a different reset point.
module reed_solomon_decoder_validate_tb;
  reg clk;
  reg reset;
  reg in_valid;
  reg [7:0] in_data;
  reg [7:0] err_mag;
  wire [7:0] out_data;
  wire out_valid;
  wire [4:0] buffer_level;
  integer i;

  reed_solomon_decoder dut(.clk(clk), .reset(reset), .in_valid(in_valid),
                           .in_data(in_data), .err_mag(err_mag),
                           .out_data(out_data), .out_valid(out_valid),
                           .buffer_level(buffer_level));

  always #5 clk = !clk;

  initial begin
    clk = 0;
    reset = 0;
    in_valid = 0;
    in_data = 8'h00;
    err_mag = 8'h00;
    #2 reset = 1;
    #6 reset = 0;
    @(negedge clk);

    // Fill ten slots.
    in_valid = 1;
    for (i = 0; i < 10; i = i + 1) begin
      in_data = (i * 29) + 7;
      err_mag = (i * 13);
      @(negedge clk);
    end
    in_valid = 0;

    repeat (503) begin
      @(negedge clk);
    end

    // Interleave two more writes while the stage is draining.
    in_valid = 1;
    in_data = 8'hC3;
    err_mag = 8'h3C;
    @(negedge clk);
    in_data = 8'hE7;
    err_mag = 8'h00;
    @(negedge clk);
    in_valid = 0;
    repeat (14) begin
      @(negedge clk);
    end
    #5 $finish;
  end
endmodule
