// Testbench for the RS decoder output stage: load corrected symbols, wait
// out the 500-cycle correction-latency budget, and watch the drain.  The
// reset pulse is asserted between clock edges so asynchronous reset
// behaviour is exercised.
module reed_solomon_decoder_tb;
  reg clk;
  reg reset;
  reg in_valid;
  reg [7:0] in_data;
  reg [7:0] err_mag;
  wire [7:0] out_data;
  wire out_valid;
  wire [4:0] buffer_level;
  integer i;

  reed_solomon_decoder dut(.clk(clk), .reset(reset), .in_valid(in_valid),
                           .in_data(in_data), .err_mag(err_mag),
                           .out_data(out_data), .out_valid(out_valid),
                           .buffer_level(buffer_level));

  always #5 clk = !clk;

  initial begin
    clk = 0;
    reset = 0;
    in_valid = 0;
    in_data = 8'h00;
    err_mag = 8'h00;
    // Asynchronous reset pulse between clock edges.
    #3 reset = 1;
    #4 reset = 0;
    @(negedge clk);

    // Load six corrected symbols with varying error magnitudes.
    in_valid = 1;
    for (i = 0; i < 6; i = i + 1) begin
      in_data = 8'h20 + i;
      err_mag = (i % 2 == 0) ? 8'h00 : 8'h0F;
      @(negedge clk);
    end
    in_valid = 0;

    // Wait out the correction-latency budget (500 cycles) plus margin.
    repeat (505) begin
      @(negedge clk);
    end

    // A second async reset pulse between edges, mid-drain.
    #2 reset = 1;
    #3 reset = 0;
    @(negedge clk);

    // Load two more symbols; the latency budget restarts after reset.
    in_valid = 1;
    in_data = 8'hAA;
    err_mag = 8'h55;
    @(negedge clk);
    in_data = 8'hBB;
    err_mag = 8'h00;
    @(negedge clk);
    in_valid = 0;
    repeat (8) begin
      @(negedge clk);
    end
    $display("out=%h valid=%b level=%d", out_data, out_valid, buffer_level);
    #5 $finish;
  end
endmodule
