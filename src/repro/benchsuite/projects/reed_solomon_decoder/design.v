// Output stage of a Reed-Solomon error-correction decoder.
//
// Corrected symbols arrive as (data, error-magnitude) pairs and are
// buffered in a small pipeline memory.  After an erasure-latency delay of
// 500 clock cycles (the decoder's worst-case correction latency budget),
// buffered symbols drain to the output port with the error magnitude
// applied (GF(2^8) addition, i.e. xor).  An asynchronous active-high
// reset clears the stage.
module reed_solomon_decoder(clk, reset, in_valid, in_data, err_mag,
                            out_data, out_valid, buffer_level);
  input clk;
  input reset;
  input in_valid;
  input [7:0] in_data;
  input [7:0] err_mag;
  output [7:0] out_data;
  output out_valid;
  output [4:0] buffer_level;

  reg [7:0] out_data;
  reg out_valid;

  // Pipeline memory for symbols awaiting their correction window.
  reg [7:0] sym_mem [0:15];
  reg [7:0] mag_mem [0:15];
  reg [3:0] wr_ptr;
  reg [3:0] rd_ptr;
  reg [4:0] count;

  // Correction-latency countdown: symbols may only drain once the
  // decoder pipeline has had its full 500-cycle correction budget.
  reg [9:0] delay_cnt;
  reg draining;

  assign buffer_level = count;

  always @(posedge clk or posedge reset)
  begin : OUT_STAGE
    if (reset == 1'b1) begin
      wr_ptr <= 4'd0;
      rd_ptr <= 4'd0;
      count <= 5'd0;
      delay_cnt <= 10'd0;
      draining <= 1'b0;
      out_data <= 8'h00;
      out_valid <= 1'b0;
    end
    else begin
      out_valid <= 1'b0;
      if (in_valid && count < 5'd16) begin
        sym_mem[wr_ptr] <= in_data;
        mag_mem[wr_ptr] <= err_mag;
        wr_ptr <= wr_ptr + 1;
        count <= count + 1;
      end
      if (delay_cnt == 10'd500) begin
        draining <= 1'b1;
      end
      else begin
        delay_cnt <= delay_cnt + 1;
      end
      if (draining && count > 5'd0 && !(in_valid && count < 5'd16)) begin
        out_data <= sym_mem[rd_ptr] ^ mag_mem[rd_ptr];
        out_valid <= 1'b1;
        rd_ptr <= rd_ptr + 1;
        count <= count - 1;
      end
    end
  end
endmodule
