// 8-bit left-rotating shift register with parallel load, an active-low
// synchronous reset, and a registered parity flag over the current value.
module lshift_reg(clk, rstn, load_val, load_en, op, parity);
  input clk;
  input rstn;
  input [7:0] load_val;
  input load_en;
  output [7:0] op;
  output parity;
  reg [7:0] op;
  reg parity;

  always @(posedge clk)
  begin : SHIFT
    if (!rstn) begin
      op <= 8'h00;
    end
    else begin
      if (load_en) begin
        op <= load_val;
      end
      else begin
        op <= {op[6:0], op[7]};
      end
    end
  end

  // Registered parity of the low nibble, one cycle behind.
  always @(posedge clk)
  begin : PARITY
    if (!rstn) begin
      parity <= 1'b0;
    end
    else begin
      parity <= ^(op[3:0]);
    end
  end
endmodule
