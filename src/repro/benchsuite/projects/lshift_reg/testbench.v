// Testbench for the left shift register: reset, load a seed value, then
// rotate for a number of cycles and reload.
module lshift_reg_tb;
  reg clk;
  reg rstn;
  reg [7:0] load_val;
  reg load_en;
  wire [7:0] op;
  wire parity;

  lshift_reg dut(.clk(clk), .rstn(rstn), .load_val(load_val),
                 .load_en(load_en), .op(op), .parity(parity));

  always #5 clk = !clk;

  initial begin
    clk = 0;
    rstn = 0;
    load_val = 8'h01;
    load_en = 0;
    repeat (2) begin
      @(negedge clk);
    end
    rstn = 1;
    load_en = 1;
    @(negedge clk);
    load_en = 0;
    repeat (10) begin
      @(negedge clk);
    end
    load_val = 8'hA5;
    load_en = 1;
    @(negedge clk);
    load_en = 0;
    repeat (6) begin
      @(negedge clk);
    end
    #5 $finish;
  end
endmodule
