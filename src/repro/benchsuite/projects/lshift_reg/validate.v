// Held-out validation stimulus for the shift register: different seed
// values, a mid-run reset, and longer rotation runs.
module lshift_reg_validate_tb;
  reg clk;
  reg rstn;
  reg [7:0] load_val;
  reg load_en;
  wire [7:0] op;
  wire parity;

  lshift_reg dut(.clk(clk), .rstn(rstn), .load_val(load_val),
                 .load_en(load_en), .op(op), .parity(parity));

  always #5 clk = !clk;

  initial begin
    clk = 0;
    rstn = 0;
    load_val = 8'hC3;
    load_en = 0;
    @(negedge clk);
    rstn = 1;
    load_en = 1;
    @(negedge clk);
    load_en = 0;
    repeat (13) begin
      @(negedge clk);
    end
    rstn = 0;
    @(negedge clk);
    rstn = 1;
    load_val = 8'h5A;
    load_en = 1;
    @(negedge clk);
    load_en = 0;
    repeat (9) begin
      @(negedge clk);
    end
    #5 $finish;
  end
endmodule
