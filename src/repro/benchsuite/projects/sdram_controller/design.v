// Synchronous DRAM memory controller (simplified single-bank model).
//
// Brings the device out of reset with a NOP/PRECHARGE/REFRESH init
// sequence, then serves one-shot read/write requests through a small
// command FSM: ACTIVATE -> READ/WRITE -> PRECHARGE.  Reads honour a
// CAS latency of two cycles via a return pipeline.  The behavioural
// storage array lives inside the controller so the testbench can observe
// end-to-end data movement.
module sdram_controller(clk, rst_n, req, wr_en, addr, wr_data,
                        rd_data, rd_valid, busy, command);
  input clk;
  input rst_n;
  input req;
  input wr_en;
  input [7:0] addr;
  input [7:0] wr_data;
  output [7:0] rd_data;
  output rd_valid;
  output busy;
  output [2:0] command;

  reg [7:0] rd_data;
  reg rd_valid;
  reg busy;
  reg [2:0] command;

  // Command encodings driven on the SDRAM command bus.
  parameter CMD_NOP = 3'b000;
  parameter CMD_PRECHARGE = 3'b001;
  parameter CMD_REFRESH = 3'b010;
  parameter CMD_ACTIVE = 3'b011;
  parameter CMD_READ = 3'b100;
  parameter CMD_WRITE = 3'b101;

  // FSM states.
  parameter INIT_NOP1 = 4'd0;
  parameter INIT_PRE = 4'd1;
  parameter INIT_REF = 4'd2;
  parameter IDLE = 4'd3;
  parameter ACTIVE = 4'd4;
  parameter RW_CMD = 4'd5;
  parameter CAS_WAIT = 4'd6;
  parameter PRECHARGE = 4'd7;

  // Init timing: cycles of NOP before precharge, refresh repeats.
  parameter INIT_WAIT = 4'd6;
  parameter REFRESH_COUNT = 4'd2;

  reg [3:0] state;
  reg [3:0] state_cnt;
  reg [3:0] state_cnt_next;
  reg [7:0] haddr_r;
  reg [7:0] rd_data_r;
  reg wr_en_r;
  reg [7:0] wr_data_r;

  // Behavioural storage array.
  reg [7:0] mem [0:255];

  always @(posedge clk)
  begin : CTRL
    if (~rst_n) begin
      state <= INIT_NOP1;
      command <= CMD_NOP;
      state_cnt <= 4'hf;
      haddr_r <= 8'h00;
      state_cnt_next <= 4'd0;
      rd_data_r <= 8'h00;
      busy <= 1'b1;
      rd_data <= 8'h00;
      rd_valid <= 1'b0;
      wr_en_r <= 1'b0;
      wr_data_r <= 8'h00;
    end
    else begin
      rd_valid <= 1'b0;
      case (state)
        INIT_NOP1 : begin
          command <= CMD_NOP;
          busy <= 1'b1;
          if (state_cnt == INIT_WAIT) begin
            state <= INIT_PRE;
          end
          else begin
            state_cnt <= state_cnt + 1;
          end
        end
        INIT_PRE : begin
          command <= CMD_PRECHARGE;
          state_cnt <= 4'd0;
          state <= INIT_REF;
        end
        INIT_REF : begin
          command <= CMD_REFRESH;
          if (state_cnt == REFRESH_COUNT) begin
            state <= IDLE;
          end
          else begin
            state_cnt <= state_cnt + 1;
          end
        end
        IDLE : begin
          command <= CMD_NOP;
          busy <= 1'b0;
          state_cnt_next <= 4'd0;
          if (req) begin
            haddr_r <= addr;
            wr_en_r <= wr_en;
            wr_data_r <= wr_data;
            busy <= 1'b1;
            state <= ACTIVE;
          end
        end
        ACTIVE : begin
          command <= CMD_ACTIVE;
          state <= RW_CMD;
        end
        RW_CMD : begin
          if (wr_en_r) begin
            command <= CMD_WRITE;
            mem[haddr_r] <= wr_data_r;
            state <= PRECHARGE;
          end
          else begin
            command <= CMD_READ;
            rd_data_r <= mem[haddr_r];
            state_cnt_next <= 4'd2;
            state <= CAS_WAIT;
          end
        end
        CAS_WAIT : begin
          command <= CMD_NOP;
          if (state_cnt_next == 4'd1) begin
            rd_data <= rd_data_r;
            rd_valid <= 1'b1;
            state <= PRECHARGE;
          end
          else begin
            state_cnt_next <= state_cnt_next - 1;
          end
        end
        PRECHARGE : begin
          command <= CMD_PRECHARGE;
          state <= IDLE;
        end
        default : state <= IDLE;
      endcase
    end
  end
endmodule
