// Held-out validation stimulus for the SDRAM controller: different
// addresses/data, a read of an overwritten location, and back-to-back
// requests arriving while busy.
module sdram_controller_validate_tb;
  reg clk;
  reg rst_n;
  reg req;
  reg wr_en;
  reg [7:0] addr;
  reg [7:0] wr_data;
  wire [7:0] rd_data;
  wire rd_valid;
  wire busy;
  wire [2:0] command;

  sdram_controller dut(.clk(clk), .rst_n(rst_n), .req(req), .wr_en(wr_en),
                       .addr(addr), .wr_data(wr_data), .rd_data(rd_data),
                       .rd_valid(rd_valid), .busy(busy), .command(command));

  always #5 clk = !clk;

  task do_write;
    input [7:0] a;
    input [7:0] d;
    begin
      wait (busy == 1'b0)
      @(negedge clk);
      addr = a;
      wr_data = d;
      wr_en = 1;
      req = 1;
      @(negedge clk);
      req = 0;
      wr_en = 0;
      @(negedge clk);
    end
  endtask

  task do_read;
    input [7:0] a;
    begin
      wait (busy == 1'b0)
      @(negedge clk);
      addr = a;
      wr_en = 0;
      req = 1;
      @(negedge clk);
      req = 0;
      wait (rd_valid == 1'b1)
      @(negedge clk);
    end
  endtask

  initial begin
    clk = 0;
    rst_n = 0;
    req = 0;
    wr_en = 0;
    addr = 8'h00;
    wr_data = 8'h3E;
    repeat (4) begin
      @(negedge clk);
    end
    rst_n = 1;

    do_write(8'h05, 8'h11);
    do_write(8'h05, 8'h22);
    do_read(8'h05);
    do_write(8'hF0, 8'h99);
    do_read(8'hF0);
    do_read(8'h05);

    repeat (3) begin
      @(negedge clk);
    end
    #5 $finish;
  end
endmodule
