// Held-out validation stimulus for the hash core: different messages, a
// single-block digest, and a mid-absorb reset.
module sha3_validate_tb;
  reg clk;
  reg rst;
  reg in_valid;
  reg [31:0] din;
  reg last;
  wire [63:0] hash_out;
  wire out_valid;
  wire ready;

  sha3 dut(.clk(clk), .rst(rst), .in_valid(in_valid), .din(din),
           .last(last), .hash_out(hash_out), .out_valid(out_valid),
           .ready(ready));

  always #5 clk = !clk;

  initial begin
    clk = 0;
    rst = 1;
    in_valid = 0;
    din = 32'h0;
    last = 0;
    @(negedge clk);
    rst = 0;
    @(negedge clk);

    // Single-block message, finalised immediately.
    in_valid = 1;
    last = 1;
    din = 32'h00000001;
    @(negedge clk);
    din = 32'h80000000;
    @(negedge clk);
    in_valid = 0;
    last = 0;
    repeat (12) begin
      @(negedge clk);
    end

    // Start absorbing, reset mid-way, then hash a fresh message with a
    // 4-cycle overflow burst.
    in_valid = 1;
    din = 32'h55555555;
    @(negedge clk);
    in_valid = 0;
    rst = 1;
    @(negedge clk);
    rst = 0;
    @(negedge clk);
    in_valid = 1;
    last = 1;
    din = 32'hA5A5A5A5;
    @(negedge clk);
    din = 32'h5A5A5A5A;
    @(negedge clk);
    din = 32'hFFFFFFFF;
    @(negedge clk);
    din = 32'h00FF00FF;
    @(negedge clk);
    in_valid = 0;
    last = 0;
    repeat (12) begin
      @(negedge clk);
    end
    #5 $finish;
  end
endmodule
