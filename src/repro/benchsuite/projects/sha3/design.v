// Cryptographic hash core (sponge construction over a 64-bit state,
// keccak-style rounds: rotate / xor / nonlinear chi step).
//
// Protocol: while in_valid is high, 32-bit words are absorbed into a
// two-word block buffer (with an overflow check on the word counter).
// When the buffer is full the state absorbs the block and runs NROUNDS
// permutation rounds, one per clock.  Raising `last` finalises: after the
// final permutation the state is presented on hash_out with out_valid.
module sha3(clk, rst, in_valid, din, last, hash_out, out_valid, ready);
  input clk;
  input rst;
  input in_valid;
  input [31:0] din;
  input last;
  output [63:0] hash_out;
  output out_valid;
  output ready;

  parameter NROUNDS = 4'd8;

  parameter S_ABSORB = 2'd0;
  parameter S_PERMUTE = 2'd1;
  parameter S_SQUEEZE = 2'd2;

  reg [1:0] state;
  reg [63:0] sponge;
  reg [63:0] block;
  reg [1:0] word_cnt;
  reg [3:0] round_cnt;
  reg finalize;
  reg out_valid_r;
  integer i;

  reg [63:0] tmp;
  reg [63:0] rotated;

  assign hash_out = sponge;
  assign out_valid = out_valid_r;
  assign ready = (state == S_ABSORB);

  // Round constants derived from a small LFSR sequence.
  function [63:0] round_const;
    input [3:0] round;
    begin
      round_const = {60'h000000000000001, round} ^ 64'h8000000080008008;
    end
  endfunction

  always @(posedge clk)
  begin : SPONGE
    if (rst == 1'b1) begin
      state <= S_ABSORB;
      sponge <= 64'h0;
      block <= 64'h0;
      word_cnt <= 2'd0;
      round_cnt <= 4'd0;
      finalize <= 1'b0;
      out_valid_r <= 1'b0;
    end
    else begin
      case (state)
        S_ABSORB : begin
          out_valid_r <= 1'b0;
          if (in_valid) begin
            // Buffer overflow check: only two words fit in a block.
            if (word_cnt < 2'd2) begin
              block <= {block[31:0], din};
              word_cnt <= word_cnt + 1;
            end
          end
          if (word_cnt == 2'd2) begin
            word_cnt <= 2'd0;
            round_cnt <= 4'd0;
            state <= S_PERMUTE;
          end
          if (last) begin
            finalize <= 1'b1;
          end
        end
        S_PERMUTE : begin
          // One keccak-style round per clock: theta-like xor fold,
          // rho-like rotation, chi-like nonlinear mix, iota constant.
          tmp = sponge ^ block;
          for (i = 0; i < 8; i = i + 1) begin
            rotated = {tmp[62:0], tmp[63]};
            tmp = tmp ^ (rotated & (~{tmp[0], tmp[63:1]}));
          end
          sponge <= tmp ^ round_const(round_cnt);
          round_cnt <= round_cnt + 1;
          if (round_cnt == NROUNDS - 1) begin
            block <= 64'h0;
            if (finalize) begin
              state <= S_SQUEEZE;
            end
            else begin
              state <= S_ABSORB;
            end
          end
        end
        S_SQUEEZE : begin
          out_valid_r <= 1'b1;
          finalize <= 1'b0;
          state <= S_ABSORB;
        end
        default : state <= S_ABSORB;
      endcase
    end
  end
endmodule
