// Testbench for the hash core: absorb two blocks (the second finalising),
// including a burst where in_valid stays high past a full buffer so the
// overflow check matters, then capture the digest.
module sha3_tb;
  reg clk;
  reg rst;
  reg in_valid;
  reg [31:0] din;
  reg last;
  wire [63:0] hash_out;
  wire out_valid;
  wire ready;

  sha3 dut(.clk(clk), .rst(rst), .in_valid(in_valid), .din(din),
           .last(last), .hash_out(hash_out), .out_valid(out_valid),
           .ready(ready));

  always #5 clk = !clk;

  initial begin
    clk = 0;
    rst = 1;
    in_valid = 0;
    din = 32'h0;
    last = 0;
    repeat (2) begin
      @(negedge clk);
    end
    rst = 0;
    @(negedge clk);

    // Block 1: a 3-cycle burst — the third word must be rejected by the
    // overflow check while the buffer is already full.
    in_valid = 1;
    din = 32'hDEADBEEF;
    @(negedge clk);
    din = 32'hCAFEF00D;
    @(negedge clk);
    din = 32'h12345678;
    @(negedge clk);
    in_valid = 0;
    din = 32'h0;
    // Wait out the permutation rounds.
    repeat (10) begin
      @(negedge clk);
    end

    // Block 2: two words with `last` asserted, then finalisation.
    in_valid = 1;
    din = 32'h0BADF00D;
    last = 1;
    @(negedge clk);
    din = 32'hFEEDFACE;
    @(negedge clk);
    in_valid = 0;
    last = 0;
    repeat (12) begin
      @(negedge clk);
    end
    $display("hash=%h valid=%b", hash_out, out_valid);
    #5 $finish;
  end
endmodule
