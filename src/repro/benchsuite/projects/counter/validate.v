// Held-out validation testbench for the 4-bit counter: different stimulus
// (two reset pulses, a pause in enable, a longer count run) used only to
// decide whether a plausible repair is *correct* rather than overfitted.
module counter_validate_tb;
  reg clk;
  reg reset;
  reg enable;
  wire [3:0] counter_out;
  wire overflow_out;

  counter dut(.clk(clk), .reset(reset), .enable(enable),
              .counter_out(counter_out), .overflow_out(overflow_out));

  always #5 clk = !clk;

  initial begin
    clk = 0;
    reset = 0;
    enable = 0;
    @(negedge clk);
    reset = 1;
    @(negedge clk);
    reset = 0;
    enable = 1;
    repeat (9) begin
      @(negedge clk);
    end
    enable = 0;
    repeat (3) begin
      @(negedge clk);
    end
    enable = 1;
    repeat (14) begin
      @(negedge clk);
    end
    // Second reset pulse mid-run: overflow must clear again.
    reset = 1;
    @(negedge clk);
    reset = 0;
    repeat (6) begin
      @(negedge clk);
    end
    enable = 0;
    #5 $finish;
  end
endmodule
