// Testbench for the 4-bit counter (paper Figure 1b).
module counter_tb;
  reg clk;
  reg reset;
  reg enable;
  wire [3:0] counter_out;
  wire overflow_out;
  event reset_trigger;
  event reset_done_trigger;
  event terminate_sim;

  counter dut(.clk(clk), .reset(reset), .enable(enable),
              .counter_out(counter_out), .overflow_out(overflow_out));

  always #5 clk = !clk;

  initial begin
    clk = 0;
    reset = 0;
    enable = 0;
  end

  initial begin
    #5;
    forever begin
      @(reset_trigger);
      @(negedge clk);
      reset = 1;
      @(negedge clk);
      reset = 0;
      -> reset_done_trigger;
    end
  end

  initial begin
    #10 -> reset_trigger;
    @(reset_done_trigger);
    @(negedge clk);
    enable = 1;
    repeat (21) begin
      @(negedge clk);
    end
    enable = 0;
    #5 -> terminate_sim;
  end

  initial begin
    @(terminate_sim);
    $display("counter=%b overflow=%b at %0t", counter_out, overflow_out, $time);
    $finish;
  end
endmodule
