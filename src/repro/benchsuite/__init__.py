"""Benchmark suite: 11 hardware projects, 32 defect scenarios (paper §4.1).

Public API::

    from repro.benchsuite import load_project, load_scenario, all_scenarios

    project = load_project("counter")
    scenario = load_scenario("counter_reset")
    scenarios = all_scenarios()             # the full Table 3 suite
"""

from __future__ import annotations

from importlib import resources

from .defects import DEFECTS, DEFECTS_BY_ID
from .scenario import Defect, Project, Scenario

#: Project name → one-line description (paper Table 2).
PROJECT_DESCRIPTIONS: dict[str, str] = {
    "decoder_3_to_8": "3-to-8 decoder",
    "counter": "4-bit counter with overflow",
    "flip_flop": "T-flip flop",
    "fsm_full": "Finite state machine",
    "lshift_reg": "8-bit left shift register",
    "mux_4_1": "4-to-1 multiplexer",
    "i2c": "Two-wire, bidirectional serial bus for data exchange between devices",
    "sha3": "Cryptographic hash function",
    "tate_pairing": "Core for the Tate bilinear pairing algorithm for elliptic curves",
    "reed_solomon_decoder": "Core for Reed-Solomon error correction",
    "sdram_controller": "Synchronous DRAM memory controller",
}

PROJECT_NAMES: tuple[str, ...] = tuple(PROJECT_DESCRIPTIONS)


def _read_project_file(project: str, filename: str) -> str | None:
    root = resources.files(__package__) / "projects" / project / filename
    if not root.is_file():
        return None
    return root.read_text()


def load_project(name: str) -> Project:
    """Load a golden project from package data."""
    if name not in PROJECT_DESCRIPTIONS:
        raise KeyError(f"unknown project {name!r}; known: {sorted(PROJECT_DESCRIPTIONS)}")
    design = _read_project_file(name, "design.v")
    testbench = _read_project_file(name, "testbench.v")
    if design is None or testbench is None:
        raise FileNotFoundError(f"project files for {name!r} are missing")
    return Project(
        name=name,
        description=PROJECT_DESCRIPTIONS[name],
        design_text=design,
        testbench_text=testbench,
        validate_text=_read_project_file(name, "validate.v"),
    )


def all_projects() -> list[Project]:
    """Load all 11 golden projects."""
    return [load_project(name) for name in PROJECT_NAMES]


def load_scenario(scenario_id: str) -> Scenario:
    """Materialise one defect scenario (golden + transplanted defect)."""
    defect = DEFECTS_BY_ID.get(scenario_id)
    if defect is None:
        raise KeyError(
            f"unknown scenario {scenario_id!r}; known: {sorted(DEFECTS_BY_ID)}"
        )
    project = load_project(defect.project)
    return Scenario(defect, project, defect.apply(project.design_text))


def all_scenarios() -> list[Scenario]:
    """All 32 defect scenarios, in Table 3 order."""
    return [load_scenario(d.scenario_id) for d in DEFECTS]


__all__ = [
    "Project",
    "Defect",
    "Scenario",
    "DEFECTS",
    "DEFECTS_BY_ID",
    "PROJECT_NAMES",
    "PROJECT_DESCRIPTIONS",
    "load_project",
    "all_projects",
    "load_scenario",
    "all_scenarios",
]
