"""Random defect seeding (the §4.1.3 alternative, implemented).

The paper contrasts its expert-transplanted defects with the
"randomly-seeded or self-seeded defects" used by earlier evaluations.
This module implements that baseline methodology so the two can be
compared: it injects random single edits into a golden design, keeps only
*valid defect scenarios* (the paper's criteria: the corrupted design must
still compile, and must change the externally visible behaviour under the
instrumented testbench), and packages them as :class:`Scenario`-compatible
objects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.fitness import evaluate_fitness
from ..core.operators import mutate
from ..core.patch import Patch
from ..core.faultloc import all_statement_ids
from ..core.templates import applicable_templates
from ..core.patch import Edit
from ..hdl import ast, generate, parse
from .scenario import Project, Scenario, Defect, simulate_design_text


@dataclass
class SeededDefect:
    """One randomly seeded defect that met the validity criteria."""

    project: str
    seed: int
    description: str
    faulty_text: str
    faulty_fitness: float


class DefectSeeder:
    """Generates valid random defect scenarios for a golden project."""

    def __init__(self, project: Project, rng_seed: int = 0):
        self.project = project
        self.rng = random.Random(rng_seed)
        self._golden = parse(project.design_text)
        from .scenario import Scenario

        # Reuse the scenario machinery for the oracle and instrumented TB.
        self._probe = Scenario(
            Defect("probe", project.name, "golden probe", 1, (("__never__", ""),)),
            project,
            project.design_text,
        )

    def _oracle(self):
        return self._probe.oracle()

    def _bench(self):
        return self._probe.instrumented_testbench()

    def _random_corruption(self) -> ast.Source | None:
        """One random edit: an inverse-template or a mutation."""
        tree = self._golden.clone()
        statements = all_statement_ids(tree)
        if self.rng.random() < 0.5:
            # Template-style corruption: apply a random template to a
            # random applicable node (templates are involutive enough to
            # make realistic-looking defects: negations, sens flips, ±1).
            nodes = [n for n in tree.walk() if applicable_templates(n) and n.node_id]
            if not nodes:
                return None
            node = self.rng.choice(nodes)
            template = self.rng.choice(applicable_templates(node))
            patch = Patch([Edit("template", node.node_id, template=template)])
            return patch.apply(self._golden)
        patch = mutate(Patch.empty(), tree, statements, self.rng)
        if not patch.edits:
            return None
        return patch.apply(self._golden)

    def generate(self, count: int, max_attempts: int = 200) -> list[SeededDefect]:
        """Produce up to ``count`` valid seeded defects.

        Validity (paper §4.1.3): compiles, and changes externally visible
        behaviour (fitness < 1.0 against the golden oracle) — but still
        produces *some* behaviour (fitness > 0 rules out total wrecks,
        which no expert would transplant).
        """
        defects: list[SeededDefect] = []
        attempts = 0
        while len(defects) < count and attempts < max_attempts:
            attempts += 1
            corrupted = self._random_corruption()
            if corrupted is None:
                continue
            try:
                faulty_text = generate(corrupted)
                parse(faulty_text)
            except Exception:
                continue
            if faulty_text == self.project.design_text:
                continue
            trace = simulate_design_text(faulty_text, self._bench())
            fitness = evaluate_fitness(trace, self._oracle()).fitness
            if not 0.0 < fitness < 1.0:
                continue
            defects.append(
                SeededDefect(
                    project=self.project.name,
                    seed=attempts,
                    description=f"randomly seeded defect #{len(defects) + 1}",
                    faulty_text=faulty_text,
                    faulty_fitness=fitness,
                )
            )
        return defects

    def as_scenario(self, seeded: SeededDefect) -> Scenario:
        """Wrap a seeded defect as a Scenario for the repair engine."""
        defect = Defect(
            f"{seeded.project}_seeded_{seeded.seed}",
            seeded.project,
            seeded.description,
            1,
            (("__synthetic__", ""),),  # not text-replacement based
        )
        return Scenario(defect, self.project, seeded.faulty_text)
