"""Defect scenarios: the unit of the CirFix benchmark suite (paper §4.1).

A scenario packages what the paper calls a *defect scenario*: a circuit
design, an instrumented testbench, expected-behaviour information, and an
expert-transplanted defect.  Here each defect is a precise source
transformation applied to a golden project, mirroring the defect
descriptions in the paper's Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import RepairConfig
from ..core.fitness import evaluate_fitness
from ..core.oracle import combine_sources, ensure_instrumented, generate_oracle
from ..core.repair import RepairProblem
from ..hdl import parse
from ..instrument.trace import SimulationTrace
from ..sim.simulator import Simulator


@dataclass(frozen=True)
class Project:
    """A golden hardware project: design + testbench (+ validation bench)."""

    name: str
    description: str
    design_text: str
    testbench_text: str
    validate_text: str | None = None

    @property
    def design_loc(self) -> int:
        return _loc(self.design_text)

    @property
    def testbench_loc(self) -> int:
        return _loc(self.testbench_text)


def _loc(text: str) -> int:
    """Source lines of code: non-empty, non-comment-only lines."""
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("//"):
            count += 1
    return count


@dataclass(frozen=True)
class Defect:
    """One expert-style transplanted defect (a Table 3 row)."""

    scenario_id: str
    project: str
    description: str
    category: int  # 1 = "easy", 2 = "hard" (paper §4.1.3)
    #: Exact-string replacements applied to the golden design text.
    replacements: tuple[tuple[str, str], ...]
    #: Paper outcome for this row: "correct", "plausible", or "none".
    paper_outcome: str = "none"
    #: Paper repair time in seconds (None when no repair was found).
    paper_repair_seconds: float | None = None

    def apply(self, golden_text: str) -> str:
        """Transplant the defect; raises if any replacement misses."""
        text = golden_text
        for old, new in self.replacements:
            if old not in text:
                raise ValueError(
                    f"{self.scenario_id}: pattern not found in golden design:\n{old}"
                )
            text = text.replace(old, new, 1)
        if text == golden_text:
            raise ValueError(f"{self.scenario_id}: defect is a no-op")
        return text


@dataclass
class Scenario:
    """A fully materialised defect scenario, ready for the repair engine."""

    defect: Defect
    project: Project
    faulty_design_text: str
    _oracle: SimulationTrace | None = field(default=None, repr=False)
    _problem: RepairProblem | None = field(default=None, repr=False)

    @property
    def scenario_id(self) -> str:
        return self.defect.scenario_id

    @property
    def category(self) -> int:
        return self.defect.category

    @classmethod
    def from_texts(
        cls,
        scenario_id: str,
        *,
        golden_text: str,
        testbench_text: str,
        faulty_text: str,
        description: str = "",
        category: int = 1,
        project_name: str | None = None,
        validate_text: str | None = None,
    ) -> "Scenario":
        """Build a scenario directly from source texts.

        This is the adapter the scenario factory (:mod:`repro.mint`) and
        other synthetic suppliers use: any (golden, testbench, faulty)
        triple becomes a full :class:`Scenario` — oracle generation,
        ``suggested_config`` scaling, and correctness assessment all work
        exactly as for the 32 transplanted benchmark defects, so synthetic
        scenarios flow through ``run_scenario`` unchanged.  The defect's
        ``replacements`` are empty (the faulty text is supplied directly,
        not derived by string substitution).
        """
        project = Project(
            name=project_name or scenario_id,
            description=description or f"synthetic project for {scenario_id}",
            design_text=golden_text,
            testbench_text=testbench_text,
            validate_text=validate_text,
        )
        defect = Defect(
            scenario_id=scenario_id,
            project=project.name,
            description=description or scenario_id,
            category=category,
            replacements=(),
        )
        return cls(defect, project, faulty_text)

    # ------------------------------------------------------------------
    # Lazily built artefacts (oracle generation simulates the golden design)
    # ------------------------------------------------------------------

    def instrumented_testbench(self):
        """The testbench AST with the $cirfix_record hook inserted."""
        golden = parse(self.project.design_text)
        return ensure_instrumented(parse(self.project.testbench_text), golden)

    def oracle(self) -> SimulationTrace:
        """Expected-behaviour trace from the golden design (cached)."""
        if self._oracle is None:
            self._oracle = _cached_oracle(
                self.project.name, self.project.design_text, self.project.testbench_text
            )
        return self._oracle

    def problem(self) -> RepairProblem:
        """The RepairProblem for this scenario (cached)."""
        if self._problem is None:
            self._problem = RepairProblem(
                parse(self.faulty_design_text),
                self.instrumented_testbench(),
                self.oracle(),
                name=self.scenario_id,
            )
        return self._problem

    def suggested_config(self, base: RepairConfig) -> RepairConfig:
        """Scale simulation bounds to this scenario's golden run cost.

        Candidate mutants that loop forever (e.g. a self-triggering
        ``always @(*)``) are cut off by the statement budget; tying it to
        the golden run's measured cost keeps such rejects cheap without
        truncating legitimate candidates.
        """
        oracle = self.oracle()
        end_time = oracle.times()[-1] if len(oracle) else 10_000
        steps = _golden_steps(
            self.project.name, self.project.design_text, self.project.testbench_text
        )
        return base.scaled(
            max_sim_time=max(end_time * 4, 2_000),
            max_sim_steps=max(steps * 30, 20_000),
        )

    # ------------------------------------------------------------------
    # Correctness assessment (paper: manual inspection; here: held-out
    # validation testbench, a mechanised stand-in)
    # ------------------------------------------------------------------

    def faulty_fitness(self, phi: float = 2.0) -> float:
        """Fitness of the unrepaired faulty design (diagnostic)."""
        trace = simulate_design_text(
            self.faulty_design_text, self.instrumented_testbench()
        )
        return evaluate_fitness(trace, self.oracle(), phi).fitness

    def is_correct_repair(self, repaired_design_text: str) -> bool:
        """Check a plausible repair against the held-out validation bench.

        The paper judged correctness by manual inspection; we mechanise it:
        a repair is *correct* when it also reproduces the golden trace on a
        validation testbench with different stimuli (so testbench-overfitted
        repairs are rejected).  Projects without a validation bench fall
        back to the main testbench (repair quality then equals plausibility,
        which is noted in EXPERIMENTS.md).
        """
        bench_text = self.project.validate_text or self.project.testbench_text
        golden = parse(self.project.design_text)
        bench = ensure_instrumented(parse(bench_text), golden)
        expected = generate_oracle(golden, bench)
        actual = simulate_design_text(repaired_design_text, bench)
        return evaluate_fitness(actual, expected).fitness >= 1.0


#: Oracle traces are deterministic per project; cache them process-wide so
#: multiple scenarios over the same project do not re-simulate the golden
#: design (the texts participate in the key to stay correct under edits).
_ORACLE_CACHE: dict[tuple[str, int], SimulationTrace] = {}


def _cached_oracle(name: str, design_text: str, testbench_text: str) -> SimulationTrace:
    key = (name, hash((design_text, testbench_text)))
    oracle = _ORACLE_CACHE.get(key)
    if oracle is None:
        golden = parse(design_text)
        bench = ensure_instrumented(parse(testbench_text), golden)
        oracle = generate_oracle(golden, bench)
        _ORACLE_CACHE[key] = oracle
    return oracle


#: Statement count of each golden run, for budget scaling.
_STEPS_CACHE: dict[tuple[str, int], int] = {}


def _golden_steps(name: str, design_text: str, testbench_text: str) -> int:
    key = (name, hash((design_text, testbench_text)))
    steps = _STEPS_CACHE.get(key)
    if steps is None:
        golden = parse(design_text)
        bench = ensure_instrumented(parse(testbench_text), golden)
        combined = combine_sources(golden, bench)
        result = Simulator(combined).run(1_000_000)
        steps = result.steps_used
        _STEPS_CACHE[key] = steps
    return steps


def simulate_design_text(design_text: str, instrumented_testbench) -> SimulationTrace:
    """Simulate a design under an instrumented testbench and return its
    trace (empty trace when the design does not elaborate)."""
    try:
        combined = combine_sources(parse(design_text), instrumented_testbench)
        sim = Simulator(combined)
    except Exception:
        return SimulationTrace()
    result = sim.run(1_000_000)
    return SimulationTrace.from_records(result.trace)
