"""Algebraic properties of the 4-state logic (oracle (d)).

Checks :mod:`repro.sim.logic` / :mod:`repro.sim.eval` against exhaustive
small-width truth tables:

- **commutativity** — ``a op b == b op a`` for the symmetric operators,
  over every 4-state value pair at widths 1–2 (256 pairs per op/width);
- **x-pessimism monotonicity** — refining an input (replacing x/z bits
  with 0/1) may only *define* output bits, never flip a bit the
  pessimistic evaluation already claimed was 0 or 1.

These run once per fuzz invocation (they are input-independent) and are
reused by ``tests/sim/test_logic_properties.py``.
"""

from __future__ import annotations

from itertools import product

from ..hdl import ast
from ..sim.eval import eval_expr
from ..sim.logic import Value
from .oracles import Violation

#: Operators for which ``a op b == b op a`` must hold in 4-state logic.
COMMUTATIVE_OPS = ("&", "|", "^", "~^", "+", "*", "==", "!=", "===", "!==", "&&", "||")

#: Binary operators included in the monotonicity sweep.
MONOTONE_BINARY_OPS = COMMUTATIVE_OPS + ("-", "<", "<=", ">", ">=", "<<", ">>")

#: Unary operators included in the monotonicity sweep.  ``===``-style
#: exact-match operators are excluded from monotonicity by definition
#: (they are *designed* to observe x/z).
MONOTONE_UNARY_OPS = ("~", "!", "-", "&", "|", "^", "~&", "~|", "~^")

_EXACT_MATCH_OPS = ("===", "!==")


class _DictScope:
    """Minimal EvalScope over a plain name → Value mapping."""

    def __init__(self, values: dict[str, Value]):
        self._values = values

    def read(self, name: str) -> Value:
        return self._values[name]

    def read_word(self, name: str, index: int) -> Value:  # pragma: no cover
        raise KeyError(name)

    def is_memory(self, name: str) -> bool:
        return False

    def call_function(self, name: str, args):  # pragma: no cover
        raise KeyError(name)


def all_values(width: int):
    """Every 4-state value of ``width`` bits (4**width of them)."""
    for digits in product("01xz", repeat=width):
        yield Value.from_string("".join(digits))


def _binary(op: str, a: Value, b: Value) -> Value:
    scope = _DictScope({"a": a, "b": b})
    return eval_expr(
        ast.BinaryOp(op, ast.Identifier("a"), ast.Identifier("b")), scope
    )


def _unary(op: str, a: Value) -> Value:
    scope = _DictScope({"a": a})
    return eval_expr(ast.UnaryOp(op, ast.Identifier("a")), scope)


def refinements(value: Value):
    """Every value obtained by fixing each x/z bit to 0 and to 1.

    Yields the fully-defined corners: the 2**k combinations over the k
    undefined bits (k is small at the widths we sweep).
    """
    text = value.to_bit_string()
    undefined = [i for i, ch in enumerate(text) if ch in "xz"]
    for bits in product("01", repeat=len(undefined)):
        chars = list(text)
        for pos, bit in zip(undefined, bits):
            chars[pos] = bit
        yield Value.from_string("".join(chars))


def _monotonicity_violation(op: str, result: Value, refined: Value) -> str | None:
    """Defined bits of the pessimistic result must survive refinement."""
    res_text, ref_text = result.to_bit_string(), refined.to_bit_string()
    width = max(len(res_text), len(ref_text))
    res_text = res_text.rjust(width, res_text[0])
    ref_text = ref_text.rjust(width, ref_text[0])
    for res_bit, ref_bit in zip(res_text, ref_text):
        if res_bit in "01" and ref_bit in "01" and res_bit != ref_bit:
            return (
                f"{op}: pessimistic result {res_text} contradicts "
                f"refined result {ref_text}"
            )
    return None


def check_logic_properties(max_width: int = 2) -> list[Violation]:
    """Run the commutativity + monotonicity sweeps; [] when all hold."""
    violations: list[Violation] = []
    for width in range(1, max_width + 1):
        values = list(all_values(width))
        for op in COMMUTATIVE_OPS:
            for a in values:
                for b in values:
                    ab, ba = _binary(op, a, b), _binary(op, b, a)
                    if ab != ba:
                        violations.append(
                            Violation(
                                "logic",
                                f"{op} not commutative at width {width}: "
                                f"{a} {op} {b} = {ab} but {b} {op} {a} = {ba}",
                            )
                        )
        for op in MONOTONE_UNARY_OPS:
            for a in values:
                result = _unary(op, a)
                for a2 in refinements(a):
                    msg = _monotonicity_violation(op, result, _unary(op, a2))
                    if msg:
                        violations.append(
                            Violation("logic", f"unary {msg} (input {a})")
                        )
        for op in MONOTONE_BINARY_OPS:
            if op in _EXACT_MATCH_OPS:
                continue
            for a in values:
                for b in values:
                    result = _binary(op, a, b)
                    for a2 in refinements(a):
                        for b2 in refinements(b):
                            msg = _monotonicity_violation(
                                op, result, _binary(op, a2, b2)
                            )
                            if msg:
                                violations.append(
                                    Violation(
                                        "logic",
                                        f"binary {msg} (inputs {a}, {b})",
                                    )
                                )
    return violations
