"""Differential and metamorphic oracles for generated programs.

Each check takes a :class:`~repro.fuzz.generator.GeneratedProgram` (or
raw source text) and returns a list of :class:`Violation` — empty when
the property holds.  The oracle battery (ISSUE 3):

``roundtrip``
    parse → codegen → re-parse is a structural fixpoint with stable
    preorder node numbering.
``lint``
    static analysis (:mod:`repro.lint`) never raises on a parseable
    program and renders byte-identical reports across runs — the
    contract the repair engine's candidate gate depends on.
``determinism``
    simulating the same program twice is bit-identical (time, $finish,
    output lines, recorded trace CSV), and the program scores fitness
    1.0 against its own trace (the *self-fitness* differential: the
    evaluation pipeline agrees with the direct simulation).
``backends``
    ``SerialBackend`` and ``ProcessPoolBackend`` report identical
    backend-independent results for the same candidate.
``engines``
    the tree-walking interpreter and the AOT closure compiler
    (:class:`repro.sim.CompiledSimulator`) produce bit-identical runs —
    time, output, trace CSV, errors, *and* the statement/event/slot
    counters — for the same program (``docs/simulation.md``).
``templates``
    every repair template applied to every legal target yields source
    that re-parses (operator closure); a strided subset of mutants is
    also pushed through the full evaluation pipeline, which must not
    raise.
``logic``
    4-state ops satisfy commutativity and x-pessimism monotonicity
    (:mod:`repro.fuzz.logic_props`; checked once per run, not per
    program).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.backend import ProcessPoolBackend, SerialBackend, evaluate_design_text
from ..core.config import RepairConfig
from ..core.templates import applicable_templates, apply_template
from ..core.templates_ext import applicable_extended
from ..hdl import ast, generate, max_node_id, parse, structural_diff
from ..instrument.trace import SimulationTrace
from ..sim.compile import CompiledSimulator
from ..sim.elaborate import ElaborationError
from ..sim.simulator import SimResult, Simulator
from .generator import TB_NAME, GeneratedProgram

#: Names of the per-program oracles, in check order.
ORACLES = ("roundtrip", "lint", "determinism", "engines", "backends", "templates")

#: Simulation budgets for fuzz evaluations (programs finish in a few
#: hundred ticks; anything longer is a runaway worth cutting short).
FUZZ_EVAL_CONFIG = RepairConfig(max_sim_time=20_000, max_sim_steps=200_000)


@dataclass(frozen=True)
class Violation:
    """One oracle failure for one program."""

    oracle: str
    detail: str


def split_program(text: str) -> tuple[str, str]:
    """Split a single-file program into (design_text, testbench_text).

    The testbench is the module named ``fuzz_tb`` when present, else the
    last module; everything else is the design.  Used to re-run the
    simulation oracles on checked-in corpus files.
    """
    tree = parse(text)
    modules = list(tree.modules)
    tb = next((m for m in modules if m.name == TB_NAME), modules[-1])
    design = [m for m in modules if m is not tb]
    return (
        generate(ast.Source(design)) if design else "",
        generate(ast.Source([tb])),
    )


# ----------------------------------------------------------------------
# (a) round-trip
# ----------------------------------------------------------------------


def check_roundtrip(text: str, reference: ast.Source | None = None) -> list[Violation]:
    """parse → codegen → re-parse must be a numbered structural fixpoint.

    With ``reference`` (the generator's pre-codegen AST), additionally
    require ``parse(text)`` to match it structurally — the differential
    that exposes systematic codegen faults, which otherwise produce
    valid-but-different text that is its own stable fixpoint.
    """
    try:
        first = parse(text)
    except Exception as exc:
        return [Violation("roundtrip", f"initial parse failed: {exc}")]
    if reference is not None:
        diff = structural_diff(reference, first, compare_ids=False)
        if diff is not None:
            return [
                Violation(
                    "roundtrip",
                    f"emitted text parses differently than the generator's "
                    f"AST at {diff}",
                )
            ]
    try:
        regenerated = generate(first)
    except Exception as exc:
        return [Violation("roundtrip", f"codegen failed: {exc}")]
    try:
        second = parse(regenerated)
    except Exception as exc:
        return [Violation("roundtrip", f"re-parse failed: {exc}")]
    diff = structural_diff(first, second, compare_ids=True)
    if diff is not None:
        return [Violation("roundtrip", f"AST mismatch at {diff}")]
    try:
        if generate(second) != regenerated:
            return [Violation("roundtrip", "codegen not a fixpoint")]
    except Exception as exc:
        return [Violation("roundtrip", f"second codegen failed: {exc}")]
    return []


# ----------------------------------------------------------------------
# (b) simulation determinism + self-fitness
# ----------------------------------------------------------------------


def _sim_key(result: SimResult) -> tuple:
    """Everything observable about a run except wall-clock."""
    return (
        result.time,
        result.finished,
        tuple(result.output),
        SimulationTrace.from_records(result.trace).to_csv(),
        tuple(result.errors),
    )


def _simulate(text: str) -> SimResult:
    sim = Simulator(text, max_steps=FUZZ_EVAL_CONFIG.max_sim_steps)
    return sim.run(FUZZ_EVAL_CONFIG.max_sim_time)


def check_determinism(
    program: GeneratedProgram, backend: str = "serial", workers: int = 2
) -> tuple[list[Violation], SimulationTrace | None]:
    """Two simulations agree; the program scores 1.0 against itself.

    The self-fitness evaluation runs through the selected evaluation
    path: in-process ``evaluate_design_text`` (``backend="serial"``) or
    a :class:`ProcessPoolBackend` (``backend="process"``) — both must
    report the same backend-independent result, which is what makes
    fixed-seed fuzz summaries byte-identical across backends.

    Returns the violations plus the program's own trace (the *self
    oracle*) for reuse by the other simulation-based checks.
    """
    violations: list[Violation] = []
    try:
        first = _simulate(program.text)
        second = _simulate(program.text)
    except Exception as exc:
        return [Violation("determinism", f"simulation raised: {exc!r}")], None
    if _sim_key(first) != _sim_key(second):
        violations.append(
            Violation("determinism", "repeated simulation not bit-identical")
        )
    oracle = SimulationTrace.from_records(first.trace)
    if not first.finished or len(oracle) == 0:
        # No anchor for the fitness differential — determinism was still
        # checked above.
        return violations, (oracle if len(oracle) else None)
    try:
        if backend == "process":
            pool = ProcessPoolBackend(
                program.testbench_text, oracle, FUZZ_EVAL_CONFIG, workers=workers
            )
            try:
                result_a = pool.evaluate_batch([program.design_text])[0]
                result_b = pool.evaluate_batch([program.design_text])[0]
            finally:
                pool.close()
        else:
            tb_tree = parse(program.testbench_text)
            result_a = evaluate_design_text(
                program.design_text, tb_tree, oracle, FUZZ_EVAL_CONFIG
            )
            result_b = evaluate_design_text(
                program.design_text, tb_tree, oracle, FUZZ_EVAL_CONFIG
            )
    except Exception as exc:
        violations.append(
            Violation("determinism", f"evaluation pipeline raised: {exc!r}")
        )
        return violations, oracle
    if not result_a.compiled:
        violations.append(
            Violation("determinism", "self-evaluation reports compiled=False")
        )
    elif result_a.fitness != 1.0:
        violations.append(
            Violation(
                "determinism",
                f"self-fitness {result_a.fitness} != 1.0 "
                f"(mismatched: {result_a.summary.mismatched_vars if result_a.summary else '?'})",
            )
        )
    if (result_a.fitness, result_a.compiled, result_a.summary) != (
        result_b.fitness, result_b.compiled, result_b.summary
    ):
        violations.append(
            Violation("determinism", "repeated evaluation not bit-identical")
        )
    return violations, oracle


# ----------------------------------------------------------------------
# (b'') interp vs compiled engine equivalence
# ----------------------------------------------------------------------


def _engine_key(text: str, engine: type[Simulator]) -> tuple:
    """Run ``text`` under one engine; the full observable fingerprint."""
    sim = engine(text, max_steps=FUZZ_EVAL_CONFIG.max_sim_steps)
    result = sim.run(FUZZ_EVAL_CONFIG.max_sim_time)
    return (
        _sim_key(result),
        result.steps_used,
        result.events_executed,
        result.slots_advanced,
    )


def check_engines(text: str) -> list[Violation]:
    """Interpreted and compiled simulation race to bit-identical runs.

    The strongest form of the compiled engine's parity contract: not
    just the result surface (:func:`_sim_key`) but the execution
    counters — statements charged against the runaway budget, scheduler
    callbacks, time slots — must agree, since the repair engine's budget
    cut-offs (and therefore search outcomes) depend on them.  Programs
    that fail to elaborate must fail identically under both engines.
    """
    try:
        interp = _engine_key(text, Simulator)
        interp_error: str | None = None
    except ElaborationError as exc:
        interp, interp_error = None, str(exc)
    except Exception as exc:
        return [Violation("engines", f"interp simulation raised: {exc!r}")]
    try:
        compiled = _engine_key(text, CompiledSimulator)
        compiled_error: str | None = None
    except ElaborationError as exc:
        compiled, compiled_error = None, str(exc)
    except Exception as exc:
        return [Violation("engines", f"compiled simulation raised: {exc!r}")]
    if interp is None or compiled is None:
        if interp_error != compiled_error:
            return [
                Violation(
                    "engines",
                    f"elaboration divergence: interp "
                    f"{interp_error!r} != compiled {compiled_error!r}",
                )
            ]
        return []
    if interp != compiled:
        return [
            Violation(
                "engines",
                f"engine divergence: interp {interp} != compiled {compiled}",
            )
        ]
    return []


# ----------------------------------------------------------------------
# (b') serial vs process backend equivalence
# ----------------------------------------------------------------------


def _result_key(result) -> tuple:
    """Backend-independent fields of a ``CandidateResult``."""
    return (result.fitness, result.compiled, result.summary, result.breakdown)


def check_backends(
    program: GeneratedProgram, oracle: SimulationTrace, workers: int = 2
) -> list[Violation]:
    """Serial and process-pool evaluation of the same candidate agree."""
    try:
        tb_tree = parse(program.testbench_text)
        serial = SerialBackend(tb_tree, oracle, FUZZ_EVAL_CONFIG)
        serial_results = serial.evaluate_batch([program.design_text])
        serial.close()
        pool = ProcessPoolBackend(
            program.testbench_text, oracle, FUZZ_EVAL_CONFIG, workers=workers
        )
        try:
            pool_results = pool.evaluate_batch([program.design_text])
        finally:
            pool.close()
    except Exception as exc:
        return [Violation("backends", f"backend evaluation raised: {exc!r}")]
    if _result_key(serial_results[0]) != _result_key(pool_results[0]):
        return [
            Violation(
                "backends",
                f"serial {_result_key(serial_results[0])} != "
                f"process {_result_key(pool_results[0])}",
            )
        ]
    return []


# ----------------------------------------------------------------------
# (c) repair-template operator closure
# ----------------------------------------------------------------------


def check_templates(
    program: GeneratedProgram,
    oracle: SimulationTrace | None,
    max_sim_mutants: int = 6,
) -> list[Violation]:
    """Every applicable template on every target yields parseable source.

    ``apply_template`` refusing a target (returning False) is fine — the
    patch conventions treat that as a no-op.  A mutant that *was*
    produced must re-parse; a deterministic strided subset (at most
    ``max_sim_mutants``) is also run through the never-raising
    evaluation pipeline, with any escape counting as a violation.
    """
    violations: list[Violation] = []
    try:
        design = parse(program.design_text)
        tb_tree = parse(program.testbench_text) if oracle is not None else None
    except Exception as exc:
        return [Violation("templates", f"design parse failed: {exc}")]
    fresh = max_node_id(design) + 1000
    mutants: list[tuple[int, str, str]] = []  # (target_id, template, text)
    for node in design.walk():
        if node.node_id is None:
            continue
        names = applicable_templates(node) + applicable_extended(node)
        for name in names:
            clone = design.clone()
            try:
                applied = apply_template(name, clone, node.node_id, fresh)
            except Exception as exc:
                violations.append(
                    Violation(
                        "templates",
                        f"{name} on node {node.node_id} "
                        f"({type(node).__name__}) raised: {exc!r}",
                    )
                )
                continue
            if not applied:
                continue
            try:
                mutant_text = generate(clone)
            except Exception as exc:
                violations.append(
                    Violation(
                        "templates",
                        f"{name} on node {node.node_id} broke codegen: {exc!r}",
                    )
                )
                continue
            try:
                parse(mutant_text)
            except Exception as exc:
                violations.append(
                    Violation(
                        "templates",
                        f"{name} on node {node.node_id} "
                        f"({type(node).__name__}) no longer parses: {exc}",
                    )
                )
                continue
            mutants.append((node.node_id, name, mutant_text))
    if oracle is not None and tb_tree is not None and mutants and max_sim_mutants > 0:
        stride = max(1, len(mutants) // max_sim_mutants)
        for target_id, name, mutant_text in mutants[::stride][:max_sim_mutants]:
            try:
                evaluate_design_text(mutant_text, tb_tree, oracle, FUZZ_EVAL_CONFIG)
            except Exception as exc:
                violations.append(
                    Violation(
                        "templates",
                        f"{name} on node {target_id}: evaluation pipeline "
                        f"raised {exc!r} (contract: never raises)",
                    )
                )
    return violations


# ----------------------------------------------------------------------
# (d) lint crash/stability oracle
# ----------------------------------------------------------------------


def check_lint(text: str) -> list[Violation]:
    """Lint never raises on a parseable program, and is byte-stable.

    The candidate gate runs lint on arbitrary GP mutants, so the
    analyser must hold two contracts on anything that parses: ``check``
    must not escape with an exception, and two runs over the same source
    must render byte-identical reports (text and JSON) — the property
    that makes gate decisions reproducible and backend-independent.
    """
    from ..lint import lint_text

    try:
        first = lint_text(text)
    except Exception as exc:
        return [
            Violation("lint", f"lint raised on a parseable program: {exc!r}")
        ]
    second = lint_text(text)
    if first.to_text() != second.to_text():
        return [Violation("lint", "two lint runs rendered different text reports")]
    if first.to_json() != second.to_json():
        return [Violation("lint", "two lint runs rendered different JSON reports")]
    return []
