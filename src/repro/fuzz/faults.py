"""Deliberate codegen faults for exercising the fuzz oracles.

The acceptance test for a fuzzer is that it *catches* a planted bug.
Each entry here is a context manager that breaks one codegen rule while
active (monkeypatching :class:`repro.hdl.codegen._Generator`), so

    repro fuzz --seed 0 --count 25 --inject-fault drop_ternary_parens

must end with round-trip violations and auto-shrunk reproducers.  See
``docs/fuzzing.md`` ("mutation smoke") for the workflow.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

from ..hdl import ast
from ..hdl.codegen import _Generator


@contextmanager
def _patched_expr(render: Callable) -> Iterator[None]:
    """Swap ``_Generator.expr`` for ``render(original, self, expr)``."""
    original = _Generator.expr

    def patched(self, expr):
        return render(original, self, expr)

    _Generator.expr = patched  # type: ignore[method-assign]
    try:
        yield
    finally:
        _Generator.expr = original  # type: ignore[method-assign]


@contextmanager
def drop_ternary_parens() -> Iterator[None]:
    """Render ``c ? a : b`` without the wrapping parentheses.

    Breaks re-parsing whenever the ternary is an operand of a binary
    operator: ``(x ? y : z + w)`` re-associates the false branch.
    """

    def render(original, self, expr):
        if isinstance(expr, ast.Ternary):
            return (
                f"{self.expr(expr.cond)} ? {self.expr(expr.true_expr)}"
                f" : {self.expr(expr.false_expr)}"
            )
        return original(self, expr)

    with _patched_expr(render):
        yield


@contextmanager
def drop_binary_parens() -> Iterator[None]:
    """Render ``(a op b)`` without the wrapping parentheses.

    Mixed-precedence nests re-associate on re-parse: ``((a + b) * c)``
    becomes ``a + b * c`` which parses as ``a + (b * c)``.
    """

    def render(original, self, expr):
        if isinstance(expr, ast.BinaryOp):
            return f"{self.expr(expr.left)} {expr.op} {self.expr(expr.right)}"
        return original(self, expr)

    with _patched_expr(render):
        yield


@contextmanager
def swap_case_labels() -> Iterator[None]:
    """Render every sized binary literal with its bits reversed.

    A *semantic* (not syntactic) codegen bug: the program still parses
    but the re-parsed AST differs, so the round-trip oracle's structural
    comparison must flag it.
    """

    def render(original, self, expr):
        if (
            isinstance(expr, ast.Number)
            and "'b" in expr.text
            and expr.width is not None
        ):
            prefix, bits = expr.text.split("'b", 1)
            return f"{prefix}'b{bits[::-1]}"
        return original(self, expr)

    with _patched_expr(render):
        yield


@contextmanager
def plant_eval_chaos(spec: str) -> Iterator[None]:
    """Plant supervised-pool chaos faults while the context is active.

    ``spec`` is a chaos plan like ``"hang@3,exit@7:once"`` — each entry
    plants one fault (``hang`` / ``exit`` / ``balloon``) on the Nth task
    the pool dispatches (see
    :func:`repro.core.backend.parse_chaos_spec`).  The plan is installed
    process-wide and snapshotted by each
    :class:`~repro.core.backend.ProcessPoolBackend` at construction, so
    build the backend *inside* the context; the previous plan (normally
    none) is restored on exit.  This is the test-only hook behind the
    fault-tolerance acceptance tests and the ``check_all.sh`` chaos
    smoke — the same faults can be planted without code via the
    ``REPRO_EVAL_CHAOS`` environment variable.
    """
    from ..core import backend as backend_mod

    previous = backend_mod.set_chaos_plan(backend_mod.parse_chaos_spec(spec))
    try:
        yield
    finally:
        backend_mod.set_chaos_plan(previous)


#: name → context-manager factory, the ``--inject-fault`` registry.
#: (Codegen faults only: :func:`plant_eval_chaos` targets the evaluation
#: pool, not the fuzz oracles, and takes a spec argument.)
FAULTS: dict[str, Callable] = {
    "drop_ternary_parens": drop_ternary_parens,
    "drop_binary_parens": drop_binary_parens,
    "swap_case_labels": swap_case_labels,
}
