"""Shrinking failing programs by delta-reducing their decision trace.

A generated program is a pure function of its decision list
(:class:`~repro.fuzz.generator.DecisionTrace` replay clamps out-of-range
values and treats an exhausted trace as all-zeros, where 0 is the
simplest alternative).  So a failure can be reduced with the same ddmin
that minimizes repair patches (:func:`repro.core.minimize.ddmin`):

1. ddmin over decision *indices* (duplicated decision values make the
   value list itself unsafe to ddmin) with the predicate "the replayed
   program still violates the same oracle";
2. a greedy zeroing pass that rewrites each surviving decision to 0,
   further simplifying the program.
"""

from __future__ import annotations

from typing import Callable

from ..core.minimize import ddmin
from .generator import GeneratedProgram, replay_program

#: Predicate: does this program still violate the oracle we care about?
StillFailing = Callable[[GeneratedProgram], bool]


def shrink_decisions(
    decisions: list[int],
    still_failing: StillFailing,
    max_tests: int = 200,
    seed: int = -1,
) -> GeneratedProgram:
    """Reduce ``decisions`` while the replayed program keeps failing.

    ``still_failing`` must be True for the full list (the caller observed
    the violation); it should re-run only the violated oracle check and
    swallow its own exceptions.  Returns the replayed program for the
    reduced decision list.
    """
    tests = 0

    def replay_ok(keep: list[int]) -> bool:
        nonlocal tests
        if tests >= max_tests:
            return False
        tests += 1
        try:
            return still_failing(replay_program([decisions[i] for i in keep], seed))
        except Exception:
            return False

    indices = ddmin(
        list(range(len(decisions))), replay_ok, max_tests=max(1, max_tests // 2)
    )
    kept = [decisions[i] for i in indices]

    # Greedy zeroing: decision 0 is by construction the simplest
    # alternative, so rewriting entries to 0 simplifies the program.
    def zero_ok(candidate: list[int]) -> bool:
        nonlocal tests
        if tests >= max_tests:
            return False
        tests += 1
        try:
            return still_failing(replay_program(candidate, seed))
        except Exception:
            return False

    for i in range(len(kept)):
        if kept[i] == 0:
            continue
        trial = kept[:i] + [0] + kept[i + 1 :]
        if zero_ok(trial):
            kept = trial
    return replay_program(kept, seed)
