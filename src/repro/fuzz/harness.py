"""The fuzz run loop: generate → oracle battery → shrink → report.

``run_fuzz`` drives :mod:`repro.fuzz.generator` for ``count`` seeds,
applies the oracle battery from :mod:`repro.fuzz.oracles` (plus one
:mod:`repro.fuzz.logic_props` sweep per run), shrinks each violation's
decision trace with :mod:`repro.fuzz.shrink`, and returns a
:class:`FuzzReport` whose :meth:`FuzzReport.to_text` summary contains no
wall-clock or backend-dependent fields — a fixed seed yields a
byte-identical summary whichever evaluation backend scored the
candidates (the obs determinism contract, extended to fuzzing).

Telemetry: runs emit the existing JSONL trace events
(``fuzz_program_checked`` / ``fuzz_violation_found`` /
``fuzz_run_completed``) through the same ``ObserverSet`` machinery the
repair engine uses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from ..hdl import ast
from ..obs.events import FuzzProgramChecked, FuzzRunCompleted, FuzzViolationFound
from ..obs.observer import ObserverSet, RepairObserver
from . import faults as faults_mod
from .generator import TB_NAME, GeneratedProgram, generate_program
from .logic_props import check_logic_properties
from .oracles import (
    Violation,
    check_backends,
    check_determinism,
    check_engines,
    check_lint,
    check_roundtrip,
    check_templates,
)
from .shrink import shrink_decisions


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs for one fuzz run (all defaults deterministic)."""

    seed: int = 0
    count: int = 25
    #: Evaluation path for the self-fitness check: "serial" or "process".
    backend: str = "serial"
    workers: int = 2
    #: Every Nth program additionally gets the serial-vs-process
    #: differential (0 disables; forking a pool per program is the
    #: dominant cost, so this is strided).
    cross_backend_every: int = 10
    #: Cap on template mutants pushed through full evaluation per program.
    max_sim_mutants: int = 4
    shrink: bool = True
    shrink_budget: int = 120
    #: Directory where shrunk reproducers are written (None = don't).
    corpus_dir: Path | None = None
    #: Name from :data:`repro.fuzz.faults.FAULTS` to plant, or None.
    inject_fault: str | None = None
    #: Run the once-per-run logic-property sweep.
    check_logic: bool = True


@dataclass(frozen=True)
class FuzzViolation:
    """One confirmed oracle violation, with its (shrunk) reproducer."""

    index: int
    program_seed: int
    oracle: str
    detail: str
    program_text: str
    shrunk_text: str | None = None

    @property
    def reproducer(self) -> str:
        """The smallest program known to trigger the violation."""
        return self.shrunk_text if self.shrunk_text is not None else self.program_text


@dataclass
class FuzzReport:
    """Outcome of a fuzz run."""

    seed: int
    count: int
    programs: int = 0
    #: oracle name → number of checks that ran.
    checks: dict[str, int] = field(default_factory=dict)
    violations: list[FuzzViolation] = field(default_factory=list)
    corpus_files: list[Path] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def total_checks(self) -> int:
        return sum(self.checks.values())

    def to_text(self) -> str:
        """Byte-stable summary: no wall-clock, no backend echo."""
        lines = [
            "fuzz summary",
            f"  seed: {self.seed}  count: {self.count}",
            f"  programs checked: {self.programs}",
            "  checks: "
            + " ".join(
                f"{name}={self.checks[name]}" for name in sorted(self.checks)
            ),
            f"  violations: {len(self.violations)}",
        ]
        for v in self.violations:
            lines.append(f"  [{v.oracle}] program {v.index} (seed {v.program_seed})")
            lines.append(f"    {v.detail}")
        if self.corpus_files:
            lines.append("  reproducers:")
            lines.extend(f"    {path}" for path in self.corpus_files)
        return "\n".join(lines) + "\n"


#: Re-check a single oracle on a replayed program (for shrinking).
_RECHECKS: dict[str, Callable[[GeneratedProgram], list[Violation]]] = {
    "roundtrip": lambda p: check_roundtrip(p.text, p.source),
    "lint": lambda p: check_lint(p.text),
    "determinism": lambda p: check_determinism(p)[0],
    "engines": lambda p: check_engines(p.text),
    "templates": lambda p: check_templates(p, check_determinism(p)[1]),
}


def _check_program(program: GeneratedProgram, config: FuzzConfig, index: int):
    """Run the oracle battery on one program; (violations, checks)."""
    checks: dict[str, int] = {}
    violations = list(check_roundtrip(program.text, program.source))
    checks["roundtrip"] = 1
    violations.extend(check_lint(program.text))
    checks["lint"] = 1
    det_violations, oracle = check_determinism(
        program, backend=config.backend, workers=config.workers
    )
    violations.extend(det_violations)
    checks["determinism"] = 1
    violations.extend(check_engines(program.text))
    checks["engines"] = 1
    if (
        config.cross_backend_every
        and oracle is not None
        and index % config.cross_backend_every == 0
    ):
        violations.extend(check_backends(program, oracle, config.workers))
        checks["backends"] = 1
    violations.extend(
        check_templates(program, oracle, max_sim_mutants=config.max_sim_mutants)
    )
    checks["templates"] = 1
    return violations, checks


def _shrink_violation(
    program: GeneratedProgram, violation: Violation, config: FuzzConfig
) -> str | None:
    """Delta-reduce the decision trace for a violation's oracle kind."""
    recheck = _RECHECKS.get(violation.oracle)
    if recheck is None:
        return None

    def still_failing(candidate: GeneratedProgram) -> bool:
        return any(v.oracle == violation.oracle for v in recheck(candidate))

    budget = config.shrink_budget
    if violation.oracle == "roundtrip":
        budget *= 4  # parse-only probes are cheap
    else:
        budget = max(10, budget // 4)  # these re-simulate per probe
    shrunk = shrink_decisions(
        list(program.decisions), still_failing, max_tests=budget,
        seed=program.seed,
    )
    # Parse-based oracles don't need the testbench: slice it off when the
    # design alone still reproduces the violation.
    if violation.oracle == "roundtrip":
        design_modules = [m for m in shrunk.source.modules if m.name != TB_NAME]
        if design_modules and any(
            v.oracle == "roundtrip"
            for v in check_roundtrip(
                shrunk.design_text, ast.Source(design_modules)
            )
        ):
            return shrunk.design_text
    elif violation.oracle == "templates":
        if any(v.oracle == "templates" for v in check_templates(shrunk, None)):
            return shrunk.design_text
    return shrunk.text


def run_fuzz(
    config: FuzzConfig,
    observers: Sequence[RepairObserver] | None = None,
) -> FuzzReport:
    """Execute one fuzz run; see module docstring."""
    started = time.perf_counter()
    if config.backend not in ("serial", "process"):
        raise ValueError(
            f"unknown fuzz backend {config.backend!r}; use serial or process"
        )
    observer_set = ObserverSet(observers)
    report = FuzzReport(seed=config.seed, count=config.count)

    fault_factory = None
    if config.inject_fault is not None:
        fault_factory = faults_mod.FAULTS.get(config.inject_fault)
        if fault_factory is None:
            raise ValueError(
                f"unknown fault {config.inject_fault!r}; "
                f"known: {', '.join(sorted(faults_mod.FAULTS))}"
            )

    if config.check_logic:
        logic_violations = check_logic_properties()
        report.checks["logic"] = 1
        for v in logic_violations:
            report.violations.append(
                FuzzViolation(-1, -1, v.oracle, v.detail, program_text="")
            )
            observer_set.emit(FuzzViolationFound(-1, -1, v.oracle, v.detail))

    for index in range(config.count):
        program_seed = config.seed + index
        if fault_factory is not None:
            with fault_factory():
                program = generate_program(program_seed)
                violations, checks = _check_program(program, config, index)
        else:
            program = generate_program(program_seed)
            violations, checks = _check_program(program, config, index)
        report.programs += 1
        for name, n in checks.items():
            report.checks[name] = report.checks.get(name, 0) + n
        observer_set.emit(
            FuzzProgramChecked(
                index, program_seed, sum(checks.values()), len(violations)
            )
        )
        for v in violations:
            shrunk_text = None
            if config.shrink:
                if fault_factory is not None:
                    with fault_factory():
                        shrunk_text = _shrink_violation(program, v, config)
                else:
                    shrunk_text = _shrink_violation(program, v, config)
            record = FuzzViolation(
                index, program_seed, v.oracle, v.detail,
                program_text=program.text, shrunk_text=shrunk_text,
            )
            report.violations.append(record)
            observer_set.emit(
                FuzzViolationFound(index, program_seed, v.oracle, v.detail)
            )
            if config.corpus_dir is not None:
                path = _write_reproducer(config.corpus_dir, record)
                report.corpus_files.append(path)

    report.elapsed_seconds = time.perf_counter() - started
    observer_set.emit(
        FuzzRunCompleted(
            config.seed,
            report.programs,
            report.total_checks,
            len(report.violations),
            report.elapsed_seconds,
        )
    )
    return report


def _write_reproducer(corpus_dir: Path, violation: FuzzViolation) -> Path:
    """Save a violation's reproducer for check-in (corpus policy)."""
    corpus_dir.mkdir(parents=True, exist_ok=True)
    name = f"{violation.oracle}_seed{violation.program_seed}.v"
    path = corpus_dir / name
    header = (
        f"// fuzz reproducer: oracle={violation.oracle} "
        f"seed={violation.program_seed}\n"
        f"// {violation.detail}\n"
    )
    path.write_text(header + violation.reproducer)
    return path
