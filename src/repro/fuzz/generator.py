"""Seeded random Verilog-2001 program generator.

Generates self-contained design + testbench pairs constrained to the
subset :mod:`repro.hdl` supports: module declarations (with optional
submodule instantiation), blocking/non-blocking assignments, ``if`` /
``case``, sensitivity lists, delays, and 4-state literals.

Every random choice flows through a :class:`DecisionTrace`, so a program
is fully determined by its decision list.  That makes failing programs
*shrinkable*: delta-reduce the recorded decisions and replay
(:mod:`repro.fuzz.shrink`).  Two invariants keep replay robust under
arbitrary list surgery:

- out-of-range replayed decisions are clamped with ``value % n``;
- an exhausted trace yields 0, and by convention decision 0 is always
  the *simplest* alternative (fewest signals, shallowest expression,
  plainest statement), so deleting a decision span simplifies the
  program rather than derailing generation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..hdl import ast, generate
from ..hdl.parser import _parse_number_literal


class DecisionTrace:
    """Records (or replays) the integer decisions driving generation."""

    def __init__(self, seed: int | None = None, script: list[int] | None = None):
        self._rng = random.Random(seed) if script is None else None
        self._script = script
        self._pos = 0
        self.decisions: list[int] = []

    def decide(self, n: int) -> int:
        """A decision in ``range(n)`` — drawn fresh or replayed."""
        if n <= 0:
            raise ValueError("decide() needs at least one alternative")
        if self._script is not None:
            raw = self._script[self._pos] if self._pos < len(self._script) else 0
            self._pos += 1
            value = raw % n
        else:
            assert self._rng is not None
            value = self._rng.randrange(n)
        self.decisions.append(value)
        return value

    def maybe(self, percent: int) -> bool:
        """True with roughly ``percent``% probability (0 = False)."""
        return self.decide(100) < percent


@dataclass(frozen=True)
class GeneratedProgram:
    """One generated design/testbench pair plus its provenance.

    ``source`` is the AST the builder constructed *before* code
    generation — the round-trip oracle's reference: whatever
    ``parse(text)`` returns must be structurally identical to it, which
    is what catches systematic codegen faults that would otherwise be a
    stable (wrong) fixpoint of parse → codegen.
    """

    seed: int
    design_text: str
    testbench_text: str
    decisions: tuple[int, ...] = field(repr=False)
    source: ast.Source = field(repr=False, compare=False)

    @property
    def text(self) -> str:
        """The full single-file program (design then testbench)."""
        return self.design_text + "\n" + self.testbench_text


#: Width palette for generated signals.
_WIDTHS = (1, 2, 3, 4, 8)

DUT_NAME = "fuzz_dut"
TB_NAME = "fuzz_tb"
SUB_NAME = "fuzz_sub"


def _lit(text: str) -> ast.Number:
    """A literal node whose planes match its spelling."""
    return _parse_number_literal(text)


def _ident(name: str) -> ast.Identifier:
    return ast.Identifier(name)


class _Builder:
    """Builds one program from a decision trace."""

    def __init__(self, trace: DecisionTrace):
        self.t = trace
        #: name -> width for every signal readable at the current point.
        self.readable: dict[str, int] = {}

    # -- expressions ---------------------------------------------------

    def literal(self, width: int, allow_xz: bool = True) -> ast.Number:
        choice = self.t.decide(5 if allow_xz else 4)
        if choice == 0:
            return _lit(str(self.t.decide(4)))
        if choice == 1:
            return _lit(f"{width}'d{self.t.decide(1 << min(width, 8))}")
        if choice == 2:
            bits = "".join("01"[self.t.decide(2)] for _ in range(width))
            return _lit(f"{width}'b{bits}")
        if choice == 3:
            digits = max(1, (width + 3) // 4)
            hex_digits = "0123456789abcdef"
            text = "".join(hex_digits[self.t.decide(16)] for _ in range(digits))
            return _lit(f"{width}'h{text}")
        bits = "".join("01xz"[self.t.decide(4)] for _ in range(width))
        return _lit(f"{width}'b{bits}")

    def operand(self, allow_xz: bool = True) -> ast.Expr:
        """A leaf: a readable signal (maybe selected into) or a literal."""
        names = sorted(self.readable)
        choice = self.t.decide(3 if names else 1)
        if not names or choice == 2:
            return self.literal(_WIDTHS[self.t.decide(len(_WIDTHS))], allow_xz)
        name = names[self.t.decide(len(names))]
        width = self.readable[name]
        if choice == 1 and width > 1:
            kind = self.t.decide(2)
            if kind == 0:
                return ast.Index(_ident(name), _lit(str(self.t.decide(width))))
            msb = self.t.decide(width)
            lsb = self.t.decide(msb + 1)
            return ast.PartSelect(_ident(name), _lit(str(msb)), _lit(str(lsb)))
        return _ident(name)

    _UNARY_OPS = ("~", "!", "-", "&", "|", "^")
    _BINARY_OPS = (
        "&", "|", "^", "+", "-", "*", "<<", ">>",
        "==", "!=", "<", "<=", ">", ">=", "&&", "||",
    )

    def expr(self, depth: int, allow_xz: bool = True) -> ast.Expr:
        """A random expression of at most ``depth`` operator levels."""
        if depth <= 0:
            return self.operand(allow_xz)
        choice = self.t.decide(6)
        if choice == 0:
            return self.operand(allow_xz)
        if choice == 1:
            op = self._UNARY_OPS[self.t.decide(len(self._UNARY_OPS))]
            return ast.UnaryOp(op, self.expr(depth - 1, allow_xz))
        if choice in (2, 3):
            op = self._BINARY_OPS[self.t.decide(len(self._BINARY_OPS))]
            return ast.BinaryOp(
                op, self.expr(depth - 1, allow_xz), self.expr(depth - 1, allow_xz)
            )
        if choice == 4:
            return ast.Ternary(
                self.expr(depth - 1, allow_xz),
                self.expr(depth - 1, allow_xz),
                self.expr(depth - 1, allow_xz),
            )
        parts = [self.expr(depth - 1, allow_xz) for _ in range(2 + self.t.decide(2))]
        return ast.Concat(parts)

    # -- statements ----------------------------------------------------

    def _assign(self, name: str, nonblocking: bool, depth: int) -> ast.Stmt:
        rhs = self.expr(depth)
        delay = _lit(str(1 + self.t.decide(3))) if self.t.maybe(15) else None
        cls = ast.NonBlockingAssign if nonblocking else ast.BlockingAssign
        return cls(_ident(name), rhs, delay)

    def update_stmt(self, name: str, nonblocking: bool) -> ast.Stmt:
        """One update for register ``name``: assign, if/else, or case."""
        shape = self.t.decide(3)
        if shape == 0:
            return self._assign(name, nonblocking, 2)
        if shape == 1:
            stmt = ast.If(
                self.expr(1),
                self._assign(name, nonblocking, 2),
                self._assign(name, nonblocking, 1) if self.t.maybe(60) else None,
            )
            if self.t.maybe(25):  # nest once
                stmt = ast.If(self.expr(1), stmt, None)
            return stmt
        kind = ("case", "casez", "casex")[self.t.decide(3)]
        scrutinee = self.operand()
        width = 2
        items = [
            ast.CaseItem(
                [self.literal(width, allow_xz=kind != "case")],
                self._assign(name, nonblocking, 1),
            )
            for _ in range(1 + self.t.decide(3))
        ]
        if self.t.maybe(70):
            items.append(ast.CaseItem([], self._assign(name, nonblocking, 1)))
        return ast.Case(kind, scrutinee, items)

    # -- modules -------------------------------------------------------

    def build(self, seed: int) -> GeneratedProgram:
        modules: list[ast.ModuleDef] = []
        use_sub = self.t.maybe(30)
        if use_sub:
            modules.append(self._submodule())

        # Interface of the design under test.
        inputs = {"clk": 1, "rst": 1}
        for i in range(1 + self.t.decide(3)):
            inputs[f"d{i}"] = _WIDTHS[self.t.decide(len(_WIDTHS))]
        self.readable = dict(inputs)

        items: list[ast.ModuleItem] = [
            ast.Decl("input", name, *_range_exprs(width), reg_flag=False)
            for name, width in inputs.items()
        ]
        outputs: dict[str, int] = {}

        # Layered continuous assigns (acyclic: rhs reads earlier signals).
        wires: dict[str, int] = {}
        for i in range(self.t.decide(3)):
            name, width = f"w{i}", _WIDTHS[self.t.decide(len(_WIDTHS))]
            items.append(ast.Decl("output", name, *_range_exprs(width)))
            delay = _lit(str(1 + self.t.decide(2))) if self.t.maybe(20) else None
            items.append(ast.ContinuousAssign(_ident(name), self.expr(2), delay))
            wires[name] = width
            self.readable[name] = width
            outputs[name] = width

        if use_sub:
            items.append(ast.Decl("output", "sy", *_range_exprs(4)))
            items.append(self._sub_instance())
            outputs["sy"] = 4

        # Sequential registers, one clocked block.
        seq: dict[str, int] = {}
        for i in range(1 + self.t.decide(2)):
            name, width = f"q{i}", _WIDTHS[self.t.decide(len(_WIDTHS))]
            items.append(ast.Decl("output", name, *_range_exprs(width), reg_flag=True))
            seq[name] = width
            outputs[name] = width
        self.readable.update(seq)
        async_rst = self.t.maybe(40)
        sens = [ast.SensItem("posedge", _ident("clk"))]
        if async_rst:
            sens.append(ast.SensItem("posedge", _ident("rst")))
        updates: list[ast.Stmt] = [
            self.update_stmt(name, nonblocking=True) for name in seq
        ]
        body: ast.Stmt = ast.Block(updates)
        if async_rst or self.t.maybe(50):
            resets: list[ast.Stmt] = [
                ast.NonBlockingAssign(_ident(name), self.literal(width, allow_xz=False))
                for name, width in seq.items()
            ]
            body = ast.If(_ident("rst"), ast.Block(resets), body)
        items.append(ast.Always(ast.SensList(sens), body))

        # Combinational always blocks, layered like the wires.
        for i in range(self.t.decide(2)):
            name, width = f"c{i}", _WIDTHS[self.t.decide(len(_WIDTHS))]
            items.append(ast.Decl("output", name, *_range_exprs(width), reg_flag=True))
            items.append(
                ast.Always(
                    ast.SensList([ast.SensItem("all", None)]),
                    ast.Block([self.update_stmt(name, nonblocking=False)]),
                )
            )
            self.readable[name] = width
            outputs[name] = width

        port_names = list(inputs) + list(outputs)
        modules.append(ast.ModuleDef(DUT_NAME, port_names, items))
        tb_module = self._testbench(inputs, outputs)
        design_text = generate(ast.Source(modules))
        tb_text = generate(ast.Source([tb_module]))
        return GeneratedProgram(
            seed,
            design_text,
            tb_text,
            tuple(self.t.decisions),
            ast.Source(modules + [tb_module]),
        )

    def _submodule(self) -> ast.ModuleDef:
        """A tiny pure-combinational helper module."""
        items: list[ast.ModuleItem] = [
            ast.Decl("input", "a", *_range_exprs(4)),
            ast.Decl("input", "b", *_range_exprs(4)),
            ast.Decl("output", "y", *_range_exprs(4)),
        ]
        saved = self.readable
        self.readable = {"a": 4, "b": 4}
        items.append(ast.ContinuousAssign(_ident("y"), self.expr(2)))
        self.readable = saved
        return ast.ModuleDef(SUB_NAME, ["a", "b", "y"], items)

    def _sub_instance(self) -> ast.ModuleItem:
        names = sorted(self.readable)
        a = names[self.t.decide(len(names))]
        b = names[self.t.decide(len(names))]
        self.readable["sy"] = 4
        args: list[ast.Expr | None] = [_ident(a), _ident(b), _ident("sy")]
        if self.t.maybe(50):
            ports = [
                ast.PortArg(pname, arg)
                for pname, arg in zip(("a", "b", "y"), args)
            ]
        else:
            ports = [ast.PortArg(None, arg) for arg in args]
        return ast.Instance(SUB_NAME, "u_sub", ports)

    def _testbench(
        self, inputs: dict[str, int], outputs: dict[str, int]
    ) -> ast.ModuleDef:
        items: list[ast.ModuleItem] = []
        for name, width in inputs.items():
            items.append(ast.Decl("reg", name, *_range_exprs(width)))
        for name, width in outputs.items():
            items.append(ast.Decl("wire", name, *_range_exprs(width)))
        items.append(
            ast.Instance(
                DUT_NAME,
                "dut",
                [
                    ast.PortArg(name, _ident(name))
                    for name in list(inputs) + list(outputs)
                ],
            )
        )
        # Clock and async reset release.
        items.append(
            ast.Always(
                None,
                ast.DelayStmt(
                    _lit("5"),
                    ast.BlockingAssign(_ident("clk"), ast.UnaryOp("~", _ident("clk"))),
                ),
            )
        )
        stim: list[ast.Stmt] = [
            ast.BlockingAssign(_ident("clk"), _lit("0")),
            ast.BlockingAssign(_ident("rst"), _lit("1")),
        ]
        data = [name for name in inputs if name not in ("clk", "rst")]
        for name in data:
            stim.append(
                ast.BlockingAssign(_ident(name), self.literal(inputs[name], False))
            )
        stim.append(
            ast.DelayStmt(_lit("7"), ast.BlockingAssign(_ident("rst"), _lit("0")))
        )
        for _ in range(1 + self.t.decide(6)):
            delay = _lit(str(1 + self.t.decide(12)))
            target = data[self.t.decide(len(data))] if data else "rst"
            value = self.literal(inputs.get(target, 1), allow_xz=self.t.maybe(25))
            stim.append(
                ast.DelayStmt(delay, ast.BlockingAssign(_ident(target), value))
            )
        stim.append(ast.DelayStmt(_lit("20"), ast.SysTaskCall("$finish", [])))
        items.append(ast.Initial(ast.Block(stim)))
        items.append(
            ast.Always(
                ast.SensList([ast.SensItem("negedge", _ident("clk"))]),
                ast.SysTaskCall(
                    "$cirfix_record", [_ident(name) for name in outputs]
                ),
            )
        )
        return ast.ModuleDef(TB_NAME, [], items)


def _range_exprs(width: int) -> tuple[ast.Expr | None, ast.Expr | None]:
    """``(msb, lsb)`` Decl range for a width (None/None for 1 bit)."""
    if width <= 1:
        return None, None
    return _lit(str(width - 1)), _lit("0")


def generate_program(seed: int) -> GeneratedProgram:
    """Generate the program for ``seed`` (deterministic)."""
    return _Builder(DecisionTrace(seed=seed)).build(seed)


def replay_program(decisions: list[int], seed: int = -1) -> GeneratedProgram:
    """Rebuild a program from a (possibly shrunk) decision list."""
    return _Builder(DecisionTrace(script=decisions)).build(seed)
