"""repro.fuzz — seeded Verilog fuzzing + differential oracles.

A correctness harness for the whole CirFix stack: a seeded random
Verilog-2001 generator (constrained to the :mod:`repro.hdl` subset)
feeds a battery of differential/metamorphic oracles —

- **roundtrip**: parse → codegen → re-parse is a numbered structural
  fixpoint (:func:`check_roundtrip`);
- **lint**: static analysis never raises on a parseable program and
  renders byte-stable reports (:func:`check_lint`);
- **determinism**: simulation is bit-identical run-to-run and the
  evaluation pipeline scores a program 1.0 against its own trace
  (:func:`check_determinism`);
- **backends**: ``SerialBackend`` and ``ProcessPoolBackend`` agree
  (:func:`check_backends`);
- **templates**: every repair template applied to every legal target
  re-parses, i.e. the mutation operators are closed over parseable
  programs (:func:`check_templates`);
- **logic**: 4-state ops satisfy commutativity and x-pessimism
  monotonicity against exhaustive small-width tables
  (:func:`check_logic_properties`).

Failures shrink automatically by delta-reducing the generator's
decision trace (:func:`shrink_decisions`, built on the same ddmin as
patch minimization) and land as reproducers in ``tests/fuzz/corpus/``.

CLI: ``python -m repro fuzz --seed 0 --count 100``.  Docs:
``docs/fuzzing.md``.
"""

from .faults import FAULTS
from .generator import (
    DecisionTrace,
    GeneratedProgram,
    generate_program,
    replay_program,
)
from .harness import FuzzConfig, FuzzReport, FuzzViolation, run_fuzz
from .logic_props import check_logic_properties
from .oracles import (
    ORACLES,
    Violation,
    check_backends,
    check_determinism,
    check_lint,
    check_roundtrip,
    check_templates,
    split_program,
)
from .shrink import shrink_decisions

__all__ = [
    "DecisionTrace",
    "GeneratedProgram",
    "generate_program",
    "replay_program",
    "FuzzConfig",
    "FuzzReport",
    "FuzzViolation",
    "run_fuzz",
    "Violation",
    "ORACLES",
    "check_roundtrip",
    "check_lint",
    "check_determinism",
    "check_backends",
    "check_templates",
    "check_logic_properties",
    "split_program",
    "shrink_decisions",
    "FAULTS",
]
