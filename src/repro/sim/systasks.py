"""System task and function implementations.

Covers the tasks the benchmark testbenches use: ``$display``/``$write``/
``$strobe``, ``$monitor``, ``$finish``/``$stop``, ``$time``/``$stime``/
``$realtime``, ``$random``, ``$signed``/``$unsigned``, and the CirFix
instrumentation hook ``$cirfix_record`` (see
:mod:`repro.instrument.instrumenter`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..hdl import ast
from .eval import EvalError, eval_expr
from .logic import Value

if TYPE_CHECKING:  # pragma: no cover
    from .processes import Env
    from .simulator import Simulator


def format_display(fmt: str, args: list[Value], time: int) -> str:
    """Expand a $display-style format string.

    Supports %d/%0d, %b/%0b, %h/%0h/%x, %o, %c, %s, %t/%0t, %m and %%,
    plus the escapes \\n, \\t and \\\\.
    """
    out: list[str] = []
    arg_iter = iter(args)
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch == "\\" and i + 1 < len(fmt):
            nxt = fmt[i + 1]
            out.append({"n": "\n", "t": "\t", "\\": "\\", '"': '"'}.get(nxt, nxt))
            i += 2
            continue
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        i += 1
        zero_pad = False
        width_digits = ""
        while i < len(fmt) and fmt[i].isdigit():
            if fmt[i] == "0" and not width_digits:
                zero_pad = True
            width_digits += fmt[i]
            i += 1
        if i >= len(fmt):
            out.append("%")
            break
        spec = fmt[i].lower()
        i += 1
        if spec == "%":
            out.append("%")
            continue
        if spec == "m":
            out.append("top")
            continue
        try:
            value = next(arg_iter)
        except StopIteration:
            out.append("<missing>")
            continue
        out.append(_format_value(spec, value, time, zero_pad, width_digits))
    return "".join(out)


def _format_value(spec: str, value: Value, time: int, zero_pad: bool, width_digits: str) -> str:
    if spec == "d":
        text = value.to_decimal_string()
        if width_digits and width_digits != "0":
            text = text.rjust(int(width_digits))
        elif not zero_pad and not width_digits:
            # Default %d pads to the decimal width of the max value.
            max_digits = len(str((1 << value.width) - 1))
            text = text.rjust(max_digits)
        return text
    if spec == "b":
        text = value.to_bit_string()
        if zero_pad or width_digits == "0":
            text = text.lstrip("0") or "0"
        return text
    if spec in ("h", "x"):
        return value.to_hex_string()
    if spec == "o":
        if value.bval:
            return "x"
        return format(value.aval, "o")
    if spec == "c":
        if value.bval:
            return "?"
        return chr(value.aval & 0xFF)
    if spec == "s":
        if value.bval:
            return "?"
        data = value.aval.to_bytes((value.width + 7) // 8, "big")
        return data.lstrip(b"\x00").decode("ascii", errors="replace")
    if spec == "t":
        return str(time)
    return f"%{spec}"


def display_text(args: list[ast.Expr], env: "Env", time: int) -> str:
    """Render a $display/$write argument list to text."""
    if args and isinstance(args[0], ast.StringConst):
        fmt = args[0].text
        values = [eval_expr(a, env) for a in args[1:]]
        return format_display(fmt, values, time)
    parts = []
    for arg in args:
        value = eval_expr(arg, env)
        parts.append(value.to_decimal_string())
    return " ".join(parts)


class Monitor:
    """State for one active ``$monitor``."""

    __slots__ = ("args", "env", "last")

    def __init__(self, args: list[ast.Expr], env: "Env"):
        self.args = args
        self.env = env
        self.last: str | None = None

    def sample(self, sim: "Simulator") -> None:
        """Re-evaluate the argument list; print when the rendering changed."""
        try:
            text = display_text(self.args, self.env, sim.scheduler.time)
        except EvalError:
            return
        if text != self.last:
            self.last = text
            sim.emit_output(text)


def system_function(sim: "Simulator", name: str, args: list[Value]) -> Value:
    """Evaluate a system function call."""
    if name in ("$time", "$stime", "$realtime"):
        return Value.from_int(sim.scheduler.time, 64)
    if name == "$random":
        return Value.from_int(sim.next_random(), 32, signed=True)
    if name == "$urandom":
        return Value.from_int(sim.next_random(), 32)
    if name == "$signed" and args:
        value = args[0]
        return Value(value.width, value.aval, value.bval, True)
    if name == "$unsigned" and args:
        value = args[0]
        return Value(value.width, value.aval, value.bval, False)
    if name == "$clog2" and args:
        n = args[0].to_int()
        bits = 0
        while (1 << bits) < n:
            bits += 1
        return Value.from_int(bits, 32)
    raise EvalError(f"unknown system function {name}")
