"""Runtime objects: signals, memories, named events, module instances.

These are the elaborated counterparts of AST declarations.  A
:class:`Signal` holds a 4-state :class:`~repro.sim.logic.Value` and notifies
waiters on changes; edge detection follows IEEE 1364 (posedge = any
transition towards 1 or away from 0 on the LSB).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..hdl import ast
from .logic import Value

if TYPE_CHECKING:  # pragma: no cover
    from .simulator import Simulator

#: Edge classification table: (old_lsb, new_lsb) -> set of edges produced.
#: Per IEEE 1364: posedge is 0->1, 0->x/z, x/z->1; negedge is the dual.
def _edges(old: str, new: str) -> tuple[str, ...]:
    if old == new:
        return ()
    if old == "0":
        return ("posedge",) if new == "1" else ("posedge",)
    if old == "1":
        return ("negedge",)
    # old is x/z
    if new == "1":
        return ("posedge",)
    if new == "0":
        return ("negedge",)
    return ()


class Signal:
    """A scalar or vector net/variable.

    Attributes:
        name: Declared name (per-instance, not hierarchical).
        width: Bit width.
        kind: ``wire``, ``reg``, ``integer``, ``time``, or ``real``.
        value: Current 4-state value.
    """

    __slots__ = ("name", "width", "kind", "signed", "value", "_waiters", "_subscribers")

    def __init__(self, name: str, width: int, kind: str, signed: bool = False):
        self.name = name
        self.width = width
        self.kind = kind
        self.signed = signed
        if kind == "wire":
            self.value = Value.high_z(width)
        elif kind in ("integer", "time"):
            self.value = Value.unknown(width)
        else:
            self.value = Value.unknown(width)
        if signed:
            self.value = Value(width, self.value.aval, self.value.bval, True)
        # One-shot waiters: (edge, callback).  Edge is 'posedge', 'negedge',
        # or 'level'.  Callbacks fire at most once, then are discarded.
        self._waiters: list[tuple[str, Callable[[], None]]] = []
        # Persistent subscribers (continuous assignments): called on every
        # value change.
        self._subscribers: list[Callable[[], None]] = []

    def add_waiter(self, edge: str, callback: Callable[[], None]) -> None:
        """Register a one-shot waiter for the given edge."""
        self._waiters.append((edge, callback))

    def remove_waiter(self, callback: Callable[[], None]) -> None:
        """Drop a previously registered one-shot waiter (if still present)."""
        self._waiters = [(e, cb) for e, cb in self._waiters if cb is not callback]

    def subscribe(self, callback: Callable[[], None]) -> None:
        """Register a persistent change subscriber."""
        self._subscribers.append(callback)

    def set_value(self, new: Value, sim: "Simulator") -> None:
        """Update the value, firing edge waiters and subscribers on change."""
        new = new.resized(self.width, self.signed)
        old = self.value
        if old.aval == new.aval and old.bval == new.bval:
            return
        self.value = new
        edges = set(_edges(old.bit(0), new.bit(0)))
        edges.add("level")
        if self._waiters:
            fired = [cb for edge, cb in self._waiters if edge in edges]
            if fired:
                self._waiters = [
                    (edge, cb) for edge, cb in self._waiters if edge not in edges
                ]
                for cb in fired:
                    sim.scheduler.schedule_active(cb)
        for cb in self._subscribers:
            sim.scheduler.schedule_active(cb)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name}={self.value.to_bit_string()})"


class NamedEvent:
    """A declared ``event``; triggering wakes all current waiters."""

    __slots__ = ("name", "_waiters")

    def __init__(self, name: str):
        self.name = name
        self._waiters: list[Callable[[], None]] = []

    def add_waiter(self, callback: Callable[[], None]) -> None:
        """Register a one-shot waiter."""
        self._waiters.append(callback)

    def remove_waiter(self, callback: Callable[[], None]) -> None:
        """Drop a previously registered waiter."""
        self._waiters = [cb for cb in self._waiters if cb is not callback]

    def trigger(self, sim: "Simulator") -> None:
        """Wake every current waiter (-> event)."""
        fired, self._waiters = self._waiters, []
        for cb in fired:
            sim.scheduler.schedule_active(cb)


class Memory:
    """A reg array (``reg [7:0] mem [0:255]``).

    Words default to all-x.  Any word write counts as a change of the whole
    memory for level-sensitivity purposes.
    """

    __slots__ = ("name", "word_width", "lo", "hi", "words", "_waiters", "_subscribers", "signed")

    def __init__(self, name: str, word_width: int, lo: int, hi: int, signed: bool = False):
        if lo > hi:
            lo, hi = hi, lo
        self.name = name
        self.word_width = word_width
        self.lo = lo
        self.hi = hi
        self.signed = signed
        self.words: dict[int, Value] = {}
        self._waiters: list[tuple[str, Callable[[], None]]] = []
        self._subscribers: list[Callable[[], None]] = []

    def read(self, index: int) -> Value:
        """Word at ``index``; out-of-range reads return all-x."""
        if index < self.lo or index > self.hi:
            return Value.unknown(self.word_width)
        return self.words.get(index, Value.unknown(self.word_width))

    def write(self, index: int, value: Value, sim: "Simulator") -> None:
        """Write a word, notifying subscribers and level waiters on change."""
        if index < self.lo or index > self.hi:
            return
        new = value.resized(self.word_width, self.signed)
        old = self.read(index)
        if old.aval == new.aval and old.bval == new.bval:
            return
        self.words[index] = new
        for cb in self._subscribers:
            sim.scheduler.schedule_active(cb)
        if self._waiters:
            fired = [cb for edge, cb in self._waiters if edge == "level"]
            self._waiters = [(e, cb) for e, cb in self._waiters if e != "level"]
            for cb in fired:
                sim.scheduler.schedule_active(cb)

    def add_waiter(self, edge: str, callback: Callable[[], None]) -> None:
        """Register a one-shot waiter (level sensitivity)."""
        self._waiters.append((edge, callback))

    def remove_waiter(self, callback: Callable[[], None]) -> None:
        """Drop a previously registered waiter."""
        self._waiters = [(e, cb) for e, cb in self._waiters if cb is not callback]

    def subscribe(self, callback: Callable[[], None]) -> None:
        """Register a persistent change subscriber."""
        self._subscribers.append(callback)


class Instance:
    """An elaborated module instance (one node of the design hierarchy)."""

    def __init__(self, name: str, module: ast.ModuleDef, parent: "Instance | None" = None):
        self.name = name
        self.module = module
        self.parent = parent
        self.signals: dict[str, Signal] = {}
        self.memories: dict[str, Memory] = {}
        self.events: dict[str, NamedEvent] = {}
        self.params: dict[str, Value] = {}
        self.functions: dict[str, ast.FunctionDef] = {}
        self.tasks: dict[str, ast.TaskDef] = {}
        self.children: dict[str, Instance] = {}
        #: Port directions for connection checking: name -> 'input'/'output'/'inout'.
        self.port_directions: dict[str, str] = {}

    @property
    def path(self) -> str:
        """Hierarchical path, e.g. ``testbench.dut``."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}.{self.name}"

    def lookup_signal(self, name: str) -> Signal | None:
        """The signal named ``name`` in this instance, or None."""
        return self.signals.get(name)

    def lookup(self, name: str) -> Signal | Memory | NamedEvent | Value | None:
        """Resolve a simple name within this instance."""
        if name in self.signals:
            return self.signals[name]
        if name in self.memories:
            return self.memories[name]
        if name in self.events:
            return self.events[name]
        if name in self.params:
            return self.params[name]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Instance({self.path}: {self.module.name})"
