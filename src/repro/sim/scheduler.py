"""Stratified event scheduler (IEEE 1364 reference model, simplified).

Each simulation time slot processes four regions in order:

1. **active** — process resumptions, continuous-assignment updates;
2. **inactive** — ``#0``-delayed events, promoted when active drains;
3. **nba** — non-blocking assignment updates, promoted when active and
   inactive both drain (their execution may wake more active events);
4. **postponed** — read-only callbacks (``$monitor``, the CirFix trace
   recorder) run once the slot is otherwise quiet.

Future events live in a heap keyed by (time, insertion sequence) so
same-time events preserve scheduling order.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable

#: Region names accepted by :meth:`Scheduler.schedule_at`.
REGIONS = ("active", "inactive", "nba")


class SchedulerError(Exception):
    """Raised on scheduling misuse (negative delays, unknown regions)."""


class Scheduler:
    """The simulation event queue."""

    def __init__(self) -> None:
        self.time = 0
        self._active: deque[Callable[[], None]] = deque()
        self._inactive: deque[Callable[[], None]] = deque()
        self._nba: deque[Callable[[], None]] = deque()
        self._postponed: list[Callable[[], None]] = []
        self._postponed_once: deque[Callable[[], None]] = deque()
        self._future: list[tuple[int, int, str, Callable[[], None]]] = []
        self._seq = 0
        self.finished = False
        #: Telemetry counters (repro.obs): callbacks executed in the
        #: active/NBA regions and time slots advanced.  Plain integer
        #: increments on the hot path — effectively free, always on.
        self.events_executed = 0
        self.slots_advanced = 0

    # ------------------------------------------------------------------
    # Scheduling API
    # ------------------------------------------------------------------

    def schedule_active(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` in the current slot's active region."""
        self._active.append(fn)

    def schedule_inactive(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` after the active region drains (``#0`` semantics)."""
        self._inactive.append(fn)

    def schedule_nba(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` in the current slot's NBA update region."""
        self._nba.append(fn)

    def add_postponed(self, fn: Callable[[], None]) -> None:
        """Register a read-only callback run at the end of every slot."""
        self._postponed.append(fn)

    def schedule_postponed_once(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` once at the end of the current time slot."""
        self._postponed_once.append(fn)

    def schedule_at(self, delay: int, fn: Callable[[], None], region: str = "active") -> None:
        """Schedule ``fn`` to run ``delay`` ticks in the future."""
        if delay < 0:
            raise SchedulerError(f"negative delay {delay}")
        if region not in REGIONS:
            raise SchedulerError(f"unknown region {region!r}")
        if delay == 0:
            if region == "active":
                self.schedule_active(fn)
            elif region == "inactive":
                self.schedule_inactive(fn)
            else:
                self.schedule_nba(fn)
            return
        self._seq += 1
        heapq.heappush(self._future, (self.time + delay, self._seq, region, fn))

    def finish(self) -> None:
        """Terminate the simulation at the end of the current event."""
        self.finished = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _exhaust_slot(self) -> None:
        """Run active/inactive/nba regions until the slot is quiet."""
        while not self.finished:
            if self._active:
                self.events_executed += 1
                self._active.popleft()()
            elif self._inactive:
                self._active.extend(self._inactive)
                self._inactive.clear()
            elif self._nba:
                # NBA updates execute as a batch; they may enqueue new
                # active events (processes sensitive to the updated nets).
                batch = list(self._nba)
                self._nba.clear()
                self.events_executed += len(batch)
                for fn in batch:
                    fn()
            else:
                break

    def run(self, max_time: int) -> int:
        """Run until ``$finish``, event exhaustion, or ``max_time``.

        Returns the simulation time at which execution stopped.
        """
        while not self.finished:
            self._exhaust_slot()
            if self.finished:
                break
            while self._postponed_once:
                self._postponed_once.popleft()()
            for fn in self._postponed:
                fn()
            if not self._future:
                break
            next_time = self._future[0][0]
            if next_time > max_time:
                break
            self.time = next_time
            self.slots_advanced += 1
            while self._future and self._future[0][0] == next_time:
                _, _, region, fn = heapq.heappop(self._future)
                if region == "active":
                    self._active.append(fn)
                elif region == "inactive":
                    self._inactive.append(fn)
                else:
                    self._nba.append(fn)
        return self.time

    @property
    def pending_events(self) -> int:
        """Total events still queued (useful for tests and debugging)."""
        return (
            len(self._active)
            + len(self._inactive)
            + len(self._nba)
            + len(self._future)
        )
