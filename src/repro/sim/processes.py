"""Procedural statement execution.

Statements run inside Python generators that ``yield`` suspension records
(:class:`DelaySuspend`, :class:`EventSuspend`); the :class:`Process` wrapper
registers each suspension with the scheduler and resumes the generator when
it fires.  This models Verilog's cooperative concurrency directly: an
``always`` block is a ``while True`` generator, a ``#5`` is a yield.

Control-flow exceptions:

- :class:`FinishRequest` — ``$finish`` / ``$stop``;
- :class:`DisableEscape` — ``disable block_name``;
- :class:`SimulationBudget` — statement budget exhausted (runaway mutant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator

from ..hdl import ast
from .eval import EvalError, eval_expr
from .logic import Value, truthiness
from .runtime import Instance, Memory, NamedEvent, Signal

if TYPE_CHECKING:  # pragma: no cover
    from .simulator import Simulator


class FinishRequest(Exception):
    """Raised by ``$finish``/``$stop`` to unwind the current process."""


class SimulationBudget(Exception):
    """Raised when the per-run statement budget is exhausted."""


class DisableEscape(Exception):
    """Raised by ``disable name`` and caught by the matching named block."""

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name


@dataclass
class DelaySuspend:
    """Suspend the process for ``ticks`` time units."""

    ticks: int


@dataclass
class EventSuspend:
    """Suspend until any listed (waitable, edge) fires.

    ``items`` entries are (Signal | Memory | NamedEvent, edge) where edge is
    'posedge', 'negedge', or 'level'.
    """

    items: list[tuple[object, str]]


Suspend = DelaySuspend | EventSuspend
StmtGen = Generator[Suspend, None, None]


class LocalVar:
    """A function/task-local variable (no event semantics needed)."""

    __slots__ = ("name", "width", "signed", "value")

    def __init__(self, name: str, width: int, signed: bool = False):
        self.name = name
        self.width = width
        self.signed = signed
        self.value = Value.unknown(width)
        if signed:
            self.value = Value(width, self.value.aval, self.value.bval, True)

    def set(self, value: Value) -> None:
        """Assign, resizing to the variable's width."""
        self.value = value.resized(self.width, self.signed)


class Env:
    """Evaluation/assignment environment: instance scope + optional locals.

    Implements the :class:`repro.sim.eval.EvalScope` protocol.
    """

    __slots__ = ("sim", "instance", "locals")

    def __init__(self, sim: "Simulator", instance: Instance, locals_: dict[str, LocalVar] | None = None):
        self.sim = sim
        self.instance = instance
        self.locals = locals_

    def child(self, locals_: dict[str, LocalVar]) -> "Env":
        """A nested environment sharing the instance but with new locals."""
        return Env(self.sim, self.instance, locals_)

    # ------------------------------------------------------------------
    # EvalScope protocol
    # ------------------------------------------------------------------

    def read(self, name: str) -> Value:
        """Current value of a local, signal, or parameter."""
        if self.locals is not None and name in self.locals:
            return self.locals[name].value
        target = self.instance.lookup(name)
        if isinstance(target, Signal):
            return target.value
        if isinstance(target, Value):  # parameter
            return target
        if isinstance(target, Memory):
            raise EvalError(f"memory {name!r} read without an index")
        if isinstance(target, NamedEvent):
            raise EvalError(f"named event {name!r} used as a value")
        raise EvalError(f"unknown identifier {name!r} in {self.instance.path}")

    def read_word(self, name: str, index: int) -> Value:
        """Current value of one memory word."""
        memory = self.instance.memories.get(name)
        if memory is None:
            raise EvalError(f"unknown memory {name!r}")
        return memory.read(index)

    def is_memory(self, name: str) -> bool:
        """True when ``name`` resolves to a memory (not shadowed by a local)."""
        if self.locals is not None and name in self.locals:
            return False
        return name in self.instance.memories

    def call_function(self, name: str, args: list[Value]) -> Value:
        """Invoke a user-defined function synchronously."""
        fn = self.instance.functions.get(name)
        if fn is None:
            raise EvalError(f"unknown function {name!r}")
        return run_function(fn, args, self)

    def system_function(self, name: str, args: list[Value]) -> Value:
        """Invoke a system function such as ``$time``."""
        return self.sim.system_function(name, args)

    # ------------------------------------------------------------------
    # Assignment
    # ------------------------------------------------------------------

    def lhs_width(self, lhs: ast.Expr) -> int:
        """Width of an lvalue, for context-determined RHS sizing."""
        if isinstance(lhs, ast.Identifier):
            if self.locals is not None and lhs.name in self.locals:
                return self.locals[lhs.name].width
            target = self.instance.lookup(lhs.name)
            if isinstance(target, Signal):
                return target.width
            if isinstance(target, Memory):
                return target.word_width
            return 32
        if isinstance(lhs, ast.Index):
            if isinstance(lhs.target, ast.Identifier) and self.is_memory(lhs.target.name):
                memory = self.instance.memories[lhs.target.name]
                return memory.word_width
            return 1
        if isinstance(lhs, ast.PartSelect):
            try:
                msb = eval_expr(lhs.msb, self).to_int()
                lsb = eval_expr(lhs.lsb, self).to_int()
                return abs(msb - lsb) + 1
            except EvalError:
                return 1
        if isinstance(lhs, ast.Concat):
            return sum(self.lhs_width(p) for p in lhs.parts)
        return 32

    def resolve_lvalue(self, lhs: ast.Expr) -> list[tuple[Callable[[Value], None], int]]:
        """Resolve an lvalue into (setter, width) pairs, MSB part first.

        Index expressions are evaluated *now*, per IEEE semantics for
        non-blocking assignments.
        """
        sim = self.sim
        if isinstance(lhs, ast.Identifier):
            name = lhs.name
            if self.locals is not None and name in self.locals:
                var = self.locals[name]
                return [(var.set, var.width)]
            target = self.instance.lookup(name)
            if isinstance(target, Signal):
                return [(lambda v, s=target: s.set_value(v, sim), target.width)]
            raise EvalError(f"cannot assign to {name!r} in {self.instance.path}")
        if isinstance(lhs, ast.Index):
            if isinstance(lhs.target, ast.Identifier) and self.is_memory(lhs.target.name):
                memory = self.instance.memories[lhs.target.name]
                index_val = eval_expr(lhs.index, self)
                if not index_val.is_fully_defined:
                    return [(lambda v: None, memory.word_width)]
                index = index_val.to_int()
                return [
                    (lambda v, m=memory, i=index: m.write(i, v, sim), memory.word_width)
                ]
            # Bit select on a signal.
            setter, _ = self._signal_bits_setter(lhs.target)
            index_val = eval_expr(lhs.index, self)
            if not index_val.is_fully_defined:
                return [(lambda v: None, 1)]
            index = index_val.to_int()
            return [(lambda v, s=setter, i=index: s(i, i, v), 1)]
        if isinstance(lhs, ast.PartSelect):
            setter, _ = self._signal_bits_setter(lhs.target)
            msb = eval_expr(lhs.msb, self)
            lsb = eval_expr(lhs.lsb, self)
            if not (msb.is_fully_defined and lsb.is_fully_defined):
                return [(lambda v: None, 1)]
            hi, lo = msb.to_int(), lsb.to_int()
            if hi < lo:
                hi, lo = lo, hi
            return [(lambda v, s=setter, h=hi, l=lo: s(h, l, v), hi - lo + 1)]
        if isinstance(lhs, ast.Concat):
            out: list[tuple[Callable[[Value], None], int]] = []
            for part in lhs.parts:
                out.extend(self.resolve_lvalue(part))
            return out
        raise EvalError(f"invalid lvalue {type(lhs).__name__}")

    def _signal_bits_setter(self, target: ast.Expr) -> tuple[Callable[[int, int, Value], None], Signal]:
        if not isinstance(target, ast.Identifier):
            raise EvalError("bit/part select target must be a simple name")
        name = target.name
        if self.locals is not None and name in self.locals:
            var = self.locals[name]

            def set_local_bits(hi: int, lo: int, value: Value, v=var) -> None:
                v.value = v.value.with_bits(hi, lo, value)

            return set_local_bits, None  # type: ignore[return-value]
        signal = self.instance.lookup(name)
        if not isinstance(signal, Signal):
            raise EvalError(f"cannot part-assign {name!r}")
        sim = self.sim

        def set_bits(hi: int, lo: int, value: Value, s=signal) -> None:
            s.set_value(s.value.with_bits(hi, lo, value), sim)

        return set_bits, signal

    def assign(self, lhs: ast.Expr, value: Value) -> None:
        """Blocking-style immediate assignment."""
        apply_to_setters(self.resolve_lvalue(lhs), value)

    def waitable(self, name: str) -> Signal | Memory | NamedEvent:
        """The Signal/Memory/NamedEvent behind ``name`` (for event controls)."""
        if self.locals is not None and name in self.locals:
            raise EvalError(f"cannot wait on local {name!r}")
        target = self.instance.lookup(name)
        if isinstance(target, (Signal, Memory, NamedEvent)):
            return target
        raise EvalError(f"cannot wait on {name!r}")


def apply_to_setters(setters: list[tuple[Callable[[Value], None], int]], value: Value) -> None:
    """Distribute ``value`` across resolved lvalue parts (MSB part first)."""
    total = sum(width for _, width in setters)
    value = value.resized(total)
    offset = total
    for setter, width in setters:
        offset -= width
        setter(value.select_range(offset + width - 1, offset))


# ----------------------------------------------------------------------
# Statement execution
# ----------------------------------------------------------------------


def exec_stmt(stmt: ast.Stmt | None, env: Env) -> StmtGen:
    """Execute one statement, yielding suspensions as needed."""
    if stmt is None or isinstance(stmt, ast.NullStmt):
        return
    env.sim.consume_step()
    if isinstance(stmt, ast.Block):
        if stmt.name is not None:
            try:
                for inner in list(stmt.stmts):
                    yield from exec_stmt(inner, env)
            except DisableEscape as escape:
                if escape.name != stmt.name:
                    raise
            return
        for inner in list(stmt.stmts):
            yield from exec_stmt(inner, env)
        return
    if isinstance(stmt, ast.BlockingAssign):
        width = env.lhs_width(stmt.lhs)
        value = eval_expr(stmt.rhs, env, ctx_width=width)
        if stmt.delay is not None:
            ticks = _delay_ticks(stmt.delay, env)
            if ticks > 0:
                yield DelaySuspend(ticks)
            elif ticks == 0:
                yield DelaySuspend(0)
        env.assign(stmt.lhs, value)
        return
    if isinstance(stmt, ast.NonBlockingAssign):
        width = env.lhs_width(stmt.lhs)
        value = eval_expr(stmt.rhs, env, ctx_width=width)
        setters = env.resolve_lvalue(stmt.lhs)
        ticks = _delay_ticks(stmt.delay, env) if stmt.delay is not None else 0
        env.sim.scheduler.schedule_at(
            ticks, lambda: apply_to_setters(setters, value), region="nba"
        )
        return
    if isinstance(stmt, ast.If):
        if truthiness(eval_expr(stmt.cond, env)) == "true":
            yield from exec_stmt(stmt.then_stmt, env)
        else:
            yield from exec_stmt(stmt.else_stmt, env)
        return
    if isinstance(stmt, ast.Case):
        yield from _exec_case(stmt, env)
        return
    if isinstance(stmt, ast.For):
        yield from exec_stmt(stmt.init, env)
        while truthiness(eval_expr(stmt.cond, env)) == "true":
            env.sim.consume_step()
            yield from exec_stmt(stmt.body, env)
            yield from exec_stmt(stmt.step, env)
        return
    if isinstance(stmt, ast.While):
        while truthiness(eval_expr(stmt.cond, env)) == "true":
            env.sim.consume_step()
            yield from exec_stmt(stmt.body, env)
        return
    if isinstance(stmt, ast.RepeatStmt):
        count = eval_expr(stmt.count, env)
        iterations = count.to_int() if count.is_fully_defined else 0
        for _ in range(max(iterations, 0)):
            env.sim.consume_step()
            yield from exec_stmt(stmt.body, env)
        return
    if isinstance(stmt, ast.Forever):
        while True:
            env.sim.consume_step()
            yield from exec_stmt(stmt.body, env)
    if isinstance(stmt, ast.Wait):
        while truthiness(eval_expr(stmt.cond, env)) != "true":
            items = _level_items(stmt.cond, env)
            if not items:
                raise EvalError("wait condition has no waitable signals")
            yield EventSuspend(items)
        yield from exec_stmt(stmt.body, env)
        return
    if isinstance(stmt, ast.DelayStmt):
        yield DelaySuspend(_delay_ticks(stmt.delay, env))
        yield from exec_stmt(stmt.body, env)
        return
    if isinstance(stmt, ast.EventControl):
        yield EventSuspend(resolve_senslist(stmt.senslist, env, stmt.body))
        yield from exec_stmt(stmt.body, env)
        return
    if isinstance(stmt, ast.EventTrigger):
        event = env.instance.events.get(stmt.name)
        if event is None:
            raise EvalError(f"unknown event {stmt.name!r}")
        event.trigger(env.sim)
        return
    if isinstance(stmt, ast.SysTaskCall):
        yield from env.sim.exec_systask(stmt, env)
        return
    if isinstance(stmt, ast.TaskCall):
        yield from _exec_task(stmt, env)
        return
    if isinstance(stmt, ast.Disable):
        raise DisableEscape(stmt.name)
    raise EvalError(f"cannot execute {type(stmt).__name__}")


def _delay_ticks(delay: ast.Expr, env: Env) -> int:
    value = eval_expr(delay, env)
    if not value.is_fully_defined:
        return 0
    return max(value.to_int(), 0)


def _exec_case(stmt: ast.Case, env: Env) -> StmtGen:
    subject = eval_expr(stmt.expr, env)
    default_item: ast.CaseItem | None = None
    for item in stmt.items:
        if not item.exprs:
            default_item = item
            continue
        for label in item.exprs:
            label_val = eval_expr(label, env)
            if _case_match(stmt.kind, subject, label_val):
                yield from exec_stmt(item.stmt, env)
                return
    if default_item is not None:
        yield from exec_stmt(default_item.stmt, env)


def _case_match(kind: str, subject: Value, label: Value) -> bool:
    width = max(subject.width, label.width)
    s = subject.resized(width)
    l = label.resized(width)
    mask = (1 << width) - 1
    if kind == "case":
        return s.aval == l.aval and s.bval == l.bval
    # Wildcard positions: z (and ? which parses as z) for casez; x or z for casex.
    if kind == "casez":
        wild = (l.bval & ~l.aval) | (s.bval & ~s.aval)
    else:  # casex
        wild = l.bval | s.bval
    care = mask & ~wild
    return (s.aval & care) == (l.aval & care) and (s.bval & care) == (l.bval & care)


def _exec_task(stmt: ast.TaskCall, env: Env) -> StmtGen:
    task = env.instance.tasks.get(stmt.name)
    if task is None:
        raise EvalError(f"unknown task {stmt.name!r}")
    locals_, inputs, outputs = _task_frame(task.decls, env)
    if len(stmt.args) != len(inputs) + len(outputs) and len(stmt.args) != len(
        [d for d in task.decls if d.kind in ("input", "output", "inout")]
    ):
        raise EvalError(f"task {stmt.name!r} argument count mismatch")
    # Bind arguments positionally, in declaration order of ports.
    ports = [d for d in task.decls if d.kind in ("input", "output", "inout")]
    if len(stmt.args) != len(ports):
        raise EvalError(f"task {stmt.name!r} expects {len(ports)} args")
    for decl, arg in zip(ports, stmt.args):
        if decl.kind in ("input", "inout"):
            locals_[decl.name].set(eval_expr(arg, env))
    task_env = env.child(locals_)
    yield from exec_stmt(task.body, task_env)
    for decl, arg in zip(ports, stmt.args):
        if decl.kind in ("output", "inout"):
            env.assign(arg, locals_[decl.name].value)


def _task_frame(
    decls: list[ast.Decl], env: Env
) -> tuple[dict[str, LocalVar], list[str], list[str]]:
    locals_: dict[str, LocalVar] = {}
    inputs: list[str] = []
    outputs: list[str] = []
    for decl in decls:
        width = _decl_width(decl, env)
        locals_[decl.name] = LocalVar(decl.name, width, decl.signed)
        if decl.kind in ("input", "inout"):
            inputs.append(decl.name)
        elif decl.kind == "output":
            outputs.append(decl.name)
    return locals_, inputs, outputs


def _decl_width(decl: ast.Decl, env: Env) -> int:
    if decl.kind == "integer":
        return 32
    if decl.msb is None:
        return 1
    msb = eval_expr(decl.msb, env).to_int()
    lsb = eval_expr(decl.lsb, env).to_int()
    return abs(msb - lsb) + 1


def run_function(fn: ast.FunctionDef, args: list[Value], env: Env) -> Value:
    """Execute a user function synchronously (no time controls allowed)."""
    env.sim.consume_step()
    locals_: dict[str, LocalVar] = {}
    result_width = 1
    if fn.msb is not None:
        msb = eval_expr(fn.msb, env).to_int()
        lsb = eval_expr(fn.lsb, env).to_int()
        result_width = abs(msb - lsb) + 1
    locals_[fn.name] = LocalVar(fn.name, result_width)
    inputs: list[str] = []
    for decl in fn.decls:
        width = _decl_width(decl, env)
        locals_[decl.name] = LocalVar(decl.name, width, decl.signed)
        if decl.kind == "input":
            inputs.append(decl.name)
    if len(args) != len(inputs):
        raise EvalError(f"function {fn.name!r} expects {len(inputs)} args")
    for name, arg in zip(inputs, args):
        locals_[name].set(arg)
    fn_env = env.child(locals_)
    gen = exec_stmt(fn.body, fn_env)
    for _ in gen:
        raise EvalError(f"function {fn.name!r} contains a time control")
    return locals_[fn.name].value


# ----------------------------------------------------------------------
# Sensitivity resolution
# ----------------------------------------------------------------------


def collect_read_names(node: ast.Node) -> set[str]:
    """Identifiers read by a statement (for @* and wait sensitivity).

    Approximates "read" as every identifier appearing anywhere except as the
    direct target name of an assignment (index expressions still count).
    """
    names: set[str] = set()
    skip_ids: set[int] = set()
    for sub in node.walk():
        if isinstance(sub, (ast.BlockingAssign, ast.NonBlockingAssign)):
            target = sub.lhs
            while isinstance(target, (ast.Index, ast.PartSelect)):
                target = target.target
            if isinstance(target, ast.Identifier):
                skip_ids.add(id(target))
    for sub in node.walk():
        if isinstance(sub, ast.Identifier) and id(sub) not in skip_ids:
            names.add(sub.name)
    return names


def _level_items(expr: ast.Expr, env: Env) -> list[tuple[object, str]]:
    items: list[tuple[object, str]] = []
    for name in sorted(collect_read_names(expr)):
        try:
            items.append((env.waitable(name), "level"))
        except EvalError:
            continue
    return items


def resolve_senslist(
    senslist: ast.SensList, env: Env, body: ast.Stmt | None = None
) -> list[tuple[object, str]]:
    """Turn a sensitivity list AST into concrete (waitable, edge) pairs."""
    items: list[tuple[object, str]] = []
    for item in senslist.items:
        if item.edge == "all":
            if body is not None:
                items.extend(_level_items(body, env))
            continue
        signal = item.signal
        if isinstance(signal, ast.Identifier):
            items.append((env.waitable(signal.name), item.edge))
        elif signal is not None:
            items.extend(_level_items(signal, env))
    if not items:
        raise EvalError("empty sensitivity list after resolution")
    return items


# ----------------------------------------------------------------------
# Process wrapper
# ----------------------------------------------------------------------


class Process:
    """Wraps a statement generator and drives it through the scheduler."""

    __slots__ = ("sim", "gen", "name", "_pending", "done")

    def __init__(self, sim: "Simulator", gen: StmtGen, name: str):
        self.sim = sim
        self.gen = gen
        self.name = name
        self._pending: list[tuple[object, Callable[[], None]]] = []
        self.done = False

    def start(self) -> None:
        """Schedule the first resumption at the current time."""
        self.sim.scheduler.schedule_active(self.resume)

    def resume(self) -> None:
        """Advance the generator to its next suspension and register it."""
        if self.done or self.sim.scheduler.finished:
            return
        try:
            suspend = next(self.gen)
        except StopIteration:
            self.done = True
            return
        except FinishRequest:
            self.done = True
            self.sim.scheduler.finish()
            return
        except DisableEscape:
            # Disabling an enclosing block that is not on this stack simply
            # terminates the process (matches VCS behaviour for our subset).
            self.done = True
            return
        except (EvalError, ValueError, OverflowError) as exc:
            # A runtime evaluation failure (including width-cap violations
            # from absurd mutants) kills only this process; the rest of the
            # design keeps running and the fitness function sees the
            # resulting wrong/missing outputs.
            self.done = True
            self.sim.note_error(f"{self.name}: {exc}")
            return
        if isinstance(suspend, DelaySuspend):
            if suspend.ticks == 0:
                self.sim.scheduler.schedule_inactive(self.resume)
            else:
                self.sim.scheduler.schedule_at(suspend.ticks, self.resume)
            return
        # Event suspension: register a one-shot waiter on every item; the
        # first to fire deregisters the rest.
        wake = self._make_waker()
        for waitable, edge in suspend.items:
            if isinstance(waitable, NamedEvent):
                waitable.add_waiter(wake)
            else:
                waitable.add_waiter(edge, wake)  # type: ignore[union-attr]
            self._pending.append((waitable, wake))

    def _make_waker(self) -> Callable[[], None]:
        fired = False

        def wake() -> None:
            nonlocal fired
            if fired:
                return
            fired = True
            for waitable, cb in self._pending:
                waitable.remove_waiter(cb)  # type: ignore[union-attr]
            self._pending.clear()
            self.resume()

        return wake


def always_process(sim: "Simulator", item: ast.Always, env: Env) -> Process:
    """Build the generator for an ``always`` construct."""

    def gen() -> StmtGen:
        if item.senslist is None:
            while True:
                env.sim.consume_step()
                yield from exec_stmt(item.body, env)
        else:
            while True:
                yield EventSuspend(resolve_senslist(item.senslist, env, item.body))
                yield from exec_stmt(item.body, env)

    return Process(sim, gen(), f"always@{env.instance.path}")


def initial_process(sim: "Simulator", item: ast.Initial, env: Env) -> Process:
    """Build the generator for an ``initial`` construct."""

    def gen() -> StmtGen:
        yield from exec_stmt(item.body, env)

    return Process(sim, gen(), f"initial@{env.instance.path}")
