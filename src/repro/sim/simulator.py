"""Top-level simulator API.

Typical use::

    from repro.hdl import parse
    from repro.sim import Simulator

    sim = Simulator(parse(verilog_text))
    result = sim.run(max_time=100_000)
    print(result.output)          # $display lines
    print(result.trace)           # $cirfix_record samples

The simulator replaces Synopsys VCS / Icarus Verilog in the original CirFix
pipeline: the repair loop only ever observes a design through ``result``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl import ast, parse
from .elaborate import ContAssign, ElaborationError, Elaborator
from .eval import EvalError, eval_expr
from .logic import Value
from .processes import (
    Env,
    FinishRequest,
    Process,
    SimulationBudget,
    StmtGen,
    always_process,
    initial_process,
)
from .runtime import Instance, Signal
from .scheduler import Scheduler
from .systasks import Monitor, display_text, system_function


@dataclass
class TraceRecord:
    """One ``$cirfix_record`` sample: the named values at a timestamp."""

    time: int
    values: dict[str, Value]


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    time: int
    finished: bool
    output: list[str] = field(default_factory=list)
    trace: list[TraceRecord] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    steps_used: int = 0
    #: Scheduler callbacks executed (active + NBA regions) — the cheap
    #: event-loop counter behind repro.obs's sim-events/sec metric.
    events_executed: int = 0
    #: Distinct simulation time slots advanced to.
    slots_advanced: int = 0

    @property
    def ok(self) -> bool:
        """True when the run hit ``$finish`` without runtime errors."""
        return self.finished and not self.errors


class SimulationError(Exception):
    """Raised when a design cannot be elaborated or crashes fatally."""


class Simulator:
    """Event-driven simulator for an elaborated design."""

    def __init__(
        self,
        source: ast.Source | str,
        top: str | None = None,
        max_steps: int = 5_000_000,
        seed: int = 0,
    ):
        if isinstance(source, str):
            source = parse(source)
        self.source = source
        self.scheduler = Scheduler()
        self.processes: list[Process] = []
        self.cont_assigns: list = []
        self.output: list[str] = []
        self.trace: list[TraceRecord] = []
        self.errors: list[str] = []
        self.monitors: list[Monitor] = []
        self._monitor_hooked = False
        self._max_steps = max_steps
        self._steps = 0
        self._rng_state = (seed * 2654435761 + 1) & 0xFFFFFFFF
        top_name = top or self._detect_top(source)
        try:
            self.top: Instance = Elaborator(self, source).elaborate(top_name)
        except (EvalError, ValueError, OverflowError, RecursionError) as exc:
            raise ElaborationError(str(exc)) from exc
        for assign in self.cont_assigns:
            assign.install()
        for process in self.processes:
            process.start()

    # ------------------------------------------------------------------
    # Behaviour factories (overridden by CompiledSimulator)
    # ------------------------------------------------------------------

    def make_always(self, item: ast.Always, env: Env) -> Process:
        """Build the process for an ``always`` construct."""
        return always_process(self, item, env)

    def make_initial(self, item: ast.Initial, env: Env) -> Process:
        """Build the process for an ``initial`` construct."""
        return initial_process(self, item, env)

    def make_cont_assign(
        self,
        lhs_env: Env,
        lhs: ast.Expr,
        rhs_env: Env,
        rhs: ast.Expr,
        delay: ast.Expr | None = None,
    ):
        """Build the driver for a continuous assign / port connection."""
        return ContAssign(self, lhs_env, lhs, rhs_env, rhs, delay)

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _detect_top(source: ast.Source) -> str:
        """Pick the module that nobody instantiates (prefer the last one)."""
        instantiated = {
            item.module_name
            for module in source.modules
            for item in module.items
            if isinstance(item, ast.Instance)
        }
        candidates = [m.name for m in source.modules if m.name not in instantiated]
        if not candidates:
            if not source.modules:
                raise ElaborationError("no modules in source")
            return source.modules[-1].name
        return candidates[-1]

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(self, max_time: int = 1_000_000) -> SimResult:
        """Run to ``$finish``, quiescence, or ``max_time``; never raises for
        in-simulation failures (they are reported in ``result.errors``)."""
        try:
            end_time = self.scheduler.run(max_time)
        except SimulationBudget:
            end_time = self.scheduler.time
            self.errors.append("statement budget exhausted (possible infinite loop)")
        except FinishRequest:
            end_time = self.scheduler.time
            self.scheduler.finished = True
        return SimResult(
            time=end_time,
            finished=self.scheduler.finished,
            output=self.output,
            trace=self.trace,
            errors=self.errors,
            steps_used=self._steps,
            events_executed=self.scheduler.events_executed,
            slots_advanced=self.scheduler.slots_advanced,
        )

    @property
    def steps_used(self) -> int:
        """Statements executed so far (readable even after a crash)."""
        return self._steps

    # ------------------------------------------------------------------
    # Hooks used by processes / elaboration
    # ------------------------------------------------------------------

    def consume_step(self) -> None:
        """Charge one statement against the runaway budget."""
        self._steps += 1
        if self._steps > self._max_steps:
            raise SimulationBudget(f"exceeded {self._max_steps} statements")

    def note_error(self, message: str) -> None:
        """Record a non-fatal runtime error (capped)."""
        if len(self.errors) < 100:
            self.errors.append(message)

    def emit_output(self, text: str) -> None:
        """Append a $display-style line to the output log (capped)."""
        if len(self.output) < 100_000:
            self.output.append(text)

    def next_random(self) -> int:
        """Deterministic 32-bit LCG step for $random."""
        self._rng_state = (self._rng_state * 1103515245 + 12345) & 0xFFFFFFFF
        return self._rng_state

    def system_function(self, name: str, args: list[Value]) -> Value:
        """Evaluate a system function call ($time, $random, ...)."""
        return system_function(self, name, args)

    def signal(self, path: str) -> Signal:
        """Look up a signal by hierarchical path relative to the top
        instance, e.g. ``"dut.counter_out"`` or just ``"clk"``."""
        parts = path.split(".")
        instance = self.top
        for part in parts[:-1]:
            child = instance.children.get(part)
            if child is None:
                raise KeyError(f"no instance {part!r} under {instance.path}")
            instance = child
        signal = instance.signals.get(parts[-1])
        if signal is None:
            raise KeyError(f"no signal {parts[-1]!r} in {instance.path}")
        return signal

    # ------------------------------------------------------------------
    # System tasks
    # ------------------------------------------------------------------

    def exec_systask(self, stmt: ast.SysTaskCall, env: Env) -> StmtGen:
        """Execute a system task (as a sub-generator of the calling process)."""
        name = stmt.name
        if name in ("$display", "$write"):
            try:
                text = display_text(stmt.args, env, self.scheduler.time)
            except EvalError as exc:
                self.note_error(f"{name}: {exc}")
                return
            self.emit_output(text)
            return
        if name == "$strobe":
            args = list(stmt.args)
            self.scheduler.schedule_at(
                0,
                lambda: self.emit_output(display_text(args, env, self.scheduler.time)),
                region="nba",
            )
            return
        if name == "$monitor":
            monitor = Monitor(list(stmt.args), env)
            self.monitors.append(monitor)
            if not self._monitor_hooked:
                self._monitor_hooked = True
                self.scheduler.add_postponed(self._sample_monitors)
            return
        if name in ("$finish", "$stop"):
            raise FinishRequest()
        if name == "$cirfix_record":
            self._schedule_record(stmt.args, env)
            return
        if name in ("$dumpfile", "$dumpvars", "$dumpon", "$dumpoff", "$timeformat"):
            return
        if name in ("$readmemh", "$readmemb"):
            self.note_error(f"{name} is not supported (preload memories in an initial block)")
            return
        if name == "$random":
            self.next_random()
            return
        self.note_error(f"unknown system task {name}")
        return
        yield  # pragma: no cover - makes this a generator function

    def _sample_monitors(self) -> None:
        for monitor in self.monitors:
            monitor.sample(self)

    def _schedule_record(self, args: list[ast.Expr], env: Env) -> None:
        """``$cirfix_record(sig, ...)``: sample at the end of this slot."""
        sample_time = self.scheduler.time

        def record() -> None:
            values: dict[str, Value] = {}
            for arg in args:
                label = _record_label(arg)
                try:
                    values[label] = eval_expr(arg, env)
                except EvalError:
                    values[label] = Value.unknown(1)
            self.trace.append(TraceRecord(sample_time, values))

        self.scheduler.schedule_postponed_once(record)


def _record_label(expr: ast.Expr) -> str:
    if isinstance(expr, ast.Identifier):
        return expr.name
    from ..hdl.codegen import generate

    return generate(expr)
