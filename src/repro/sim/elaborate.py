"""Design elaboration: AST module definitions → runtime instance tree.

Elaboration creates :class:`~repro.sim.runtime.Signal`/:class:`Memory`/
:class:`NamedEvent` objects for declarations, resolves parameters (with
instantiation overrides), wires up port connections as continuous
assignments, and registers processes for ``always``/``initial`` constructs
and continuous ``assign`` items.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..hdl import ast
from .eval import EvalError, eval_expr
from .logic import Value
from .processes import Env, apply_to_setters
from .runtime import Instance, Memory, NamedEvent, Signal

if TYPE_CHECKING:  # pragma: no cover
    from .simulator import Simulator


class ElaborationError(Exception):
    """Raised when the design cannot be elaborated (bad mutant, missing
    module, non-constant range, unsupported construct)."""


_MAX_SIGNAL_WIDTH = 1 << 16
_MAX_MEMORY_WORDS = 1 << 22


class ContAssign:
    """A continuous assignment (or port connection) driver.

    LHS and RHS may live in different instances (port connections), so each
    side carries its own environment.
    """

    __slots__ = ("sim", "lhs_env", "lhs", "rhs_env", "rhs", "delay")

    def __init__(
        self,
        sim: "Simulator",
        lhs_env: Env,
        lhs: ast.Expr,
        rhs_env: Env,
        rhs: ast.Expr,
        delay: ast.Expr | None = None,
    ):
        self.sim = sim
        self.lhs_env = lhs_env
        self.lhs = lhs
        self.rhs_env = rhs_env
        self.rhs = rhs
        self.delay = delay

    def install(self) -> None:
        """Subscribe to RHS fan-in and schedule the initial evaluation."""
        from .processes import collect_read_names

        for name in collect_read_names(self.rhs):
            target = self.rhs_env.instance.lookup(name)
            if isinstance(target, (Signal, Memory)):
                target.subscribe(self.update)
        self.sim.scheduler.schedule_active(self.update)

    def update(self) -> None:
        # Combinational feedback loops (``assign a = !a`` in a mutant) must
        # hit the statement budget rather than spin the scheduler forever.
        """Re-evaluate the RHS and drive the LHS (with optional delay)."""
        self.sim.consume_step()
        try:
            width = self.lhs_env.lhs_width(self.lhs)
            value = eval_expr(self.rhs, self.rhs_env, ctx_width=width)
        except (EvalError, ValueError, OverflowError) as exc:
            self.sim.note_error(f"continuous assign: {exc}")
            return
        if self.delay is not None:
            try:
                ticks = eval_expr(self.delay, self.rhs_env).to_int()
            except EvalError:
                ticks = 0
            if ticks > 0:
                self.sim.scheduler.schedule_at(ticks, lambda: self._apply(value))
                return
        self._apply(value)

    def _apply(self, value: Value) -> None:
        try:
            apply_to_setters(self.lhs_env.resolve_lvalue(self.lhs), value)
        except (EvalError, ValueError, OverflowError) as exc:
            self.sim.note_error(f"continuous assign target: {exc}")


class _ConstScope:
    """Minimal EvalScope over an instance's parameters (for ranges)."""

    def __init__(self, instance: Instance):
        self._instance = instance

    def read(self, name: str) -> Value:
        value = self._instance.params.get(name)
        if value is None:
            raise EvalError(f"non-constant name {name!r} in constant expression")
        return value

    def read_word(self, name: str, index: int) -> Value:
        raise EvalError("memory access in constant expression")

    def is_memory(self, name: str) -> bool:
        return False

    def call_function(self, name: str, args: list[Value]) -> Value:
        raise EvalError("function call in constant expression")

    def system_function(self, name: str, args: list[Value]) -> Value:
        if name == "$clog2" and len(args) == 1:
            n = args[0].to_int()
            bits = 0
            while (1 << bits) < n:
                bits += 1
            return Value.from_int(bits, 32)
        raise EvalError(f"system function {name} in constant expression")


def _const_int(expr: ast.Expr, instance: Instance) -> int:
    value = eval_expr(expr, _ConstScope(instance))
    if not value.is_fully_defined:
        raise ElaborationError("range/parameter expression is x/z")
    return value.to_int() if value.signed else value.aval


class Elaborator:
    """Builds the instance tree and registers runtime behaviour."""

    def __init__(self, sim: "Simulator", source: ast.Source):
        self.sim = sim
        self.source = source
        self.modules = {m.name: m for m in source.modules}

    def elaborate(self, top_name: str) -> Instance:
        """Elaborate ``top_name`` and return the root instance."""
        module = self.modules.get(top_name)
        if module is None:
            raise ElaborationError(f"top module {top_name!r} not found")
        return self._instantiate(top_name, module, None, {})

    # ------------------------------------------------------------------

    def _instantiate(
        self,
        inst_name: str,
        module: ast.ModuleDef,
        parent: Instance | None,
        param_overrides: dict[str, Value],
    ) -> Instance:
        instance = Instance(inst_name, module, parent)

        # Pass 1: parameters (in declaration order, overrides applied).
        for item in module.items:
            if isinstance(item, ast.Decl) and item.kind in ("parameter", "localparam"):
                if item.kind == "parameter" and item.name in param_overrides:
                    instance.params[item.name] = param_overrides[item.name]
                else:
                    if item.init is None:
                        raise ElaborationError(f"parameter {item.name} has no value")
                    value = eval_expr(item.init, _ConstScope(instance))
                    if item.msb is not None:
                        width = self._range_width(item, instance)
                        value = value.resized(width)
                    instance.params[item.name] = value

        # Pass 2: signals, memories, events.
        for item in module.items:
            if isinstance(item, ast.Decl):
                self._elaborate_decl(item, instance)
            elif isinstance(item, ast.FunctionDef):
                instance.functions[item.name] = item
            elif isinstance(item, ast.TaskDef):
                instance.tasks[item.name] = item

        # Pass 3: behaviour (assigns, processes, child instances).
        env = Env(self.sim, instance)
        for item in module.items:
            if isinstance(item, ast.ContinuousAssign):
                assign = self.sim.make_cont_assign(env, item.lhs, env, item.rhs, item.delay)
                self.sim.cont_assigns.append(assign)
            elif isinstance(item, ast.Always):
                self.sim.processes.append(self.sim.make_always(item, env))
            elif isinstance(item, ast.Initial):
                self.sim.processes.append(self.sim.make_initial(item, env))
            elif isinstance(item, ast.Instance):
                self._elaborate_child(item, instance, env)

        # Declaration initialisers (``reg r = 0;``) apply at time zero.
        for item in module.items:
            if (
                isinstance(item, ast.Decl)
                and item.init is not None
                and item.kind not in ("parameter", "localparam")
            ):
                signal = instance.signals.get(item.name)
                if signal is not None:
                    value = eval_expr(item.init, _ConstScope(instance))
                    self.sim.scheduler.schedule_active(
                        lambda s=signal, v=value: s.set_value(v, self.sim)
                    )
        return instance

    def _range_width(self, decl: ast.Decl, instance: Instance) -> int:
        if decl.msb is None:
            return 1
        msb = _const_int(decl.msb, instance)
        lsb = _const_int(decl.lsb, instance)
        width = abs(msb - lsb) + 1
        if width > _MAX_SIGNAL_WIDTH:
            raise ElaborationError(f"width {width} of {decl.name} too large")
        return width

    def _elaborate_decl(self, decl: ast.Decl, instance: Instance) -> None:
        kind = decl.kind
        if kind in ("parameter", "localparam", "genvar"):
            return
        if kind == "event":
            instance.events[decl.name] = NamedEvent(decl.name)
            return
        if kind in ("input", "output", "inout"):
            instance.port_directions[decl.name] = kind
        width = 32 if kind == "integer" else 64 if kind == "time" else self._range_width(decl, instance)
        signed = decl.signed or kind == "integer"

        if decl.array_msb is not None:
            lo = _const_int(decl.array_lsb, instance)
            hi = _const_int(decl.array_msb, instance)
            if abs(hi - lo) + 1 > _MAX_MEMORY_WORDS:
                raise ElaborationError(f"memory {decl.name} too large")
            instance.memories[decl.name] = Memory(decl.name, width, lo, hi, signed)
            return

        signal_kind = "wire"
        if kind in ("reg", "integer", "time") or decl.reg_flag:
            signal_kind = "reg"
        existing = instance.signals.get(decl.name)
        if existing is not None:
            # Classic two-decl style: ``output [3:0] q;`` + ``reg [3:0] q;``.
            if signal_kind == "reg":
                existing.kind = "reg"
                existing.value = Value.unknown(existing.width)
            if width > existing.width:
                existing.width = width
                existing.value = (
                    Value.unknown(width) if existing.kind == "reg" else Value.high_z(width)
                )
            if signed:
                existing.signed = True
            return
        if kind in ("wire", "tri", "supply0", "supply1") and not decl.reg_flag:
            signal_kind = "wire"
        signal = Signal(decl.name, width, signal_kind, signed)
        if kind == "supply1":
            signal.value = Value.from_int((1 << width) - 1, width)
        elif kind == "supply0":
            signal.value = Value.from_int(0, width)
        instance.signals[decl.name] = signal

    def _elaborate_child(self, item: ast.Instance, parent: Instance, parent_env: Env) -> None:
        module = self.modules.get(item.module_name)
        if module is None:
            raise ElaborationError(f"module {item.module_name!r} not found")

        # Resolve parameter overrides in the parent's constant scope.
        overrides: dict[str, Value] = {}
        param_names = [
            d.name
            for d in module.items
            if isinstance(d, ast.Decl) and d.kind == "parameter"
        ]
        for position, arg in enumerate(item.params):
            value = eval_expr(arg.expr, _ConstScope(parent))
            if arg.name is not None:
                overrides[arg.name] = value
            elif position < len(param_names):
                overrides[param_names[position]] = value

        child = self._instantiate(item.name, module, parent, overrides)
        parent.children[item.name] = child
        child_env = Env(self.sim, child)

        # Map connections to port names.
        connections: list[tuple[str, ast.Expr | None]] = []
        if any(arg.name is not None for arg in item.ports):
            for arg in item.ports:
                if arg.name is None:
                    raise ElaborationError("mixed named/positional connections")
                connections.append((arg.name, arg.expr))
        else:
            if len(item.ports) > len(module.port_names):
                raise ElaborationError(
                    f"too many connections for {item.module_name} {item.name}"
                )
            for port_name, arg in zip(module.port_names, item.ports):
                connections.append((port_name, arg.expr))

        for port_name, expr in connections:
            if expr is None:
                continue
            direction = child.port_directions.get(port_name)
            if direction is None:
                raise ElaborationError(
                    f"{item.module_name} has no port {port_name!r}"
                )
            port_ident = ast.Identifier(port_name)
            if direction == "input":
                assign = self.sim.make_cont_assign(child_env, port_ident, parent_env, expr)
            elif direction == "output":
                assign = self.sim.make_cont_assign(parent_env, expr, child_env, port_ident)
            else:
                raise ElaborationError("inout ports are not supported")
            self.sim.cont_assigns.append(assign)
