"""Value-change-dump (VCD) writer.

An optional observability extension: attach a :class:`VcdWriter` to a
simulator and every signal change in the watched instance subtree is
recorded in standard IEEE-1364 VCD format, viewable in GTKWave & friends::

    sim = Simulator(parse(source))
    vcd = VcdWriter.attach(sim, timescale="1ns")
    sim.run(10_000)
    Path("wave.vcd").write_text(vcd.render())
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .logic import Value
from .runtime import Instance, Signal

if TYPE_CHECKING:  # pragma: no cover
    from .simulator import Simulator

#: Printable characters usable as VCD identifier codes.
_ID_ALPHABET = "".join(chr(c) for c in range(33, 127))


def _id_code(index: int) -> str:
    """Map an integer to a short VCD identifier (base-94)."""
    code = ""
    index += 1
    while index:
        index, digit = divmod(index - 1, len(_ID_ALPHABET))
        code = _ID_ALPHABET[digit] + code
    return code


class VcdWriter:
    """Collects value changes and renders a VCD document."""

    def __init__(self, timescale: str = "1ns"):
        self.timescale = timescale
        #: (signal, hierarchical scope path, id code)
        self._signals: list[tuple[Signal, tuple[str, ...], str]] = []
        #: time → list of (id code, value)
        self._changes: dict[int, list[tuple[str, Value]]] = {}
        self._initial: dict[str, Value] = {}

    @classmethod
    def attach(cls, sim: "Simulator", timescale: str = "1ns") -> "VcdWriter":
        """Subscribe to every signal under the simulator's top instance."""
        writer = cls(timescale)
        writer._walk(sim, sim.top, ())
        return writer

    def _walk(self, sim: "Simulator", instance: Instance, path: tuple[str, ...]) -> None:
        scope = path + (instance.name,)
        for signal in instance.signals.values():
            code = _id_code(len(self._signals))
            self._signals.append((signal, scope, code))
            self._initial[code] = signal.value
            signal.subscribe(self._make_probe(sim, signal, code))
        for child in instance.children.values():
            self._walk(sim, child, scope)

    def _make_probe(self, sim: "Simulator", signal: Signal, code: str):
        def probe() -> None:
            self._changes.setdefault(sim.scheduler.time, []).append((code, signal.value))

        return probe

    @staticmethod
    def _format_value(value: Value, code: str) -> str:
        if value.width == 1:
            return f"{value.to_bit_string()}{code}"
        return f"b{value.to_bit_string()} {code}"

    def render(self) -> str:
        """Produce the VCD text."""
        lines = [
            "$date reproduced-cirfix $end",
            "$version repro.sim.vcd $end",
            f"$timescale {self.timescale} $end",
        ]
        # Group signals by scope, emitting nested scope blocks.
        open_scope: tuple[str, ...] = ()
        for signal, scope, code in sorted(self._signals, key=lambda t: t[1]):
            while open_scope and open_scope != scope[: len(open_scope)]:
                lines.append("$upscope $end")
                open_scope = open_scope[:-1]
            while open_scope != scope:
                lines.append(f"$scope module {scope[len(open_scope)]} $end")
                open_scope = open_scope + (scope[len(open_scope)],)
            lines.append(f"$var wire {signal.width} {code} {signal.name} $end")
        while open_scope:
            lines.append("$upscope $end")
            open_scope = open_scope[:-1]
        lines.append("$enddefinitions $end")
        lines.append("$dumpvars")
        for _, _, code in self._signals:
            lines.append(self._format_value(self._initial[code], code))
        lines.append("$end")
        for time in sorted(self._changes):
            lines.append(f"#{time}")
            # Only the final value per (time, code) survives a delta cycle.
            last: dict[str, Value] = {}
            for code, value in self._changes[time]:
                last[code] = value
            for code, value in last.items():
                lines.append(self._format_value(value, code))
        return "\n".join(lines) + "\n"
