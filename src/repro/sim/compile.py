"""Ahead-of-time specialization of elaborated behaviour into closures.

The interpreter in :mod:`repro.sim.eval` / :mod:`repro.sim.processes`
re-dispatches on AST node types, re-resolves names through ``Env`` dict
lookups, recomputes lvalue widths, and rebuilds sensitivity lists on every
execution.  For the repair loop — which simulates thousands of mostly
identical candidates — that per-execution work dominates wall-clock.

This module compiles each process / continuous assignment **once** into
straight-line Python closures:

- expressions become ``fn(S) -> Value`` closures with the operator chosen
  at compile time and the assignment context width folded in as a constant;
- identifiers become list-index loads from a per-instance slot vector ``S``
  (``S[0]`` is the simulator, ``S[1]`` the instance's fallback ``Env``,
  the rest are ``Signal``/``Memory``/``NamedEvent`` objects or pre-resolved
  sensitivity item lists);
- statements without time controls become plain ``run(S)`` closures (no
  generator frames at all); suspending statements compile to generators
  that yield the same :class:`DelaySuspend`/:class:`EventSuspend` records
  the interpreter yields;
- sensitivity lists are resolved once at bind time instead of once per
  ``always`` iteration;
- lvalue widths and constant part-select bounds are folded at compile time.

Compiled closures run against the *same* runtime (``Scheduler``,
``Signal``, ``Memory``, ``Process``), so scheduler telemetry counters,
``$display`` output, trace records, and error strings are bit-identical to
the interpreter.  Anything the compiler does not specialize falls back to
the interpreter at the finest safe granularity: per-expression
(``eval_expr`` against the fallback ``Env``) or per-statement
(``yield from exec_stmt``) — the fallback *is* the interpreter, operating
on the same runtime objects, so parity is by construction.

Templates are cached per ``(module item, parameter signature)``.  Callers
evaluating many candidates against one persistent testbench pass a shared
cache (see :func:`repro.core.backend.evaluate_design_text`) so the
testbench half of every simulation is compiled once per worker process.
"""

from __future__ import annotations

from typing import Callable

from ..hdl import ast
from .elaborate import ContAssign
from .eval import EvalError, _bitwise, _reduction, eval_expr
from .logic import Value, truthiness
from .processes import (
    DelaySuspend,
    DisableEscape,
    EventSuspend,
    Process,
    _case_match,
    always_process,
    collect_read_names,
    exec_stmt,
    initial_process,
)
from .runtime import Instance, Memory, NamedEvent, Signal
from .simulator import Simulator

#: Shared 1-bit constants (values are immutable, sharing is safe).
_V_TRUE = Value(1, 1)
_V_FALSE = Value(1, 0)
_V_X = Value(1, 1, 1)


class _Uncompilable(Exception):
    """Internal: this construct needs the interpreter fallback."""


def _raiser(message: str) -> Callable:
    """An expression closure that raises ``EvalError(message)``."""

    def fn(S):
        raise EvalError(message)

    return fn


# ----------------------------------------------------------------------
# Compile-time scope: name -> slot / static metadata
# ----------------------------------------------------------------------


class _Scope:
    """Static name resolution for one module template.

    Resolution is done against an *exemplar* elaborated instance; any
    instance of the same module with the same parameter values yields
    identical metadata (elaboration is a deterministic function of the
    module AST and its parameters), which is what makes template sharing
    across instances and across candidate simulations sound.
    """

    def __init__(self, instance: Instance):
        self.instance = instance
        #: Slot specs beyond the two fixed slots: ("obj", name) resolves to
        #: ``instance.lookup(name)``; ("items", ((name, edge), ...)) to a
        #: pre-built sensitivity list.
        self.slot_specs: list[tuple] = []
        self._index: dict[tuple, int] = {}

    def _alloc(self, spec: tuple) -> int:
        idx = self._index.get(spec)
        if idx is None:
            idx = len(self.slot_specs) + 2  # S[0]=sim, S[1]=env
            self._index[spec] = idx
            self.slot_specs.append(spec)
        return idx

    def obj_slot(self, name: str) -> int:
        return self._alloc(("obj", name))

    def items_slot(self, entries: tuple[tuple[str, str], ...]) -> int:
        return self._alloc(("items", entries))

    # -- static classification ------------------------------------------

    def kind_of(self, name: str):
        inst = self.instance
        if name in inst.signals:
            return ("signal", inst.signals[name])
        if name in inst.memories:
            return ("memory", inst.memories[name])
        if name in inst.events:
            return ("event", inst.events[name])
        if name in inst.params:
            return ("param", inst.params[name])
        return None

    def is_memory(self, name: str) -> bool:
        return name in self.instance.memories

    def static_int(self, expr: ast.Expr) -> int | None:
        """Fold ``expr`` to a plain int when it is a defined literal or a
        parameter of this instance; None otherwise."""
        if isinstance(expr, ast.Number):
            if expr.bval:
                return None
            width = expr.width if expr.width is not None else 32
            return Value(width, expr.aval, expr.bval, expr.signed).to_int()
        if isinstance(expr, ast.Identifier):
            kind = self.kind_of(expr.name)
            if kind is not None and kind[0] == "param":
                value = kind[1]
                if value.is_fully_defined:
                    return value.to_int()
        return None


def _bind_slots(slot_specs: list[tuple], sim: Simulator, env) -> list:
    """Build the runtime slot vector for one instance."""
    inst = env.instance
    lookup = inst.lookup
    S: list = [sim, env]
    for kind, payload in slot_specs:
        if kind == "obj":
            S.append(lookup(payload))
        else:  # "items"
            S.append([(lookup(name), edge) for name, edge in payload])
    return S


# ----------------------------------------------------------------------
# Expression compilation
# ----------------------------------------------------------------------


def _compile_expr(expr: ast.Expr, sc: _Scope, ctx: int | None) -> Callable:
    """Compile ``expr`` to ``fn(S) -> Value``, mirroring ``eval_expr``
    with the context width folded in.  Unsupported nodes fall back to the
    interpreter per-expression (exact semantics, just slower)."""
    try:
        return _compile_expr_strict(expr, sc, ctx)
    except _Uncompilable:
        return lambda S, _e=expr, _c=ctx: eval_expr(_e, S[1], _c)
    except RecursionError:
        raise
    except Exception:
        return lambda S, _e=expr, _c=ctx: eval_expr(_e, S[1], _c)


def _compile_expr_strict(expr: ast.Expr, sc: _Scope, ctx: int | None) -> Callable:
    if isinstance(expr, ast.Number):
        width = expr.width if expr.width is not None else 32
        v = Value(width, expr.aval, expr.bval, expr.signed)
        return lambda S: v
    if isinstance(expr, ast.RealNumber):
        v = Value.from_int(int(expr.value), 64)
        return lambda S: v
    if isinstance(expr, ast.StringConst):
        data = expr.text.encode("ascii", errors="replace")
        width = max(8 * len(data), 8)
        v = Value(width, int.from_bytes(data, "big") if data else 0)
        return lambda S: v
    if isinstance(expr, ast.Identifier):
        return _compile_identifier(expr.name, sc)
    if isinstance(expr, ast.UnaryOp):
        return _compile_unary(expr, sc, ctx)
    if isinstance(expr, ast.BinaryOp):
        return _compile_binary(expr, sc, ctx)
    if isinstance(expr, ast.Ternary):
        return _compile_ternary(expr, sc, ctx)
    if isinstance(expr, ast.Index):
        return _compile_index(expr, sc)
    if isinstance(expr, ast.PartSelect):
        return _compile_partselect(expr, sc)
    if isinstance(expr, ast.Concat):
        return _compile_concat(expr, sc)
    if isinstance(expr, ast.Repeat_):
        return _compile_repeat(expr, sc)
    if isinstance(expr, ast.FunctionCall):
        return _compile_call(expr, sc)
    raise _Uncompilable(type(expr).__name__)


def _compile_identifier(name: str, sc: _Scope) -> Callable:
    kind = sc.kind_of(name)
    if kind is None:
        # Same message Env.read raises, with the per-instance path read at
        # runtime so shared templates report the right hierarchy.
        def fn(S, _n=name):
            raise EvalError(f"unknown identifier {_n!r} in {S[1].instance.path}")

        return fn
    tag, obj = kind
    if tag == "signal":
        slot = sc.obj_slot(name)
        return lambda S, _i=slot: S[_i].value
    if tag == "param":
        return lambda S, _v=obj: _v
    if tag == "memory":
        return _raiser(f"memory {name!r} read without an index")
    return _raiser(f"named event {name!r} used as a value")


def _compile_unary(expr: ast.UnaryOp, sc: _Scope, ctx: int | None) -> Callable:
    op = expr.op
    if op in ("+", "-"):
        ofn = _compile_expr(expr.operand, sc, ctx)
        ctx0 = ctx or 0
        negate = op == "-"

        def fn(S):
            operand = ofn(S)
            width = operand.width if operand.width >= ctx0 else ctx0
            operand = operand.resized(width)
            if operand.bval:
                return Value.unknown(width)
            if negate:
                return Value.from_int(-operand.aval, width, operand.signed)
            return operand

        return fn
    ofn = _compile_expr(expr.operand, sc, None)
    if op == "!":

        def fn(S):
            state = truthiness(ofn(S))
            if state == "x":
                return _V_X
            return _V_FALSE if state == "true" else _V_TRUE

        return fn
    if op == "~":

        def fn(S):
            operand = ofn(S)
            aval = (~operand.aval) & ((1 << operand.width) - 1)
            aval |= operand.bval
            return Value(operand.width, aval, operand.bval)

        return fn
    if op in ("&", "|", "^", "~&", "~|", "~^", "^~"):
        return lambda S, _op=op: _reduction(_op, ofn(S))
    return _raiser(f"unknown unary operator {op!r}")


_ARITH_OPS = frozenset({"+", "-", "*", "/", "%", "**"})
_BITWISE_OPS = frozenset({"&", "|", "^", "^~", "~^"})
_COMPARE_FNS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}
_SHIFT_OPS = frozenset({"<<", ">>", "<<<", ">>>"})


def _compile_binary(expr: ast.BinaryOp, sc: _Scope, ctx: int | None) -> Callable:
    op = expr.op
    if op in ("&&", "||"):
        lfn = _compile_expr(expr.left, sc, None)
        rfn = _compile_expr(expr.right, sc, None)
        conj = op == "&&"

        def fn(S):
            left = truthiness(lfn(S))
            right = truthiness(rfn(S))
            if conj:
                if left == "false" or right == "false":
                    return _V_FALSE
                if left == "true" and right == "true":
                    return _V_TRUE
                return _V_X
            if left == "true" or right == "true":
                return _V_TRUE
            if left == "false" and right == "false":
                return _V_FALSE
            return _V_X

        return fn

    if op in _SHIFT_OPS:
        lfn = _compile_expr(expr.left, sc, ctx)
        rfn = _compile_expr(expr.right, sc, None)
        ctx0 = ctx or 0

        def fn(S, _op=op):
            left = lfn(S)
            width = left.width if left.width >= ctx0 else ctx0
            left = left.resized(width)
            amount = rfn(S)
            if amount.bval:
                return Value.unknown(width)
            shift = amount.to_int()
            if shift < 0 or shift > 1 << 16:
                return Value.unknown(width)
            if _op in ("<<", "<<<"):
                return Value(width, left.aval << shift, left.bval << shift, left.signed)
            if _op == ">>" or not left.signed:
                return Value(width, left.aval >> shift, left.bval >> shift, left.signed)
            if left.bval:
                return Value.unknown(width)
            return Value.from_int(left.to_signed_int() >> shift, width, True)

        return fn

    operand_ctx = ctx if op in _ARITH_OPS or op in _BITWISE_OPS else None
    lfn = _compile_expr(expr.left, sc, operand_ctx)
    rfn = _compile_expr(expr.right, sc, operand_ctx)

    if op in ("===", "!=="):
        want = op == "==="
        return lambda S: Value(1, int(lfn(S).same_state(rfn(S)) is want))

    if op in _COMPARE_FNS:
        cmp = _COMPARE_FNS[op]

        def fn(S):
            left = lfn(S)
            right = rfn(S)
            if left.bval or right.bval:
                return _V_X
            if left.signed and right.signed:
                return Value(1, int(cmp(left.to_signed_int(), right.to_signed_int())))
            return Value(1, int(cmp(left.aval, right.aval)))

        return fn

    ctx0 = ctx or 0
    if op in _BITWISE_OPS:

        def fn(S, _op=op):
            left = lfn(S)
            right = rfn(S)
            width = max(left.width, right.width, ctx0)
            return _bitwise(_op, left.resized(width), right.resized(width), width)

        return fn

    if op in _ARITH_OPS:

        def fn(S, _op=op):
            left = lfn(S)
            right = rfn(S)
            width = max(left.width, right.width, ctx0)
            signed = left.signed and right.signed
            left = left.resized(width)
            right = right.resized(width)
            if left.bval or right.bval:
                return Value.unknown(width)
            lv = left.to_signed_int() if signed else left.aval
            rv = right.to_signed_int() if signed else right.aval
            if _op == "+":
                return Value.from_int(lv + rv, width, signed)
            if _op == "-":
                return Value.from_int(lv - rv, width, signed)
            if _op == "*":
                return Value.from_int(lv * rv, width, signed)
            if _op == "/":
                if rv == 0:
                    return Value.unknown(width)
                quotient = abs(lv) // abs(rv)
                if (lv < 0) != (rv < 0):
                    quotient = -quotient
                return Value.from_int(quotient, width, signed)
            if _op == "%":
                if rv == 0:
                    return Value.unknown(width)
                remainder = abs(lv) % abs(rv)
                if lv < 0:
                    remainder = -remainder
                return Value.from_int(remainder, width, signed)
            # **
            if rv < 0 or rv > 64:
                return Value.unknown(width)
            return Value.from_int(lv**rv, width, signed)

        return fn

    return _raiser(f"unknown binary operator {op!r}")


def _compile_ternary(expr: ast.Ternary, sc: _Scope, ctx: int | None) -> Callable:
    cfn = _compile_expr(expr.cond, sc, None)
    tfn = _compile_expr(expr.true_expr, sc, ctx)
    ffn = _compile_expr(expr.false_expr, sc, ctx)

    def fn(S):
        cond = truthiness(cfn(S))
        if cond == "true":
            return tfn(S)
        if cond == "false":
            return ffn(S)
        true_val = tfn(S)
        false_val = ffn(S)
        width = max(true_val.width, false_val.width)
        true_val = true_val.resized(width)
        false_val = false_val.resized(width)
        mask = (1 << width) - 1
        agree = (
            ~(true_val.aval ^ false_val.aval)
            & ~(true_val.bval | false_val.bval)
            & mask
        )
        aval = (true_val.aval & agree) | (mask & ~agree)
        return Value(width, aval, mask & ~agree)

    return fn


def _compile_index(expr: ast.Index, sc: _Scope) -> Callable:
    ifn = _compile_expr(expr.index, sc, None)
    if isinstance(expr.target, ast.Identifier) and sc.is_memory(expr.target.name):
        name = expr.target.name
        slot = sc.obj_slot(name)

        def fn(S):
            index = ifn(S)
            if index.bval:
                raise EvalError(f"memory index for {name} is x/z")
            return S[slot].read(index.to_int())

        return fn
    tfn = _compile_expr(expr.target, sc, None)

    def fn(S):
        index = ifn(S)
        target = tfn(S)
        if index.bval:
            return Value.unknown(1)
        return target.select_bit(index.to_int())

    return fn


def _compile_partselect(expr: ast.PartSelect, sc: _Scope) -> Callable:
    tfn = _compile_expr(expr.target, sc, None)
    mfn = _compile_expr(expr.msb, sc, None)
    lfn = _compile_expr(expr.lsb, sc, None)

    def fn(S):
        target = tfn(S)
        msb = mfn(S)
        lsb = lfn(S)
        if msb.bval or lsb.bval:
            return Value.unknown(max(target.width, 1))
        return target.select_range(msb.to_int(), lsb.to_int())

    return fn


def _compile_concat(expr: ast.Concat, sc: _Scope) -> Callable:
    if not expr.parts:
        return _raiser("empty concatenation")
    fns = [_compile_expr(p, sc, None) for p in expr.parts]
    if len(fns) == 1:
        return fns[0]
    head, rest = fns[0], tuple(fns[1:])

    def fn(S):
        result = head(S)
        for part in rest:
            result = result.concat(part(S))
        return result

    return fn


def _compile_repeat(expr: ast.Repeat_, sc: _Scope) -> Callable:
    cfn = _compile_expr(expr.count, sc, None)
    vfn = _compile_expr(expr.value, sc, None)

    def fn(S):
        count = cfn(S)
        if count.bval:
            raise EvalError("replication count is x/z")
        value = vfn(S)
        n = count.to_int()
        if n <= 0 or n > 4096:
            raise EvalError(f"bad replication count {n}")
        result = value
        for _ in range(n - 1):
            result = result.concat(value)
        return result

    return fn


def _compile_call(expr: ast.FunctionCall, sc: _Scope) -> Callable:
    afns = tuple(_compile_expr(a, sc, None) for a in expr.args)
    name = expr.name
    if name.startswith("$"):
        return lambda S: S[0].system_function(name, [a(S) for a in afns])
    # User functions run through the interpreter (run_function) via the
    # fallback Env — identical semantics including the statement budget.
    return lambda S: S[1].call_function(name, [a(S) for a in afns])


# ----------------------------------------------------------------------
# Lvalue compilation
# ----------------------------------------------------------------------


def _noop() -> None:
    return None


class _LValue:
    """A compiled lvalue with a statically known width.

    ``assign(S, value)`` performs a blocking-style immediate assignment;
    ``make_nba(S, value)`` resolves indices *now* (IEEE non-blocking
    semantics) and returns the callback to schedule in the NBA region.
    """

    __slots__ = ("width", "assign", "make_nba")

    def __init__(self, width: int, assign: Callable, make_nba: Callable):
        self.width = width
        self.assign = assign
        self.make_nba = make_nba


def _bad_lvalue(width: int, assign: Callable) -> _LValue:
    """An lvalue whose resolution always fails at runtime.

    The interpreter computes ``lhs_width`` (which does not raise), then
    evaluates the RHS, and only raises inside ``resolve_lvalue`` — so the
    raising closure sits in the assign/make_nba position to preserve the
    side-effect order exactly."""
    return _LValue(width, assign, lambda S, v: assign(S, v))


def _compile_lvalue(lhs: ast.Expr, sc: _Scope) -> _LValue | None:
    """Compile an lvalue; None means the enclosing statement must fall
    back to the interpreter (dynamic width)."""
    if isinstance(lhs, ast.Identifier):
        name = lhs.name
        kind = sc.kind_of(name)
        if kind is not None and kind[0] == "signal":
            slot = sc.obj_slot(name)
            width = kind[1].width

            def assign(S, v, _i=slot):
                S[_i].set_value(v, S[0])

            def make_nba(S, v, _i=slot):
                sig = S[_i]
                sim = S[0]
                return lambda: sig.set_value(v, sim)

            return _LValue(width, assign, make_nba)
        # Matches Env.lhs_width for non-signal identifiers, then the
        # resolve_lvalue error (with the runtime instance path).
        width = kind[1].word_width if kind is not None and kind[0] == "memory" else 32

        def raise_assign(S, v, _n=name):
            raise EvalError(f"cannot assign to {_n!r} in {S[1].instance.path}")

        return _bad_lvalue(width, raise_assign)

    if isinstance(lhs, ast.Index):
        if isinstance(lhs.target, ast.Identifier) and sc.is_memory(lhs.target.name):
            memory = sc.kind_of(lhs.target.name)[1]
            slot = sc.obj_slot(lhs.target.name)
            ifn = _compile_expr(lhs.index, sc, None)

            def assign(S, v):
                index = ifn(S)
                if index.bval:
                    return
                S[slot].write(index.to_int(), v, S[0])

            def make_nba(S, v):
                index = ifn(S)
                if index.bval:
                    return _noop
                i = index.to_int()
                mem = S[slot]
                sim = S[0]
                return lambda: mem.write(i, v, sim)

            return _LValue(memory.word_width, assign, make_nba)
        return _compile_bits_lvalue(lhs.target, sc, index=lhs.index)

    if isinstance(lhs, ast.PartSelect):
        hi = sc.static_int(lhs.msb)
        lo = sc.static_int(lhs.lsb)
        if hi is None or lo is None:
            return None  # dynamic width: whole statement falls back
        if hi < lo:
            hi, lo = lo, hi
        return _compile_bits_lvalue(lhs.target, sc, bounds=(hi, lo))

    if isinstance(lhs, ast.Concat):
        parts = []
        for part in lhs.parts:
            # Only plain identifier parts: anything with an index would
            # evaluate it at a different point than resolve_lvalue does.
            if not isinstance(part, ast.Identifier):
                return None
            sub = _compile_lvalue(part, sc)
            if sub is None:
                return None
            parts.append(sub)
        if not parts:
            return None
        total = sum(p.width for p in parts)
        spans = []
        offset = total
        for p in parts:
            offset -= p.width
            spans.append((p, offset + p.width - 1, offset))
        spans = tuple(spans)

        def assign(S, v):
            v = v.resized(total)
            for part, msb, lsb in spans:
                part.assign(S, v.select_range(msb, lsb))

        def make_nba(S, v):
            v = v.resized(total)
            callbacks = [
                part.make_nba(S, v.select_range(msb, lsb))
                for part, msb, lsb in spans
            ]

            def apply() -> None:
                for cb in callbacks:
                    cb()

            return apply

        return _LValue(total, assign, make_nba)

    return None


def _compile_bits_lvalue(
    target: ast.Expr,
    sc: _Scope,
    index: ast.Expr | None = None,
    bounds: tuple[int, int] | None = None,
) -> _LValue:
    """Bit-select (``index``) or constant part-select (``bounds``) lvalue.

    Mirrors ``Env._signal_bits_setter`` including its error messages and
    the order in which it raises (before the index is evaluated)."""
    width = 1 if bounds is None else bounds[0] - bounds[1] + 1
    if not isinstance(target, ast.Identifier):
        def raise_assign(S, v):
            raise EvalError("bit/part select target must be a simple name")

        return _bad_lvalue(width, raise_assign)
    name = target.name
    kind = sc.kind_of(name)
    if kind is None or kind[0] != "signal":
        def raise_assign(S, v, _n=name):
            raise EvalError(f"cannot part-assign {_n!r}")

        return _bad_lvalue(width, raise_assign)
    slot = sc.obj_slot(name)
    if bounds is not None:
        hi, lo = bounds

        def assign(S, v):
            sig = S[slot]
            sig.set_value(sig.value.with_bits(hi, lo, v), S[0])

        def make_nba(S, v):
            sig = S[slot]
            sim = S[0]
            return lambda: sig.set_value(sig.value.with_bits(hi, lo, v), sim)

        return _LValue(width, assign, make_nba)
    ifn = _compile_expr(index, sc, None)

    def assign(S, v):
        idx = ifn(S)
        if idx.bval:
            return
        i = idx.to_int()
        sig = S[slot]
        sig.set_value(sig.value.with_bits(i, i, v), S[0])

    def make_nba(S, v):
        idx = ifn(S)
        if idx.bval:
            return _noop
        i = idx.to_int()
        sig = S[slot]
        sim = S[0]
        return lambda: sig.set_value(sig.value.with_bits(i, i, v), sim)

    return _LValue(1, assign, make_nba)


# ----------------------------------------------------------------------
# Statement compilation
# ----------------------------------------------------------------------

#: A compiled statement: (sync, fn).  ``sync`` means ``fn(S)`` runs to
#: completion without suspending; otherwise ``fn(S)`` is a generator
#: function yielding Suspend records.  ``None`` stands for a null
#: statement (no budget charge, nothing to do).
_CStmt = tuple[bool, Callable] | None


def _fallback_stmt(stmt: ast.Stmt) -> _CStmt:
    """Interpret ``stmt`` through exec_stmt (exact semantics)."""

    def gen(S, _s=stmt):
        yield from exec_stmt(_s, S[1])

    return (False, gen)


def _compile_stmt(stmt: ast.Stmt | None, sc: _Scope) -> _CStmt:
    if stmt is None or isinstance(stmt, ast.NullStmt):
        return None
    try:
        return _compile_stmt_strict(stmt, sc)
    except _Uncompilable:
        return _fallback_stmt(stmt)
    except RecursionError:
        raise
    except Exception:
        return _fallback_stmt(stmt)


def _compile_stmt_strict(stmt: ast.Stmt, sc: _Scope) -> _CStmt:
    if isinstance(stmt, ast.Block):
        return _compile_block(stmt, sc)
    if isinstance(stmt, ast.BlockingAssign):
        return _compile_blocking(stmt, sc)
    if isinstance(stmt, ast.NonBlockingAssign):
        return _compile_nonblocking(stmt, sc)
    if isinstance(stmt, ast.If):
        return _compile_if(stmt, sc)
    if isinstance(stmt, ast.Case):
        return _compile_case(stmt, sc)
    if isinstance(stmt, ast.For):
        return _compile_for(stmt, sc)
    if isinstance(stmt, ast.While):
        return _compile_while(stmt, sc)
    if isinstance(stmt, ast.RepeatStmt):
        return _compile_repeat_stmt(stmt, sc)
    if isinstance(stmt, ast.Forever):
        return _compile_forever(stmt, sc)
    if isinstance(stmt, ast.Wait):
        return _compile_wait(stmt, sc)
    if isinstance(stmt, ast.DelayStmt):
        return _compile_delay_stmt(stmt, sc)
    if isinstance(stmt, ast.EventControl):
        return _compile_event_control(stmt, sc)
    if isinstance(stmt, ast.EventTrigger):
        return _compile_event_trigger(stmt, sc)
    if isinstance(stmt, ast.SysTaskCall):
        return _compile_systask(stmt, sc)
    if isinstance(stmt, ast.TaskCall):
        # Tasks run through the interpreter (argument frames, copy-back,
        # possible time controls) — exact semantics via exec_stmt.
        return _fallback_stmt(stmt)
    if isinstance(stmt, ast.Disable):
        name = stmt.name

        def run(S):
            S[0].consume_step()
            raise DisableEscape(name)

        return (True, run)
    message = f"cannot execute {type(stmt).__name__}"

    def run(S):
        S[0].consume_step()
        raise EvalError(message)

    return (True, run)


def _run_steps(steps: tuple, S) -> None:
    for _sync, f in steps:
        f(S)


def _gen_steps(steps: tuple, S):
    for sync, f in steps:
        if sync:
            f(S)
        else:
            yield from f(S)


def _compile_block(stmt: ast.Block, sc: _Scope) -> _CStmt:
    steps = tuple(
        c for c in (_compile_stmt(inner, sc) for inner in stmt.stmts) if c is not None
    )
    name = stmt.name
    sync = all(s for s, _f in steps)
    if name is None:
        if sync:

            def run(S):
                S[0].consume_step()
                for _sync, f in steps:
                    f(S)

            return (True, run)

        def gen(S):
            S[0].consume_step()
            yield from _gen_steps(steps, S)

        return (False, gen)
    if sync:

        def run(S):
            S[0].consume_step()
            try:
                for _sync, f in steps:
                    f(S)
            except DisableEscape as escape:
                if escape.name != name:
                    raise

        return (True, run)

    def gen(S):
        S[0].consume_step()
        try:
            yield from _gen_steps(steps, S)
        except DisableEscape as escape:
            if escape.name != name:
                raise

    return (False, gen)


def _compile_delay_expr(delay: ast.Expr, sc: _Scope):
    """Compile a delay operand to a ticks closure (``_delay_ticks``)."""
    const = sc.static_int(delay)
    if const is not None:
        ticks = max(const, 0)
        return lambda S: ticks
    dfn = _compile_expr(delay, sc, None)

    def fn(S):
        value = dfn(S)
        if value.bval:
            return 0
        ticks = value.to_int()
        return ticks if ticks > 0 else 0

    return fn


def _compile_blocking(stmt: ast.BlockingAssign, sc: _Scope) -> _CStmt:
    lv = _compile_lvalue(stmt.lhs, sc)
    if lv is None:
        raise _Uncompilable("dynamic lvalue")
    rfn = _compile_expr(stmt.rhs, sc, lv.width)
    assign = lv.assign
    if stmt.delay is None:

        def run(S):
            S[0].consume_step()
            assign(S, rfn(S))

        return (True, run)
    tickfn = _compile_delay_expr(stmt.delay, sc)

    def gen(S):
        S[0].consume_step()
        value = rfn(S)
        yield DelaySuspend(tickfn(S))
        assign(S, value)

    return (False, gen)


def _compile_nonblocking(stmt: ast.NonBlockingAssign, sc: _Scope) -> _CStmt:
    lv = _compile_lvalue(stmt.lhs, sc)
    if lv is None:
        raise _Uncompilable("dynamic lvalue")
    rfn = _compile_expr(stmt.rhs, sc, lv.width)
    make_nba = lv.make_nba
    tickfn = _compile_delay_expr(stmt.delay, sc) if stmt.delay is not None else None

    def run(S):
        S[0].consume_step()
        value = rfn(S)
        callback = make_nba(S, value)
        ticks = tickfn(S) if tickfn is not None else 0
        S[0].scheduler.schedule_at(ticks, callback, region="nba")

    return (True, run)


def _compile_if(stmt: ast.If, sc: _Scope) -> _CStmt:
    cfn = _compile_expr(stmt.cond, sc, None)
    then_c = _compile_stmt(stmt.then_stmt, sc)
    else_c = _compile_stmt(stmt.else_stmt, sc)
    if (then_c is None or then_c[0]) and (else_c is None or else_c[0]):
        then_run = then_c[1] if then_c is not None else None
        else_run = else_c[1] if else_c is not None else None

        def run(S):
            S[0].consume_step()
            if truthiness(cfn(S)) == "true":
                if then_run is not None:
                    then_run(S)
            elif else_run is not None:
                else_run(S)

        return (True, run)

    def gen(S):
        S[0].consume_step()
        branch = then_c if truthiness(cfn(S)) == "true" else else_c
        if branch is None:
            return
        sync, f = branch
        if sync:
            f(S)
        else:
            yield from f(S)

    return (False, gen)


def _compile_case(stmt: ast.Case, sc: _Scope) -> _CStmt:
    kind = stmt.kind
    subject_fn = _compile_expr(stmt.expr, sc, None)
    arms: list[tuple[tuple, _CStmt]] = []
    default_c: _CStmt = None
    has_default = False
    for item in stmt.items:
        compiled = _compile_stmt(item.stmt, sc)
        if not item.exprs:
            default_c = compiled
            has_default = True
            continue
        labels = tuple(_compile_expr(e, sc, None) for e in item.exprs)
        arms.append((labels, compiled))
    all_sync = all(
        c is None or c[0] for _labels, c in arms
    ) and (default_c is None or default_c[0])
    arms_t = tuple(arms)

    if all_sync:

        def run(S):
            S[0].consume_step()
            subject = subject_fn(S)
            for labels, compiled in arms_t:
                for lfn in labels:
                    if _case_match(kind, subject, lfn(S)):
                        if compiled is not None:
                            compiled[1](S)
                        return
            if has_default and default_c is not None:
                default_c[1](S)

        return (True, run)

    def gen(S):
        S[0].consume_step()
        subject = subject_fn(S)
        for labels, compiled in arms_t:
            for lfn in labels:
                if _case_match(kind, subject, lfn(S)):
                    if compiled is not None:
                        sync, f = compiled
                        if sync:
                            f(S)
                        else:
                            yield from f(S)
                    return
        if has_default and default_c is not None:
            sync, f = default_c
            if sync:
                f(S)
            else:
                yield from f(S)

    return (False, gen)


def _compile_for(stmt: ast.For, sc: _Scope) -> _CStmt:
    init_c = _compile_stmt(stmt.init, sc)
    cfn = _compile_expr(stmt.cond, sc, None)
    step_c = _compile_stmt(stmt.step, sc)
    body_c = _compile_stmt(stmt.body, sc)
    parts = [init_c, step_c, body_c]
    if all(c is None or c[0] for c in parts):
        init_run = init_c[1] if init_c is not None else None
        body_run = body_c[1] if body_c is not None else None
        step_run = step_c[1] if step_c is not None else None

        def run(S):
            sim = S[0]
            sim.consume_step()
            if init_run is not None:
                init_run(S)
            while truthiness(cfn(S)) == "true":
                sim.consume_step()
                if body_run is not None:
                    body_run(S)
                if step_run is not None:
                    step_run(S)

        return (True, run)

    def gen(S):
        sim = S[0]
        sim.consume_step()
        if init_c is not None:
            sync, f = init_c
            if sync:
                f(S)
            else:
                yield from f(S)
        while truthiness(cfn(S)) == "true":
            sim.consume_step()
            for c in (body_c, step_c):
                if c is None:
                    continue
                sync, f = c
                if sync:
                    f(S)
                else:
                    yield from f(S)

    return (False, gen)


def _compile_while(stmt: ast.While, sc: _Scope) -> _CStmt:
    cfn = _compile_expr(stmt.cond, sc, None)
    body_c = _compile_stmt(stmt.body, sc)
    if body_c is None or body_c[0]:
        body_run = body_c[1] if body_c is not None else None

        def run(S):
            sim = S[0]
            sim.consume_step()
            while truthiness(cfn(S)) == "true":
                sim.consume_step()
                if body_run is not None:
                    body_run(S)

        return (True, run)
    body_gen = body_c[1]

    def gen(S):
        sim = S[0]
        sim.consume_step()
        while truthiness(cfn(S)) == "true":
            sim.consume_step()
            yield from body_gen(S)

    return (False, gen)


def _compile_repeat_stmt(stmt: ast.RepeatStmt, sc: _Scope) -> _CStmt:
    cfn = _compile_expr(stmt.count, sc, None)
    body_c = _compile_stmt(stmt.body, sc)
    if body_c is None or body_c[0]:
        body_run = body_c[1] if body_c is not None else None

        def run(S):
            sim = S[0]
            sim.consume_step()
            count = cfn(S)
            iterations = count.to_int() if not count.bval else 0
            for _ in range(iterations if iterations > 0 else 0):
                sim.consume_step()
                if body_run is not None:
                    body_run(S)

        return (True, run)
    body_gen = body_c[1]

    def gen(S):
        sim = S[0]
        sim.consume_step()
        count = cfn(S)
        iterations = count.to_int() if not count.bval else 0
        for _ in range(iterations if iterations > 0 else 0):
            sim.consume_step()
            yield from body_gen(S)

    return (False, gen)


def _compile_forever(stmt: ast.Forever, sc: _Scope) -> _CStmt:
    body_c = _compile_stmt(stmt.body, sc)
    if body_c is None or body_c[0]:
        # A forever loop with no time controls terminates only through the
        # statement budget — same as the interpreter.
        body_run = body_c[1] if body_c is not None else None

        def run(S):
            sim = S[0]
            sim.consume_step()
            while True:
                sim.consume_step()
                if body_run is not None:
                    body_run(S)

        return (True, run)
    body_gen = body_c[1]

    def gen(S):
        sim = S[0]
        sim.consume_step()
        while True:
            sim.consume_step()
            yield from body_gen(S)

    return (False, gen)


def _level_entries(node: ast.Node | None, sc: _Scope) -> tuple[tuple[str, str], ...]:
    """Static counterpart of ``_level_items``: sorted read names that
    resolve to waitables in the exemplar instance."""
    if node is None:
        return ()
    entries = []
    for name in sorted(collect_read_names(node)):
        kind = sc.kind_of(name)
        if kind is not None and kind[0] in ("signal", "memory", "event"):
            entries.append((name, "level"))
    return tuple(entries)


def _senslist_entries(
    senslist: ast.SensList, sc: _Scope, body: ast.Stmt | None
) -> tuple[tuple[str, str], ...] | str:
    """Static counterpart of ``resolve_senslist``.

    Returns the (name, edge) entries, or the error message the interpreter
    would raise on every execution."""
    entries: list[tuple[str, str]] = []
    for item in senslist.items:
        if item.edge == "all":
            entries.extend(_level_entries(body, sc))
            continue
        signal = item.signal
        if isinstance(signal, ast.Identifier):
            kind = sc.kind_of(signal.name)
            if kind is None or kind[0] == "param":
                return f"cannot wait on {signal.name!r}"
            entries.append((signal.name, item.edge))
        elif signal is not None:
            entries.extend(_level_entries(signal, sc))
    if not entries:
        return "empty sensitivity list after resolution"
    return tuple(entries)


def _compile_wait(stmt: ast.Wait, sc: _Scope) -> _CStmt:
    cfn = _compile_expr(stmt.cond, sc, None)
    entries = _level_entries(stmt.cond, sc)
    items_slot = sc.items_slot(entries) if entries else None
    body_c = _compile_stmt(stmt.body, sc)

    def gen(S):
        S[0].consume_step()
        while truthiness(cfn(S)) != "true":
            if items_slot is None:
                raise EvalError("wait condition has no waitable signals")
            yield EventSuspend(S[items_slot])
        if body_c is not None:
            sync, f = body_c
            if sync:
                f(S)
            else:
                yield from f(S)

    return (False, gen)


def _compile_delay_stmt(stmt: ast.DelayStmt, sc: _Scope) -> _CStmt:
    tickfn = _compile_delay_expr(stmt.delay, sc)
    body_c = _compile_stmt(stmt.body, sc)

    def gen(S):
        S[0].consume_step()
        yield DelaySuspend(tickfn(S))
        if body_c is not None:
            sync, f = body_c
            if sync:
                f(S)
            else:
                yield from f(S)

    return (False, gen)


def _compile_event_control(stmt: ast.EventControl, sc: _Scope) -> _CStmt:
    resolved = _senslist_entries(stmt.senslist, sc, stmt.body)
    if isinstance(resolved, str):
        message = resolved

        def bad(S):
            S[0].consume_step()
            raise EvalError(message)

        return (True, bad)
    items_slot = sc.items_slot(resolved)
    body_c = _compile_stmt(stmt.body, sc)

    def gen(S):
        S[0].consume_step()
        yield EventSuspend(S[items_slot])
        if body_c is not None:
            sync, f = body_c
            if sync:
                f(S)
            else:
                yield from f(S)

    return (False, gen)


def _compile_event_trigger(stmt: ast.EventTrigger, sc: _Scope) -> _CStmt:
    name = stmt.name
    if name not in sc.instance.events:
        message = f"unknown event {name!r}"

        def bad(S):
            S[0].consume_step()
            raise EvalError(message)

        return (True, bad)
    slot = sc.obj_slot(name)

    def run(S):
        S[0].consume_step()
        S[slot].trigger(S[0])

    return (True, run)


def _compile_systask(stmt: ast.SysTaskCall, sc: _Scope) -> _CStmt:
    # exec_systask is a generator that never actually yields; draining it
    # preserves exceptions ($finish → FinishRequest) and ordering.
    def run(S, _s=stmt):
        S[0].consume_step()
        for _ in S[0].exec_systask(_s, S[1]):
            pass  # pragma: no cover - exec_systask never yields

    return (True, run)


# ----------------------------------------------------------------------
# Process / continuous-assign templates
# ----------------------------------------------------------------------


class _ProcessTemplate:
    """A compiled always/initial item, bindable to any matching instance."""

    __slots__ = ("slot_specs", "build")

    def __init__(self, slot_specs: list[tuple], build: Callable):
        self.slot_specs = slot_specs
        self.build = build

    def bind(self, sim: Simulator, env) -> object:
        return self.build(_bind_slots(self.slot_specs, sim, env))


def _compile_always(item: ast.Always, sc: _Scope) -> _ProcessTemplate:
    body_c = _compile_stmt(item.body, sc)
    if item.senslist is None:

        def build(S):
            def gen():
                sim = S[0]
                if body_c is None:
                    while True:
                        sim.consume_step()
                elif body_c[0]:
                    run = body_c[1]
                    while True:
                        sim.consume_step()
                        run(S)
                else:
                    body_gen = body_c[1]
                    while True:
                        sim.consume_step()
                        yield from body_gen(S)

            return gen()

        return _ProcessTemplate(sc.slot_specs, build)

    resolved = _senslist_entries(item.senslist, sc, item.body)
    if isinstance(resolved, str):
        message = resolved

        def build(S):
            def gen():
                raise EvalError(message)
                yield  # pragma: no cover - raise precedes the first yield

            return gen()

        return _ProcessTemplate(sc.slot_specs, build)
    items_slot = sc.items_slot(resolved)

    def build(S):
        items = S[items_slot]
        suspend = EventSuspend(items)

        def gen():
            if body_c is None:
                while True:
                    yield suspend
            elif body_c[0]:
                run = body_c[1]
                while True:
                    yield suspend
                    run(S)
            else:
                body_gen = body_c[1]
                while True:
                    yield suspend
                    yield from body_gen(S)

        return gen()

    return _ProcessTemplate(sc.slot_specs, build)


def _compile_initial(item: ast.Initial, sc: _Scope) -> _ProcessTemplate:
    body_c = _compile_stmt(item.body, sc)

    def build(S):
        if body_c is None:

            def empty():
                return
                yield  # pragma: no cover

            return empty()
        if body_c[0]:
            run = body_c[1]

            def gen():
                run(S)
                return
                yield  # pragma: no cover

            return gen()
        return body_c[1](S)

    return _ProcessTemplate(sc.slot_specs, build)


class CompiledContAssign:
    """Compiled counterpart of :class:`repro.sim.elaborate.ContAssign`."""

    __slots__ = ("sim", "_rhs_fn", "_delay_fn", "_assign", "_S_lhs", "_S_rhs", "_rhs_ast", "_rhs_instance")

    def __init__(self, sim, rhs_fn, delay_fn, assign, S_lhs, S_rhs, rhs_ast, rhs_instance):
        self.sim = sim
        self._rhs_fn = rhs_fn
        self._delay_fn = delay_fn
        self._assign = assign
        self._S_lhs = S_lhs
        self._S_rhs = S_rhs
        self._rhs_ast = rhs_ast
        self._rhs_instance = rhs_instance

    def install(self) -> None:
        """Subscribe to RHS fan-in and schedule the initial evaluation."""
        for name in sorted(collect_read_names(self._rhs_ast)):
            target = self._rhs_instance.lookup(name)
            if isinstance(target, (Signal, Memory)):
                target.subscribe(self.update)
        self.sim.scheduler.schedule_active(self.update)

    def update(self) -> None:
        """Re-evaluate the RHS and drive the LHS (with optional delay)."""
        sim = self.sim
        sim.consume_step()
        try:
            value = self._rhs_fn(self._S_rhs)
        except (EvalError, ValueError, OverflowError) as exc:
            sim.note_error(f"continuous assign: {exc}")
            return
        if self._delay_fn is not None:
            try:
                ticks = self._delay_fn(self._S_rhs).to_int()
            except EvalError:
                ticks = 0
            if ticks > 0:
                sim.scheduler.schedule_at(ticks, lambda: self._apply(value))
                return
        self._apply(value)

    def _apply(self, value: Value) -> None:
        try:
            self._assign(self._S_lhs, value)
        except (EvalError, ValueError, OverflowError) as exc:
            self.sim.note_error(f"continuous assign target: {exc}")


def _param_sig(instance: Instance) -> tuple:
    return tuple(
        sorted(
            (name, v.width, v.aval, v.bval, v.signed)
            for name, v in instance.params.items()
        )
    )


class DesignCompiler:
    """Per-simulation compile driver with template caching.

    ``shared_cache`` (optional) persists across simulations for modules
    whose ``id()`` appears in ``shared_module_ids`` — the testbench half of
    a candidate evaluation.  Cache entries hold a strong reference to the
    AST item, so a cached key can never be aliased by id reuse.
    """

    def __init__(self, shared_cache: dict | None = None, shared_module_ids: frozenset = frozenset()):
        self.shared_cache = shared_cache if shared_cache is not None else {}
        self.shared_module_ids = shared_module_ids
        self.local_cache: dict = {}

    def _template(self, item, instance: Instance, compile_fn) -> _ProcessTemplate:
        cache = (
            self.shared_cache
            if id(instance.module) in self.shared_module_ids
            else self.local_cache
        )
        key = (id(item), _param_sig(instance))
        entry = cache.get(key)
        if entry is None or entry[0] is not item:
            template = compile_fn(item, _Scope(instance))
            entry = (item, template)
            cache[key] = entry
        return entry[1]

    def always_template(self, item: ast.Always, instance: Instance) -> _ProcessTemplate:
        """Template (cached) for an ``always`` item in ``instance``."""
        return self._template(item, instance, _compile_always)

    def initial_template(self, item: ast.Initial, instance: Instance) -> _ProcessTemplate:
        """Template (cached) for an ``initial`` item in ``instance``."""
        return self._template(item, instance, _compile_initial)


class CompiledSimulator(Simulator):
    """Drop-in :class:`Simulator` that runs compiled behaviour.

    Construction, the run loop, system tasks, tracing, and the scheduler
    are all inherited; only the factory hooks that turn elaborated items
    into runnable behaviour differ.  Any item the compiler cannot handle
    is built by the interpreter instead, so a ``CompiledSimulator`` never
    fails where a ``Simulator`` would succeed.
    """

    def __init__(
        self,
        source: ast.Source | str,
        top: str | None = None,
        max_steps: int = 5_000_000,
        seed: int = 0,
        shared_cache: dict | None = None,
        shared_module_ids: frozenset = frozenset(),
    ):
        self._compiler = DesignCompiler(shared_cache, shared_module_ids)
        super().__init__(source, top, max_steps, seed)

    # -- factory hooks ---------------------------------------------------

    def make_always(self, item: ast.Always, env) -> Process:
        try:
            template = self._compiler.always_template(item, env.instance)
            gen = template.bind(self, env)
        except RecursionError:
            raise
        except Exception:
            return always_process(self, item, env)
        return Process(self, gen, f"always@{env.instance.path}")

    def make_initial(self, item: ast.Initial, env) -> Process:
        try:
            template = self._compiler.initial_template(item, env.instance)
            gen = template.bind(self, env)
        except RecursionError:
            raise
        except Exception:
            return initial_process(self, item, env)
        return Process(self, gen, f"initial@{env.instance.path}")

    def make_cont_assign(self, lhs_env, lhs, rhs_env, rhs, delay=None):
        try:
            lhs_scope = _Scope(lhs_env.instance)
            lv = _compile_lvalue(lhs, lhs_scope)
            if lv is None:
                raise _Uncompilable("dynamic continuous-assign lvalue")
            rhs_scope = _Scope(rhs_env.instance)
            rhs_fn = _compile_expr(rhs, rhs_scope, lv.width)
            delay_fn = (
                _compile_expr(delay, rhs_scope, None) if delay is not None else None
            )
            return CompiledContAssign(
                self,
                rhs_fn,
                delay_fn,
                lv.assign,
                _bind_slots(lhs_scope.slot_specs, self, lhs_env),
                _bind_slots(rhs_scope.slot_specs, self, rhs_env),
                rhs,
                rhs_env.instance,
            )
        except RecursionError:
            raise
        except Exception:
            return ContAssign(self, lhs_env, lhs, rhs_env, rhs, delay)
