"""Four-state logic values for Verilog simulation.

A :class:`Value` is a fixed-width vector over {0, 1, x, z} using the VPI
two-integer encoding: for each bit position, the pair ``(a, b)`` of bits from
``aval``/``bval`` encodes::

    (0, 0) -> 0      (1, 0) -> 1      (0, 1) -> z      (1, 1) -> x

This representation makes bitwise operations integer-parallel and keeps x/z
tracking exact, which matters because the CirFix fitness function penalises
x/z bits with a dedicated weight φ.
"""

from __future__ import annotations

from typing import Iterator

_CHAR_FOR_PAIR = {(0, 0): "0", (1, 0): "1", (0, 1): "z", (1, 1): "x"}
_PAIR_FOR_CHAR = {"0": (0, 0), "1": (1, 0), "z": (0, 1), "x": (1, 1), "?": (0, 1)}

# Interning caches for the constants candidate evaluation churns through:
# every reg initialises to unknown(width), undriven wires to high_z(width),
# and comparisons/conditions produce 0/1 constantly.  Values are immutable
# (every operation returns a fresh instance), so sharing is safe.  Only
# unsigned values are cached, and only up to a width cap so a pathological
# mutant writing huge part-selects cannot grow the caches without bound.
_INTERN_MAX_WIDTH = 4096
_ZERO_CACHE: dict[int, "Value"] = {}
_ONE_CACHE: dict[int, "Value"] = {}
_UNKNOWN_CACHE: dict[int, "Value"] = {}
_HIGH_Z_CACHE: dict[int, "Value"] = {}


class Value:
    """An immutable four-state bit vector.

    Attributes:
        width: Number of bits (>= 1).
        aval: "a" plane bits (see module docstring).
        bval: "b" plane bits; a set bit marks x or z at that position.
        signed: Whether the vector is interpreted as two's complement by
            arithmetic and comparison operators.
    """

    __slots__ = ("width", "aval", "bval", "signed")

    #: Hard ceiling on any runtime value width.  Mutated designs can write
    #: part-selects like ``a[30'h3FFFFFFF:0]``; without a cap the bit masks
    #: for such widths exhaust memory.
    MAX_WIDTH = 1 << 20

    def __init__(self, width: int, aval: int, bval: int = 0, signed: bool = False):
        if width < 1:
            raise ValueError(f"value width must be >= 1, got {width}")
        if width > Value.MAX_WIDTH:
            raise ValueError(f"value width {width} exceeds the {Value.MAX_WIDTH}-bit cap")
        mask = (1 << width) - 1
        self.width = width
        self.aval = aval & mask
        self.bval = bval & mask
        self.signed = signed

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def from_int(value: int, width: int = 32, signed: bool = False) -> "Value":
        """Build a fully-defined value from a Python int (wraps to width).

        The all-zero and one constants are interned per width (unsigned
        only), since they dominate the values produced while evaluating
        repair candidates.
        """
        masked = value & ((1 << width) - 1)
        if not signed and 1 <= width <= _INTERN_MAX_WIDTH and masked <= 1:
            cache = _ONE_CACHE if masked else _ZERO_CACHE
            cached = cache.get(width)
            if cached is None:
                cached = cache[width] = Value(width, masked, 0, False)
            return cached
        return Value(width, masked, 0, signed)

    @staticmethod
    def unknown(width: int) -> "Value":
        """All bits x (the initial state of a reg); interned per width."""
        cached = _UNKNOWN_CACHE.get(width)
        if cached is None:
            mask = (1 << width) - 1
            cached = Value(width, mask, mask)
            if width <= _INTERN_MAX_WIDTH:
                _UNKNOWN_CACHE[width] = cached
        return cached

    @staticmethod
    def high_z(width: int) -> "Value":
        """All bits z (the state of an undriven wire); interned per width."""
        cached = _HIGH_Z_CACHE.get(width)
        if cached is None:
            cached = Value(width, 0, (1 << width) - 1)
            if width <= _INTERN_MAX_WIDTH:
                _HIGH_Z_CACHE[width] = cached
        return cached

    @staticmethod
    def from_string(text: str, signed: bool = False) -> "Value":
        """Parse a bit-string like ``"10xz"`` (MSB first)."""
        if not text:
            raise ValueError("empty bit string")
        aval = bval = 0
        for ch in text.lower():
            pair = _PAIR_FOR_CHAR.get(ch)
            if pair is None:
                raise ValueError(f"invalid bit character {ch!r}")
            aval = (aval << 1) | pair[0]
            bval = (bval << 1) | pair[1]
        return Value(len(text), aval, bval, signed)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def is_fully_defined(self) -> bool:
        """True when no bit is x or z."""
        return self.bval == 0

    @property
    def has_x_or_z(self) -> bool:
        return self.bval != 0

    def to_int(self) -> int:
        """Interpret as an integer; x/z bits read as 0 (like $unsigned)."""
        value = self.aval & ~self.bval
        if self.signed and self.width > 0 and (value >> (self.width - 1)) & 1:
            value -= 1 << self.width
        return value

    def to_signed_int(self) -> int:
        """Two's-complement interpretation regardless of the signed flag."""
        value = self.aval & ~self.bval
        if (value >> (self.width - 1)) & 1:
            value -= 1 << self.width
        return value

    def bit(self, index: int) -> str:
        """Return the bit at ``index`` (LSB = 0) as one of '0','1','x','z'."""
        if not 0 <= index < self.width:
            return "x"
        pair = ((self.aval >> index) & 1, (self.bval >> index) & 1)
        return _CHAR_FOR_PAIR[pair]

    def bits(self) -> Iterator[str]:
        """Yield bits LSB-first."""
        for i in range(self.width):
            yield self.bit(i)

    def to_bit_string(self) -> str:
        """Render MSB-first, e.g. ``"10xz"`` (used by traces and %b)."""
        return "".join(self.bit(i) for i in range(self.width - 1, -1, -1))

    def to_decimal_string(self) -> str:
        """Render like %0d: 'x'/'z' when any bit is unknown."""
        if self.bval:
            all_mask = (1 << self.width) - 1
            if self.bval == all_mask and self.aval == all_mask:
                return "x"
            if self.bval == all_mask and self.aval == 0:
                return "z"
            return "X"
        return str(self.to_int() if self.signed else self.aval)

    def to_hex_string(self) -> str:
        """Render like %h, with per-nibble x/z collapsing."""
        digits = []
        for start in range(0, self.width, 4):
            a = (self.aval >> start) & 0xF
            b = (self.bval >> start) & 0xF
            if b == 0:
                digits.append(f"{a:x}")
            elif b == 0xF and a == 0xF:
                digits.append("x")
            elif b == 0xF and a == 0:
                digits.append("z")
            else:
                digits.append("X")
        return "".join(reversed(digits))

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------

    def resized(self, width: int, signed: bool | None = None) -> "Value":
        """Zero/sign/x-extend or truncate to ``width``."""
        signed_out = self.signed if signed is None else signed
        if width == self.width:
            return Value(width, self.aval, self.bval, signed_out)
        if width < self.width:
            return Value(width, self.aval, self.bval, signed_out)
        ext_mask = ((1 << width) - 1) ^ ((1 << self.width) - 1)
        aval, bval = self.aval, self.bval
        msb = self.width - 1
        msb_pair = ((aval >> msb) & 1, (bval >> msb) & 1)
        if msb_pair == (1, 1):  # x extends as x
            aval |= ext_mask
            bval |= ext_mask
        elif msb_pair == (0, 1):  # z extends as z
            bval |= ext_mask
        elif self.signed and msb_pair == (1, 0):  # sign extension
            aval |= ext_mask
        return Value(width, aval, bval, signed_out)

    def select_bit(self, index: int) -> "Value":
        """Extract one bit; out-of-range reads return x."""
        if not 0 <= index < self.width:
            return Value.unknown(1)
        return Value(1, (self.aval >> index) & 1, (self.bval >> index) & 1)

    def select_range(self, msb: int, lsb: int) -> "Value":
        """Extract bits [msb:lsb] (msb >= lsb); out-of-range bits are x."""
        if msb < lsb:
            msb, lsb = lsb, msb
        width = msb - lsb + 1
        if lsb < 0 or msb >= self.width:
            out = Value.unknown(width)
            # Copy the in-range part.
            aval = bval = 0
            for i in range(width):
                src = lsb + i
                if 0 <= src < self.width:
                    aval |= ((self.aval >> src) & 1) << i
                    bval |= ((self.bval >> src) & 1) << i
                else:
                    aval |= 1 << i
                    bval |= 1 << i
            return Value(width, aval, bval)
        return Value(width, self.aval >> lsb, self.bval >> lsb)

    def with_bits(self, msb: int, lsb: int, replacement: "Value") -> "Value":
        """Return a copy with bits [msb:lsb] replaced (for part assignments)."""
        if msb < lsb:
            msb, lsb = lsb, msb
        width = msb - lsb + 1
        rep = replacement.resized(width)
        keep_mask = ((1 << self.width) - 1) ^ (((1 << width) - 1) << lsb)
        aval = (self.aval & keep_mask) | ((rep.aval & ((1 << width) - 1)) << lsb)
        bval = (self.bval & keep_mask) | ((rep.bval & ((1 << width) - 1)) << lsb)
        return Value(self.width, aval, bval, self.signed)

    def concat(self, other: "Value") -> "Value":
        """Concatenate with ``other`` as the low part: {self, other}."""
        return Value(
            self.width + other.width,
            (self.aval << other.width) | other.aval,
            (self.bval << other.width) | other.bval,
        )

    # ------------------------------------------------------------------
    # Comparison / hashing
    # ------------------------------------------------------------------

    def same_state(self, other: "Value") -> bool:
        """Exact 4-state equality (the === operator), width-extended."""
        width = max(self.width, other.width)
        a, b = self.resized(width), other.resized(width)
        return a.aval == b.aval and a.bval == b.bval

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Value):
            return NotImplemented
        return (
            self.width == other.width
            and self.aval == other.aval
            and self.bval == other.bval
        )

    def __hash__(self) -> int:
        return hash((self.width, self.aval, self.bval))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Value({self.width}'b{self.to_bit_string()})"


#: Common constants.
TRUE = Value(1, 1)
FALSE = Value(1, 0)
X_BIT = Value(1, 1, 1)
Z_BIT = Value(1, 0, 1)


def truthiness(value: Value) -> str:
    """Classify a value for conditional evaluation.

    Returns ``"true"`` when any bit is a definite 1, ``"false"`` when all
    bits are definite 0, otherwise ``"x"`` (IEEE: an if-condition that is
    x/z takes the false branch).
    """
    known_ones = value.aval & ~value.bval
    if known_ones:
        return "true"
    if value.bval == 0:
        return "false"
    return "x"
