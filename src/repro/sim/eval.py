"""Expression evaluation with IEEE-1364 four-state semantics.

The evaluator interprets :mod:`repro.hdl.ast` expression trees against an
:class:`EvalScope` (implemented by the simulator runtime).  X-propagation
follows the standard: arithmetic with any x/z operand bit yields all-x,
bitwise operators use the per-bit truth tables, comparisons other than
``===``/``!==`` yield x when operands are not fully defined, and an x
condition in a ternary merges the two branches bit-wise.

Width rules follow Verilog's context-determined sizing closely enough for
RTL code: unsized literals are 32-bit, binary arithmetic/bitwise operands
are extended to the larger operand width (and to the assignment context
width when provided), comparisons and reductions are 1-bit self-determined.
"""

from __future__ import annotations

from typing import Protocol

from ..hdl import ast
from .logic import Value, truthiness


class EvalError(Exception):
    """Raised when an expression cannot be evaluated (bad mutant, etc.)."""


class EvalScope(Protocol):
    """Name-resolution interface the evaluator needs."""

    def read(self, name: str) -> Value:
        """Current value of a signal, variable, or parameter."""
        ...

    def read_word(self, name: str, index: int) -> Value:
        """Current value of one word of a memory."""
        ...

    def is_memory(self, name: str) -> bool:
        """True when ``name`` is an array (memory)."""
        ...

    def call_function(self, name: str, args: list[Value]) -> Value:
        """Invoke a user-defined function."""
        ...

    def system_function(self, name: str, args: list[Value]) -> Value:
        """Invoke a system function such as ``$time`` or ``$random``."""
        ...


_DEFAULT_WIDTH = 32


def eval_expr(expr: ast.Expr, scope: EvalScope, ctx_width: int | None = None) -> Value:
    """Evaluate ``expr`` in ``scope``.

    Args:
        expr: Expression AST.
        scope: Name resolution scope.
        ctx_width: Context (assignment LHS) width, propagated into
            arithmetic so carries beyond operand widths are preserved.

    Returns:
        The 4-state result value.
    """
    if isinstance(expr, ast.Number):
        width = expr.width if expr.width is not None else _DEFAULT_WIDTH
        return Value(width, expr.aval, expr.bval, expr.signed)
    if isinstance(expr, ast.RealNumber):
        return Value.from_int(int(expr.value), 64)
    if isinstance(expr, ast.StringConst):
        data = expr.text.encode("ascii", errors="replace")
        width = max(8 * len(data), 8)
        return Value(width, int.from_bytes(data, "big") if data else 0)
    if isinstance(expr, ast.Identifier):
        return scope.read(expr.name)
    if isinstance(expr, ast.UnaryOp):
        return _eval_unary(expr, scope, ctx_width)
    if isinstance(expr, ast.BinaryOp):
        return _eval_binary(expr, scope, ctx_width)
    if isinstance(expr, ast.Ternary):
        return _eval_ternary(expr, scope, ctx_width)
    if isinstance(expr, ast.Index):
        return _eval_index(expr, scope)
    if isinstance(expr, ast.PartSelect):
        return _eval_partselect(expr, scope)
    if isinstance(expr, ast.Concat):
        return _eval_concat(expr, scope)
    if isinstance(expr, ast.Repeat_):
        count = eval_expr(expr.count, scope)
        if not count.is_fully_defined:
            raise EvalError("replication count is x/z")
        value = eval_expr(expr.value, scope)
        n = count.to_int()
        if n <= 0 or n > 4096:
            raise EvalError(f"bad replication count {n}")
        result = value
        for _ in range(n - 1):
            result = result.concat(value)
        return result
    if isinstance(expr, ast.FunctionCall):
        args = [eval_expr(a, scope) for a in expr.args]
        if expr.name.startswith("$"):
            return scope.system_function(expr.name, args)
        return scope.call_function(expr.name, args)
    raise EvalError(f"cannot evaluate {type(expr).__name__}")


# ----------------------------------------------------------------------
# Operator implementations
# ----------------------------------------------------------------------


def _eval_unary(expr: ast.UnaryOp, scope: EvalScope, ctx_width: int | None) -> Value:
    op = expr.op
    if op in ("+", "-"):
        operand = eval_expr(expr.operand, scope, ctx_width)
        width = max(operand.width, ctx_width or 0)
        operand = operand.resized(width)
        if not operand.is_fully_defined:
            return Value.unknown(width)
        if op == "-":
            return Value.from_int(-operand.aval, width, operand.signed)
        return operand
    operand = eval_expr(expr.operand, scope)
    if op == "!":
        state = truthiness(operand)
        if state == "x":
            return Value(1, 1, 1)
        return Value(1, 0 if state == "true" else 1)
    if op == "~":
        # ~x = x, ~z = x; defined bits invert.
        aval = (~operand.aval) & ((1 << operand.width) - 1)
        aval |= operand.bval  # x/z positions become x (a=1,b=1)
        return Value(operand.width, aval, operand.bval)
    if op in ("&", "|", "^", "~&", "~|", "~^", "^~"):
        return _reduction(op, operand)
    raise EvalError(f"unknown unary operator {op!r}")


def _reduction(op: str, operand: Value) -> Value:
    base = op.lstrip("~") if op != "^~" else "^"
    invert = op.startswith("~") or op == "^~"
    mask = (1 << operand.width) - 1
    ones = operand.aval & ~operand.bval
    zeros = (~operand.aval) & (~operand.bval) & mask
    if base == "&":
        if zeros:
            result = Value(1, 0)
        elif operand.bval:
            result = Value(1, 1, 1)
        else:
            result = Value(1, 1)
    elif base == "|":
        if ones:
            result = Value(1, 1)
        elif operand.bval:
            result = Value(1, 1, 1)
        else:
            result = Value(1, 0)
    else:  # ^
        if operand.bval:
            result = Value(1, 1, 1)
        else:
            result = Value(1, bin(operand.aval).count("1") & 1)
    if invert:
        if result.bval:
            return result
        return Value(1, result.aval ^ 1)
    return result


_ARITH_OPS = frozenset({"+", "-", "*", "/", "%", "**"})
_BITWISE_OPS = frozenset({"&", "|", "^", "^~", "~^"})
_COMPARE_OPS = frozenset({"==", "!=", "<", "<=", ">", ">="})
_SHIFT_OPS = frozenset({"<<", ">>", "<<<", ">>>"})


def _eval_binary(expr: ast.BinaryOp, scope: EvalScope, ctx_width: int | None) -> Value:
    op = expr.op
    if op in ("&&", "||"):
        left = truthiness(eval_expr(expr.left, scope))
        right = truthiness(eval_expr(expr.right, scope))
        if op == "&&":
            if left == "false" or right == "false":
                return Value(1, 0)
            if left == "true" and right == "true":
                return Value(1, 1)
            return Value(1, 1, 1)
        if left == "true" or right == "true":
            return Value(1, 1)
        if left == "false" and right == "false":
            return Value(1, 0)
        return Value(1, 1, 1)

    if op in _SHIFT_OPS:
        left = eval_expr(expr.left, scope, ctx_width)
        width = max(left.width, ctx_width or 0)
        left = left.resized(width)
        amount = eval_expr(expr.right, scope)
        if not amount.is_fully_defined:
            return Value.unknown(width)
        shift = amount.to_int()
        if shift < 0 or shift > 1 << 16:
            return Value.unknown(width)
        if op in ("<<", "<<<"):
            return Value(width, left.aval << shift, left.bval << shift, left.signed)
        if op == ">>" or not left.signed:
            return Value(width, left.aval >> shift, left.bval >> shift, left.signed)
        # Arithmetic right shift with x-safe sign bit handling.
        if not left.is_fully_defined:
            return Value.unknown(width)
        return Value.from_int(left.to_signed_int() >> shift, width, True)

    left = eval_expr(expr.left, scope, ctx_width if op in _ARITH_OPS | _BITWISE_OPS else None)
    right = eval_expr(expr.right, scope, ctx_width if op in _ARITH_OPS | _BITWISE_OPS else None)

    if op in ("===", "!=="):
        same = left.same_state(right)
        return Value(1, int(same if op == "===" else not same))

    if op in _COMPARE_OPS:
        if not (left.is_fully_defined and right.is_fully_defined):
            return Value(1, 1, 1)
        signed = left.signed and right.signed
        lv = left.to_signed_int() if signed else left.aval
        rv = right.to_signed_int() if signed else right.aval
        table = {
            "==": lv == rv,
            "!=": lv != rv,
            "<": lv < rv,
            "<=": lv <= rv,
            ">": lv > rv,
            ">=": lv >= rv,
        }
        return Value(1, int(table[op]))

    width = max(left.width, right.width, ctx_width or 0)
    signed = left.signed and right.signed
    left = left.resized(width)
    right = right.resized(width)

    if op in _BITWISE_OPS:
        return _bitwise(op, left, right, width)

    if op in _ARITH_OPS:
        if not (left.is_fully_defined and right.is_fully_defined):
            return Value.unknown(width)
        lv = left.to_signed_int() if signed else left.aval
        rv = right.to_signed_int() if signed else right.aval
        if op == "+":
            return Value.from_int(lv + rv, width, signed)
        if op == "-":
            return Value.from_int(lv - rv, width, signed)
        if op == "*":
            return Value.from_int(lv * rv, width, signed)
        if op == "/":
            if rv == 0:
                return Value.unknown(width)
            quotient = abs(lv) // abs(rv)
            if (lv < 0) != (rv < 0):
                quotient = -quotient
            return Value.from_int(quotient, width, signed)
        if op == "%":
            if rv == 0:
                return Value.unknown(width)
            remainder = abs(lv) % abs(rv)
            if lv < 0:
                remainder = -remainder
            return Value.from_int(remainder, width, signed)
        if op == "**":
            if rv < 0 or rv > 64:
                return Value.unknown(width)
            return Value.from_int(lv**rv, width, signed)

    raise EvalError(f"unknown binary operator {op!r}")


def _bitwise(op: str, left: Value, right: Value, width: int) -> Value:
    mask = (1 << width) - 1
    l_ones = left.aval & ~left.bval
    l_zeros = (~left.aval) & (~left.bval) & mask
    r_ones = right.aval & ~right.bval
    r_zeros = (~right.aval) & (~right.bval) & mask
    if op == "&":
        ones = l_ones & r_ones
        zeros = l_zeros | r_zeros
    elif op == "|":
        ones = l_ones | r_ones
        zeros = l_zeros & r_zeros
    else:  # ^, ^~, ~^
        defined = (l_ones | l_zeros) & (r_ones | r_zeros)
        xor = (left.aval ^ right.aval) & defined
        if op in ("^~", "~^"):
            xor = (~xor) & defined
        ones = xor
        zeros = defined & ~xor
    unknown = mask & ~(ones | zeros)
    return Value(width, ones | unknown, unknown)


def _eval_ternary(expr: ast.Ternary, scope: EvalScope, ctx_width: int | None) -> Value:
    cond = truthiness(eval_expr(expr.cond, scope))
    if cond == "true":
        return eval_expr(expr.true_expr, scope, ctx_width)
    if cond == "false":
        return eval_expr(expr.false_expr, scope, ctx_width)
    true_val = eval_expr(expr.true_expr, scope, ctx_width)
    false_val = eval_expr(expr.false_expr, scope, ctx_width)
    width = max(true_val.width, false_val.width)
    true_val = true_val.resized(width)
    false_val = false_val.resized(width)
    # Bits that agree and are defined survive; everything else becomes x.
    mask = (1 << width) - 1
    agree = (
        ~(true_val.aval ^ false_val.aval) & ~(true_val.bval | false_val.bval) & mask
    )
    aval = (true_val.aval & agree) | (mask & ~agree)
    bval = mask & ~agree
    return Value(width, aval, bval)


def _eval_index(expr: ast.Index, scope: EvalScope) -> Value:
    index = eval_expr(expr.index, scope)
    if isinstance(expr.target, ast.Identifier) and scope.is_memory(expr.target.name):
        if not index.is_fully_defined:
            raise EvalError(f"memory index for {expr.target.name} is x/z")
        return scope.read_word(expr.target.name, index.to_int())
    target = eval_expr(expr.target, scope)
    if not index.is_fully_defined:
        return Value.unknown(1)
    return target.select_bit(index.to_int())


def _eval_partselect(expr: ast.PartSelect, scope: EvalScope) -> Value:
    target = eval_expr(expr.target, scope)
    msb = eval_expr(expr.msb, scope)
    lsb = eval_expr(expr.lsb, scope)
    if not (msb.is_fully_defined and lsb.is_fully_defined):
        return Value.unknown(max(target.width, 1))
    return target.select_range(msb.to_int(), lsb.to_int())


def _eval_concat(expr: ast.Concat, scope: EvalScope) -> Value:
    if not expr.parts:
        raise EvalError("empty concatenation")
    result: Value | None = None
    for part in expr.parts:
        value = eval_expr(part, scope)
        result = value if result is None else result.concat(value)
    assert result is not None
    return result


def const_eval(expr: ast.Expr, scope: EvalScope) -> int:
    """Evaluate an expression expected to be a defined constant (ranges,
    parameters, delays).  Raises :class:`EvalError` when it is x/z."""
    value = eval_expr(expr, scope)
    if not value.is_fully_defined:
        raise EvalError("constant expression evaluated to x/z")
    return value.to_int() if value.signed else value.aval
