"""Event-driven 4-state Verilog simulator.

Replaces the commercial simulator (Synopsys VCS) used by the original CirFix
artifact.  The public surface is :class:`Simulator` plus the value type
:class:`~repro.sim.logic.Value`.
"""

from .compile import CompiledSimulator
from .elaborate import ElaborationError
from .eval import EvalError, eval_expr
from .logic import Value, truthiness
from .processes import FinishRequest, SimulationBudget
from .scheduler import Scheduler
from .simulator import SimResult, SimulationError, Simulator, TraceRecord

__all__ = [
    "Simulator",
    "CompiledSimulator",
    "SimResult",
    "TraceRecord",
    "Value",
    "truthiness",
    "eval_expr",
    "Scheduler",
    "ElaborationError",
    "EvalError",
    "SimulationError",
    "SimulationBudget",
    "FinishRequest",
]
