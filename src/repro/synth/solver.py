"""Brute-force bit-vector solving for template free choices.

rtl-repair hands each template's free constants to an SMT solver; here
the same role is played by deterministic enumeration — "solving" a
template means building the small domain its free choice ranges over and
letting the harness score the surviving instantiations through the
:class:`~repro.core.backend.EvaluationBackend` (so caching, the lint
gate, supervision, and telemetry all apply unchanged).

Two pieces of the testbench trace feed the domains:

- :func:`mine_literals` collects every distinct 4-state value the oracle
  expects on the mismatched outputs — if a constant somewhere in the
  design is wrong, the right value is very often one the oracle itself
  demands at some timestep;
- :func:`literal_domain` combines that pool with the classic
  neighbourhood of the existing literal (off-by-one, zero, one,
  all-ones) and, for narrow literals, the *entire* 4-state-free value
  range — brute force is exact when the bit-vector is small.

Everything is deterministic: domains are built in a fixed order, deduped
by value, and capped, so the same scenario always enumerates the same
candidates in the same order (the engine's bit-identical-outcome
contract).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hdl import ast
from ..instrument.trace import SimulationTrace

#: Enumerate every value of a literal this narrow (2^4 = 16 candidates).
EXHAUSTIVE_WIDTH = 4

#: Cap on oracle-mined literal values kept in the pool.
MAX_MINED = 16

#: Cap on candidate instantiations a template may emit per site.
MAX_PER_SITE = 24


@dataclass(frozen=True)
class SolveContext:
    """Everything a template needs to enumerate and solve its sites.

    Attributes:
        fault_scope: Node ids inside fault-localized statements (empty
            set = localization unavailable; templates then consider every
            site).
        mismatch: Output names whose baseline trace disagrees with the
            oracle, sorted.
        literal_pool: Distinct ``(aval, bval)`` values mined from the
            oracle on the mismatched outputs, in first-seen order.
        suspect_names: Signal names implicated by localization (the
            mismatched outputs plus every identifier inside a localized
            statement) — lets declaration-level sites (e.g. a wrong
            vector width) inherit blame even though declarations are
            not statements.
        max_per_site: Candidate cap per site (deterministic truncation).
    """

    fault_scope: frozenset[int] = frozenset()
    mismatch: tuple[str, ...] = ()
    literal_pool: tuple[tuple[int, int], ...] = ()
    suspect_names: tuple[str, ...] = ()
    max_per_site: int = MAX_PER_SITE

    def covers(self, node_id: int | None) -> bool:
        """Whether a site is inside the localized fault region."""
        if node_id is None:
            return False
        if not self.fault_scope:
            return True
        return node_id in self.fault_scope


def fault_scope_ids(design: ast.Source, faults: "set[int]") -> frozenset[int]:
    """Every node id under any fault-localized node (sites inherit blame).

    Fault localization returns *statement* ids; template sites are often
    expression nodes inside them, so blame is propagated down each
    localized subtree.
    """
    scope: set[int] = set()
    for fault_id in faults:
        node = design.find(fault_id)
        if node is None:
            continue
        for sub in node.walk():
            if sub.node_id is not None:
                scope.add(sub.node_id)
    return frozenset(scope)


def mine_literals(
    oracle: SimulationTrace, mismatch: "set[str] | frozenset[str]"
) -> tuple[tuple[int, int], ...]:
    """Distinct oracle values on the mismatched outputs, first-seen order.

    Falls back to every recorded output when ``mismatch`` is empty (the
    baseline trace was unavailable), and keeps 4-state values — an
    expected ``x``/``z`` plane is as solvable as a two-state constant.
    """
    pool: dict[tuple[int, int], None] = {}
    for _, values in oracle.rows:
        for var in sorted(values):
            if mismatch and var not in mismatch:
                continue
            value = values[var]
            pool.setdefault((value.aval, value.bval))
            if len(pool) >= MAX_MINED:
                return tuple(pool)
    return tuple(pool)


def number_from_planes(width: int | None, aval: int, bval: int) -> ast.Number:
    """Build a literal node from VPI planes (4-state safe).

    Two-state values render as plain sized decimals; values with an
    x/z plane render as based binary so codegen round-trips them.
    """
    if bval == 0:
        return ast.Number.from_int(aval, width)
    w = width if width is not None else max(aval.bit_length(), bval.bit_length(), 1)
    bits = []
    for i in range(w - 1, -1, -1):
        a = (aval >> i) & 1
        b = (bval >> i) & 1
        bits.append({(0, 0): "0", (1, 0): "1", (0, 1): "z", (1, 1): "x"}[(a, b)])
    text = f"{w}'b{''.join(bits)}"
    return ast.Number(text, w, aval, bval)


def literal_domain(number: ast.Number, ctx: SolveContext) -> list[ast.Number]:
    """The replacement values to try for one literal, in solve order.

    Order: oracle-mined values first (most likely to be the demanded
    constant), then the off-by-one neighbourhood, zero/one/all-ones,
    then — for literals of width ≤ ``EXHAUSTIVE_WIDTH`` — every
    remaining two-state value.  The current value is excluded and the
    list is deduped and capped at ``ctx.max_per_site``.
    """
    width = number.width
    mask = (1 << width) - 1 if width is not None else None

    def clip(value: int) -> int:
        return value & mask if mask is not None else value

    seen: dict[tuple[int, int], None] = {(number.aval, number.bval): None}
    domain: list[ast.Number] = []

    def admit(aval: int, bval: int = 0) -> None:
        if len(domain) >= ctx.max_per_site:
            return
        if aval < 0:
            return
        key = (aval, bval)
        if key in seen:
            return
        seen[key] = None
        domain.append(number_from_planes(width, aval, bval))

    for aval, bval in ctx.literal_pool:
        if mask is not None:
            aval, bval = aval & mask, bval & mask
        admit(aval, bval)
    if number.bval == 0:
        admit(clip(number.aval + 1))
        if number.aval > 0:
            admit(number.aval - 1)
    admit(0)
    admit(1)
    if mask is not None:
        admit(mask)
    if width is not None and width <= EXHAUSTIVE_WIDTH:
        for value in range(1 << width):
            admit(value)
    return domain


__all__ = [
    "EXHAUSTIVE_WIDTH",
    "MAX_MINED",
    "MAX_PER_SITE",
    "SolveContext",
    "fault_scope_ids",
    "literal_domain",
    "mine_literals",
    "number_from_planes",
]
