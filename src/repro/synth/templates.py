"""Parameterized repair templates (rtl-repair's catalog, natively).

Each template mirrors one family from ``rtlrepair/templates/`` and is
the *inverse* of a :mod:`repro.mint.mutators` defect family: where the
mutator corrupts one site, the template enumerates every way of fixing
a site of that shape, with free choices (which literal, which signal,
which operator) expanded by :mod:`repro.synth.solver` into small
deterministic domains.

A template's ``instantiate(design, ctx)`` returns
:class:`Candidate`\\ s — single-``replace`` patches over the faulty
design — in a fixed order: sites in preorder, choices in solve order.
Sites outside the fault-localized region (``ctx.fault_scope``) are
skipped, which is what keeps enumeration tractable on larger designs.

The templates deliberately reuse the site machinery from
:mod:`repro.mint.mutators` (``_ASSIGNS``, ``_SIGNAL_KINDS``, operator
families, enclosing-module lookup) so the fixer and the defect factory
agree on what an editable site is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.patch import Edit, Patch
from ..hdl import ast
from ..mint.mutators import (
    _ASSIGNS,
    _OP_TO_FAMILY,
    _SIGNAL_KINDS,
    _enclosing_module,
    _lhs_base_name,
)
from .solver import SolveContext, literal_domain

#: Canonical operator order for synthesised right-hand sides (kept to
#: commutative bitwise/arith ops so pair enumeration needs no swaps).
_REBUILD_OPS = ("&", "|", "^", "+", "-")


@dataclass(frozen=True)
class Candidate:
    """One solved template instantiation: a single-edit repair patch."""

    patch: Patch
    site: int
    note: str


@dataclass(frozen=True)
class SynthTemplate:
    """One repair-template family the synth engine enumerates."""

    #: Registry key (shows up in operator stats and telemetry).
    name: str
    #: One-line summary for docs and events.
    description: str
    #: The mint defect families this template is the inverse of.
    repairs: tuple[str, ...]
    instantiate: Callable[[ast.Source, SolveContext], list[Candidate]]


def _replace(site: int, payload: ast.Node, note: str) -> Candidate:
    return Candidate(Patch([Edit("replace", site, payload)]), site, note)


def _covers_subtree(node: ast.Node, ctx: SolveContext) -> bool:
    """Whether any node under ``node`` carries localized blame."""
    if not ctx.fault_scope:
        return True
    return any(
        sub.node_id in ctx.fault_scope
        for sub in node.walk()
        if sub.node_id is not None
    )


# ----------------------------------------------------------------------
# add_inversions — inverse of negate_condition
# ----------------------------------------------------------------------


def _add_inversions(design: ast.Source, ctx: SolveContext) -> list[Candidate]:
    """Toggle ``!`` on conditions and ``~`` on assignment right-hand sides."""
    out: list[Candidate] = []
    for node in design.walk():
        if (
            isinstance(node, (ast.If, ast.Ternary))
            and node.cond is not None
            and node.cond.node_id is not None
            and ctx.covers(node.cond.node_id)
        ):
            cond = node.cond
            if isinstance(cond, ast.UnaryOp) and cond.op == "!":
                out.append(
                    _replace(cond.node_id, cond.operand.clone(), "drop '!' on condition")
                )
            else:
                out.append(
                    _replace(cond.node_id, ast.UnaryOp("!", cond.clone()), "add '!' on condition")
                )
        elif (
            isinstance(node, _ASSIGNS)
            and node.rhs is not None
            and node.rhs.node_id is not None
            and ctx.covers(node.rhs.node_id)
        ):
            rhs = node.rhs
            if isinstance(rhs, ast.UnaryOp) and rhs.op in ("~", "!"):
                out.append(
                    _replace(rhs.node_id, rhs.operand.clone(), f"drop '{rhs.op}' on rhs")
                )
            else:
                out.append(
                    _replace(rhs.node_id, ast.UnaryOp("~", rhs.clone()), "add '~' on rhs")
                )
    return out


# ----------------------------------------------------------------------
# flip_operator — inverse of wrong_operator
# ----------------------------------------------------------------------


def _flip_operator(design: ast.Source, ctx: SolveContext) -> list[Candidate]:
    """Swap each binary operator for the others in its family."""
    out: list[Candidate] = []
    for node in design.walk():
        if (
            isinstance(node, ast.BinaryOp)
            and node.node_id is not None
            and node.op in _OP_TO_FAMILY
            and ctx.covers(node.node_id)
        ):
            for alt in _OP_TO_FAMILY[node.op]:
                if alt == node.op:
                    continue
                payload = ast.BinaryOp(alt, node.left.clone(), node.right.clone())
                out.append(
                    _replace(node.node_id, payload, f"'{node.op}' -> '{alt}'")
                )
    return out


# ----------------------------------------------------------------------
# replace_literals — inverse of off_by_one (and constant-value defects)
# ----------------------------------------------------------------------


def _replace_literals(design: ast.Source, ctx: SolveContext) -> list[Candidate]:
    """Re-solve every in-scope literal over its brute-force domain.

    Declaration-level literals (vector widths) are not inside any
    localized *statement*, so they are admitted via ``suspect_names``
    instead of ``fault_scope``.
    """
    out: list[Candidate] = []
    suspect_decl_numbers: set[int] = set()
    if ctx.suspect_names:
        for module in design.modules:
            for decl in module.decls():
                if decl.name not in ctx.suspect_names:
                    continue
                for sub in decl.walk():
                    if isinstance(sub, ast.Number) and sub.node_id is not None:
                        suspect_decl_numbers.add(sub.node_id)
    for node in design.walk():
        if not isinstance(node, ast.Number) or node.node_id is None:
            continue
        if not (ctx.covers(node.node_id) or node.node_id in suspect_decl_numbers):
            continue
        for replacement in literal_domain(node, ctx):
            out.append(
                _replace(
                    node.node_id, replacement, f"{node.text} -> {replacement.text}"
                )
            )
    return out


# ----------------------------------------------------------------------
# replace_variables — inverse of misassigned_signal and stuck_constant
# ----------------------------------------------------------------------


def _module_rebuild_ops(module: ast.ModuleDef) -> tuple[str, ...]:
    """Operators to synthesise right-hand sides with: the module's own
    inventory (a design that never shifts is unlikely to need one),
    falling back to the bitwise trio."""
    inventory = {
        node.op
        for node in module.walk()
        if isinstance(node, ast.BinaryOp) and node.op in _REBUILD_OPS
    }
    ordered = tuple(op for op in _REBUILD_OPS if op in inventory)
    return ordered or ("&", "|", "^")


def _replace_variables(design: ast.Source, ctx: SolveContext) -> list[Candidate]:
    """Swap misassigned signal reads; rebuild constant-stuck right-hand sides.

    Two sub-enumerations per in-scope assignment:

    - every identifier the rhs reads, replaced by each other declared
      data signal (inverse of ``misassigned_signal``);
    - when the rhs reads *no* signal at all (a stuck constant), the
      whole rhs is rebuilt from the module's signals: bare reads first,
      then reduction-xors, then binary combinations over the module's
      own operator inventory, then negated reads (inverse of
      ``stuck_constant``).

    Sites whose assigned signal is itself a mismatched output solve
    first — the stuck driver usually feeds the failing output directly,
    and the per-site enumerations are wide enough that order decides
    how much budget a solve costs.  The mismatch set is part of the
    deterministic solve context, so this re-ordering never varies
    between runs of the same scenario.
    """
    priority: list[Candidate] = []
    out: list[Candidate] = []
    for node in design.walk():
        if not isinstance(node, _ASSIGNS) or node.node_id is None:
            continue
        if node.rhs is None or not ctx.covers(node.node_id):
            continue
        module = _enclosing_module(design, node.node_id)
        if module is None:
            continue
        lhs_name = _lhs_base_name(node.lhs)
        signals = [
            decl.name
            for decl in module.decls()
            if decl.kind in _SIGNAL_KINDS and decl.name != lhs_name
        ]
        idents = [n for n in node.rhs.walk() if isinstance(n, ast.Identifier)]
        site_out: list[Candidate] = []
        for ident in idents:
            if ident.node_id is None:
                continue
            for name in signals:
                if name == ident.name:
                    continue
                site_out.append(
                    _replace(
                        ident.node_id,
                        ast.Identifier(name),
                        f"'{ident.name}' -> '{name}'",
                    )
                )
        if not idents and node.rhs.node_id is not None:
            rhs_id = node.rhs.node_id
            # The rebuild may read the assigned signal itself (registers
            # routinely do: ``q <= ~q`` toggles, ``q <= q`` holds) — only
            # the misassigned-signal swaps above exclude the lhs.
            rebuild = signals + ([lhs_name] if lhs_name is not None else [])
            for name in rebuild:
                site_out.append(
                    _replace(rhs_id, ast.Identifier(name), f"rhs -> {name}")
                )
            # Reduction-xor over vector signals (whole and low prefixes):
            # registered parity/flag bits are the classic stuck victims.
            for decl in module.decls():
                if (
                    decl.kind not in _SIGNAL_KINDS
                    or decl.name == lhs_name
                    or not isinstance(decl.msb, ast.Number)
                    or not isinstance(decl.lsb, ast.Number)
                    or decl.lsb.aval != 0
                    or decl.msb.aval < 1
                ):
                    continue
                site_out.append(
                    _replace(
                        rhs_id,
                        ast.UnaryOp("^", ast.Identifier(decl.name)),
                        f"rhs -> ^{decl.name}",
                    )
                )
                for msb in range(1, decl.msb.aval):
                    payload = ast.UnaryOp(
                        "^",
                        ast.PartSelect(
                            ast.Identifier(decl.name),
                            ast.Number.from_int(msb),
                            ast.Number.from_int(0),
                        ),
                    )
                    site_out.append(
                        _replace(
                            rhs_id, payload, f"rhs -> ^{decl.name}[{msb}:0]"
                        )
                    )
            ops = _module_rebuild_ops(module)
            for op in ops:
                for i, left in enumerate(rebuild):
                    for right in rebuild[i + 1 :]:
                        payload = ast.BinaryOp(
                            op, ast.Identifier(left), ast.Identifier(right)
                        )
                        site_out.append(
                            _replace(rhs_id, payload, f"rhs -> {left} {op} {right}")
                        )
            for name in rebuild:
                site_out.append(
                    _replace(
                        rhs_id,
                        ast.UnaryOp("~", ast.Identifier(name)),
                        f"rhs -> ~{name}",
                    )
                )
        # The stuck-constant rebuild is the one enumeration that can
        # genuinely explode, so it gets a wider (but still fixed) cap.
        bucket = priority if lhs_name in ctx.mismatch else out
        bucket.extend(site_out[: ctx.max_per_site * 4])
    return priority + out


# ----------------------------------------------------------------------
# adjust_sensitivity — inverse of drop_sens_edge
# ----------------------------------------------------------------------


def _body_reads(always: ast.Always) -> list[str]:
    """Identifier names the process body references, first-seen order."""
    seen: dict[str, None] = {}
    if always.body is not None:
        for node in always.body.walk():
            if isinstance(node, ast.Identifier):
                seen.setdefault(node.name)
    return list(seen)


def _with_item(always: ast.Always, item: ast.SensItem) -> ast.Always:
    fixed = always.clone()
    assert fixed.senslist is not None
    fixed.senslist.items.append(item)
    return fixed


def _adjust_sensitivity(design: ast.Source, ctx: SolveContext) -> list[Candidate]:
    """Flip edges and re-add missing items on ``always`` sensitivity lists."""
    out: list[Candidate] = []
    for node in design.walk():
        if (
            not isinstance(node, ast.Always)
            or node.node_id is None
            or node.senslist is None
        ):
            continue
        items = node.senslist.items
        if any(item.edge == "all" for item in items):
            continue  # @* already sees everything
        if not _covers_subtree(node, ctx):
            continue
        for index, item in enumerate(items):
            if item.edge not in ("posedge", "negedge"):
                continue
            fixed = node.clone()
            flipped = fixed.senslist.items[index]
            flipped.edge = "negedge" if item.edge == "posedge" else "posedge"
            out.append(
                _replace(
                    node.node_id, fixed, f"flip {item.edge} -> {flipped.edge}"
                )
            )
        listed = {
            item.signal.name
            for item in items
            if isinstance(item.signal, ast.Identifier)
        }
        edged = any(item.edge in ("posedge", "negedge") for item in items)
        for name in _body_reads(node):
            if name in listed:
                continue
            if edged:
                for edge in ("posedge", "negedge"):
                    out.append(
                        _replace(
                            node.node_id,
                            _with_item(node, ast.SensItem(edge, ast.Identifier(name))),
                            f"add {edge} {name}",
                        )
                    )
            else:
                out.append(
                    _replace(
                        node.node_id,
                        _with_item(node, ast.SensItem("level", ast.Identifier(name))),
                        f"add {name}",
                    )
                )
    return out


# ----------------------------------------------------------------------
# The catalog — cheap, high-yield templates first, so the round-robin
# sweep spends its budget where a single chunk usually suffices.
# ----------------------------------------------------------------------

TEMPLATES: tuple[SynthTemplate, ...] = (
    SynthTemplate(
        "add_inversions",
        "toggle '!' on conditions and '~' on assignment right-hand sides",
        ("negate_condition",),
        _add_inversions,
    ),
    SynthTemplate(
        "flip_operator",
        "swap each binary operator for the others in its family",
        ("wrong_operator",),
        _flip_operator,
    ),
    SynthTemplate(
        "replace_literals",
        "re-solve literals by brute-force search over the 4-state domain",
        ("off_by_one", "stuck_constant"),
        _replace_literals,
    ),
    SynthTemplate(
        "adjust_sensitivity",
        "flip sensitivity edges and re-add dropped list items",
        ("drop_sens_edge",),
        _adjust_sensitivity,
    ),
    SynthTemplate(
        "replace_variables",
        "swap signal reads; rebuild constant-stuck right-hand sides",
        ("misassigned_signal", "stuck_constant"),
        _replace_variables,
    ),
)

#: name → template, for lookups from tests and docs generators.
TEMPLATES_BY_NAME: dict[str, SynthTemplate] = {t.name: t for t in TEMPLATES}


__all__ = ["Candidate", "SynthTemplate", "TEMPLATES", "TEMPLATES_BY_NAME"]
