"""Differential engine racing (``engine="race"``).

Runs the GP engine and the template synthesiser on the *same* scenario
— same config, same seeds, one shared evaluation backend — and reports
which engine won: first to a plausible repair, ranked by the
deterministic ``eval_sims`` budget counter (never wall-clock, which
would break the bit-identical-outcome contract the registry demands of
every engine, ``race`` included).  Wall-clock per engine is still
*measured* and carried on each entry for reporting — it just never
influences the verdict.

:func:`race_repair` is the registered runner (returns the winning
outcome); :func:`run_race` returns the full per-engine result for the
``repro.experiments race`` driver and the race smoke.
"""

from __future__ import annotations

import contextlib
import time as time_mod
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..core.backend import BACKEND_NAMES, EvaluationBackend, make_backend
from ..core.config import RepairConfig
from ..core.engines import get_engine
from ..core.harness import RepairOutcome, RepairProblem
from ..obs.observer import RepairObserver

#: The engines a race pits against each other, in run order.
RACE_ENGINES: tuple[str, ...] = ("cirfix", "synth")


@dataclass
class RaceEntry:
    """One engine's leg of a race."""

    engine: str
    outcome: RepairOutcome
    #: Wall-clock of this engine's whole leg (reporting only — the
    #: verdict is decided on ``eval_sims``).
    wall_seconds: float

    def stable_dict(self) -> dict[str, Any]:
        """The backend-independent summary (no wall-clock fields)."""
        return {
            "engine": self.engine,
            "plausible": self.outcome.plausible,
            "fitness": round(self.outcome.fitness, 6),
            "eval_sims": self.outcome.eval_sims,
            "edits": len(self.outcome.patch),
            "generations": self.outcome.generations,
        }


@dataclass
class RaceResult:
    """Both engines' legs over one scenario, plus the verdict."""

    scenario: str
    entries: list[RaceEntry]

    @property
    def winner(self) -> RaceEntry:
        """Deterministic verdict: the plausible entry with the fewest
        ``eval_sims`` (engine name breaks exact ties); when neither is
        plausible, the best fitness wins, cheapest-then-name on ties."""
        plausible = [e for e in self.entries if e.outcome.plausible]
        pool = plausible or self.entries
        if not pool:
            raise ValueError("empty race")
        return min(
            pool,
            key=lambda e: (
                -e.outcome.fitness if not plausible else 0.0,
                e.outcome.eval_sims,
                e.engine,
            ),
        )

    def entry(self, engine: str) -> RaceEntry:
        """Return the named engine's leg (``KeyError`` if it never ran)."""
        for e in self.entries:
            if e.engine == engine:
                return e
        raise KeyError(engine)

    def stable_dict(self) -> dict[str, Any]:
        """Backend-independent summary of the whole race."""
        return {
            "scenario": self.scenario,
            "winner": self.winner.engine,
            "entries": [e.stable_dict() for e in self.entries],
        }


def run_race(
    problem: RepairProblem,
    config: RepairConfig | None = None,
    seeds: tuple[int, ...] = (0,),
    backend: EvaluationBackend | None = None,
    observers: Sequence[RepairObserver] | None = None,
    cancel: Callable[[], bool] | None = None,
    checkpoint: "Callable[[dict[str, Any]], None] | None" = None,
    engines: tuple[str, ...] = RACE_ENGINES,
) -> RaceResult:
    """Run every engine in ``engines`` on ``problem`` and keep all legs.

    The engines run sequentially (deterministic event interleaving) and
    share one evaluation backend; observers see each engine's full trial
    telemetry back-to-back, in ``engines`` order.
    """
    config = config or RepairConfig()
    if config.backend not in BACKEND_NAMES:
        raise ValueError(
            f"unknown evaluation backend {config.backend!r}; "
            f"valid backends: {', '.join(BACKEND_NAMES)}"
        )
    runners = [(name, get_engine(name)) for name in engines]
    scope: contextlib.AbstractContextManager
    if backend is None:
        backend = make_backend(problem, config)
        scope = backend
    else:
        scope = contextlib.nullcontext()
    entries: list[RaceEntry] = []
    with scope:
        for name, runner in runners:
            started = time_mod.monotonic()
            outcome = runner(
                problem, config, seeds,
                backend=backend, observers=observers, cancel=cancel,
                checkpoint=checkpoint,
            )
            entries.append(
                RaceEntry(name, outcome, time_mod.monotonic() - started)
            )
    return RaceResult(problem.name, entries)


def race_repair(
    problem: RepairProblem,
    config: RepairConfig | None = None,
    seeds: tuple[int, ...] = (0,),
    backend: EvaluationBackend | None = None,
    observers: Sequence[RepairObserver] | None = None,
    cancel: Callable[[], bool] | None = None,
    checkpoint: "Callable[[dict[str, Any]], None] | None" = None,
) -> RepairOutcome:
    """The registered ``"race"`` runner: race both engines, return the
    winning outcome (see :class:`RaceResult.winner` for the verdict).

    Both legs share one checkpoint sink; snapshots carry the engine
    name, so a resumed race replays the cirfix leg (warm) before
    re-entering the synth leg it was interrupted in, or vice versa.
    """
    return run_race(
        problem, config, seeds,
        backend=backend, observers=observers, cancel=cancel,
        checkpoint=checkpoint,
    ).winner.outcome


__all__ = ["RACE_ENGINES", "RaceEntry", "RaceResult", "race_repair", "run_race"]
