"""The template-synthesis repair engine (``engine="synth"``).

Where the GP engine *evolves* patches, this engine *solves* them: it
enumerates the rtl-repair template catalog (:mod:`repro.synth.templates`)
over the fault-localized region of the design, expands each template's
free choices into small deterministic domains against the instrumented
testbench trace (:mod:`repro.synth.solver`), and scores the surviving
instantiations through the shared harness — so the evaluation cache,
lint gate, supervision, and telemetry apply exactly as they do for GP.

Contract (same as every engine behind the registry):

- **Deterministic**: the search uses no randomness at all — the seed is
  only recorded in the outcome.  Same scenario → bit-identical
  ``RepairOutcome`` on any backend, with or without observers.
- **Cooperative cancel**: polled at chunk boundaries via the shared
  budget probe.
- **Budgeted**: ``eval_sims`` ticks once per unique candidate, so
  ``config.max_fitness_evals`` bounds the solve exactly like a GP run.

Template rounds map onto the harness's generation machinery: each round
is one batched :meth:`~repro.core.harness.EngineHarness._evaluate_generation`
call, emitting the familiar chunk/generation events plus the
synth-specific :class:`~repro.obs.events.SynthTemplateEnumerated` /
:class:`~repro.obs.events.SynthSolveCompleted` lifecycle events.
"""

from __future__ import annotations

import contextlib
import logging
import time as time_mod
from typing import Any, Callable, Sequence

from ..core.backend import BACKEND_NAMES, EvaluationBackend, make_backend
from ..core.config import RepairConfig
from ..core.harness import EngineHarness, RepairOutcome, RepairProblem
from ..core.patch import Patch
from ..hdl import ast
from ..instrument.trace import output_mismatch
from ..obs.events import (
    PlausiblePatchFound,
    SynthSolveCompleted,
    SynthTemplateEnumerated,
    TrialStarted,
)
from ..obs.observer import ObserverSet, RepairObserver
from .solver import SolveContext, fault_scope_ids, mine_literals
from .templates import TEMPLATES, Candidate

logger = logging.getLogger("repro.synth")


class SynthEngine(EngineHarness):
    """One template-solving trial over one defect scenario.

    The ``seed`` parameter exists only to satisfy the engine contract
    (it is recorded in the outcome); the search itself is derandomized.
    """

    engine_name = "synth"

    def __init__(
        self,
        problem: RepairProblem,
        config: RepairConfig | None = None,
        seed: int = 0,
        backend: EvaluationBackend | None = None,
        observers: Sequence[RepairObserver] | None = None,
        cancel: Callable[[], bool] | None = None,
        checkpoint: "Callable[[dict[str, Any]], None] | None" = None,
    ):
        super().__init__(
            problem, config, seed, backend=backend, observers=observers,
            cancel=cancel, checkpoint=checkpoint,
        )
        #: Candidates enumerated per template (diagnostics).
        self.operator_stats = {template.name: 0 for template in TEMPLATES}

    # ------------------------------------------------------------------
    # Solve context
    # ------------------------------------------------------------------

    def _solve_context(self, design: ast.Source, faults: "set[int]") -> SolveContext:
        """Build the deterministic context templates solve against."""
        baseline = self.evaluate(Patch.empty())
        mismatch: set[str] = set()
        if baseline.trace is not None:
            mismatch = output_mismatch(self.problem.oracle, baseline.trace)
        suspects: dict[str, None] = {name: None for name in sorted(mismatch)}
        for fault_id in sorted(faults):
            node = design.find(fault_id)
            if node is None:
                continue
            for sub in node.walk():
                if isinstance(sub, ast.Identifier):
                    suspects.setdefault(sub.name)
        return SolveContext(
            fault_scope=fault_scope_ids(design, faults),
            mismatch=tuple(sorted(mismatch)),
            literal_pool=mine_literals(self.problem.oracle, mismatch),
            suspect_names=tuple(suspects),
        )

    # ------------------------------------------------------------------
    # Main loop: one batched round per template, early-stop on a winner
    # ------------------------------------------------------------------

    def _run(self) -> RepairOutcome:
        config = self.config
        start = time_mod.monotonic()
        deadline = start + config.max_wall_seconds
        if self.events:
            self.events.emit(
                TrialStarted(
                    scenario=self.problem.name,
                    seed=self.seed,
                    backend=config.backend,
                    workers=config.workers,
                    population_size=config.population_size,
                    max_generations=config.max_generations,
                )
            )
        out_of_budget = self._budget_probe(deadline)

        original = Patch.empty()
        original_eval = self.evaluate(original)
        original._fitness = original_eval.fitness  # type: ignore[attr-defined]
        history = [original_eval.fitness]
        logger.info(
            "[%s] synth start: fitness=%.4f", self.problem.name, original_eval.fitness
        )
        if original_eval.is_plausible:
            # Nothing to repair (shouldn't happen for real defect scenarios).
            return self._finish(original, original_eval, 0, start, history)

        variant = self.variant_tree(original)
        faults = self.fault_localization(original, variant)
        ctx = self._solve_context(variant, faults)

        best_patch, best_fitness = original, original_eval.fitness
        rounds = 0
        total_candidates = 0
        winner: Patch | None = None
        winner_template = ""
        for template in TEMPLATES:
            if winner is not None or out_of_budget():
                break
            candidates: list[Candidate] = template.instantiate(variant, ctx)
            self.operator_stats[template.name] += len(candidates)
            total_candidates += len(candidates)
            if self.events:
                self.events.emit(
                    SynthTemplateEnumerated(
                        template=template.name,
                        sites=len({c.site for c in candidates}),
                        candidates=len(candidates),
                    )
                )
            if not candidates:
                continue
            rounds += 1
            patches = [candidate.patch for candidate in candidates]
            for patch, evaluation in zip(
                patches, self._evaluate_generation(patches, out_of_budget)
            ):
                if evaluation is None:
                    continue  # early stop: budget exhausted or winner already seen
                patch._fitness = evaluation.fitness  # type: ignore[attr-defined]
                if evaluation.fitness > best_fitness:
                    best_fitness, best_patch = evaluation.fitness, patch
                if evaluation.fitness >= 1.0:
                    winner = patch
                    winner_template = template.name
                    break
            history.append(best_fitness)
            if self.events:
                self.events.emit(
                    self._generation_event(rounds - 1, patches, best_fitness)
                )
            # Template boundary = the synth engine's checkpoint boundary.
            self._save_checkpoint(rounds - 1, best_fitness, label=template.name)
            logger.info(
                "[%s] template %s: %d candidates, best=%.4f",
                self.problem.name, template.name, len(candidates), best_fitness,
            )

        final_patch = winner if winner is not None else best_patch
        final_eval = self.evaluate(final_patch)
        if winner is not None:
            if self.events:
                self.events.emit(
                    PlausiblePatchFound(
                        generation=rounds,
                        fitness=final_eval.fitness,
                        edits=len(final_patch),
                    )
                )
            logger.info(
                "[%s] plausible repair via %s; minimizing",
                self.problem.name, winner_template,
            )
            final_patch = self._minimize(final_patch)
            final_eval = self.evaluate(final_patch)
        if self.events:
            self.events.emit(
                SynthSolveCompleted(
                    templates=rounds,
                    candidates=total_candidates,
                    winner_template=winner_template,
                    plausible=final_eval.is_plausible,
                )
            )
        return self._finish(final_patch, final_eval, rounds, start, history)


def synth_repair(
    problem: RepairProblem,
    config: RepairConfig | None = None,
    seeds: tuple[int, ...] = (0,),
    backend: EvaluationBackend | None = None,
    observers: Sequence[RepairObserver] | None = None,
    cancel: Callable[[], bool] | None = None,
    checkpoint: "Callable[[dict[str, Any]], None] | None" = None,
) -> RepairOutcome:
    """The registered ``"synth"`` runner (engine-registry contract).

    The synth search is fully derandomized, so every seed in ``seeds``
    would replay the identical trial; exactly one trial runs, stamped
    with ``seeds[0]``.  The multi-seed signature is kept so the runner
    is drop-in interchangeable with :func:`repro.core.repair.repair`.
    """
    config = config or RepairConfig()
    if config.backend not in BACKEND_NAMES:
        raise ValueError(
            f"unknown evaluation backend {config.backend!r}; "
            f"valid backends: {', '.join(BACKEND_NAMES)}"
        )
    if not seeds:
        raise ValueError("synth_repair needs at least one seed")
    events = observers if isinstance(observers, ObserverSet) else ObserverSet(observers)
    scope: contextlib.AbstractContextManager
    if backend is None:
        backend = make_backend(problem, config)
        scope = backend  # backends are context managers; exit closes
    else:
        scope = contextlib.nullcontext()  # caller owns the backend
    with scope:
        return SynthEngine(
            problem, config, seeds[0], backend=backend, observers=events,
            cancel=cancel, checkpoint=checkpoint,
        ).run()


__all__ = ["SynthEngine", "synth_repair"]
