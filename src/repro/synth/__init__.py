"""Template-synthesis repair engine (rtl-repair style, ``engine="synth"``).

A second repair engine behind :mod:`repro.core.engines`: instead of
evolving patches with genetic programming, it enumerates the rtl-repair
template catalog over the fault-localized AST and brute-force-solves
each template's free choices against the instrumented testbench trace.
See ``docs/synthesis.md``.

Modules:

- :mod:`repro.synth.templates` — the template catalog (each the inverse
  of a :mod:`repro.mint.mutators` defect family);
- :mod:`repro.synth.solver` — deterministic free-choice domains
  (4-state literal search, oracle mining, fault-scope bookkeeping);
- :mod:`repro.synth.engine` — the :class:`SynthEngine` trial loop and
  the registered ``synth`` runner;
- :mod:`repro.synth.race` — differential racing of both engines
  (``engine="race"`` and the ``repro.experiments race`` driver).
"""

from .engine import SynthEngine, synth_repair
from .race import RACE_ENGINES, RaceResult, race_repair, run_race
from .solver import SolveContext, literal_domain, mine_literals
from .templates import TEMPLATES, TEMPLATES_BY_NAME, SynthTemplate

__all__ = [
    "RACE_ENGINES",
    "RaceResult",
    "SolveContext",
    "SynthEngine",
    "SynthTemplate",
    "TEMPLATES",
    "TEMPLATES_BY_NAME",
    "literal_domain",
    "mine_literals",
    "race_repair",
    "run_race",
    "synth_repair",
]
