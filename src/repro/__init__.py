"""repro — a from-scratch reproduction of CirFix (ASPLOS 2022).

CirFix automatically repairs defects in Verilog hardware designs with
genetic programming, a dataflow-based fault localization, and a fitness
function over instrumented-testbench traces.  This package re-implements
the complete system plus every substrate the paper depends on:

- :mod:`repro.hdl` — Verilog frontend (lexer, parser, numbered AST, codegen);
- :mod:`repro.sim` — event-driven 4-state simulator (the VCS stand-in);
- :mod:`repro.instrument` — testbench instrumentation and traces;
- :mod:`repro.core` — the CirFix repair engine itself;
- :mod:`repro.baselines` — the brute-force comparison search;
- :mod:`repro.benchsuite` — 11 projects / 32 defect scenarios (Table 2/3);
- :mod:`repro.experiments` — harnesses regenerating every table and figure.

Quickstart::

    from repro import repair_verilog

    outcome = repair_verilog(faulty_design, testbench, golden_design)
    if outcome.plausible:
        print(outcome.repaired_source)
"""

from __future__ import annotations

from .core.config import RepairConfig
from .core.oracle import ensure_instrumented, generate_oracle
from .core.repair import CirFixEngine, RepairOutcome, RepairProblem
from .hdl import generate, parse
from .sim import SimResult, Simulator

__version__ = "1.0.0"

__all__ = [
    "repair_verilog",
    "RepairConfig",
    "RepairProblem",
    "RepairOutcome",
    "CirFixEngine",
    "Simulator",
    "SimResult",
    "parse",
    "generate",
    "__version__",
]


def repair_verilog(
    faulty_design: str,
    testbench: str,
    golden_design: str,
    config: RepairConfig | None = None,
    seeds: tuple[int, ...] = (0, 1, 2),
) -> RepairOutcome:
    """One-call repair: oracle from the golden design, then run CirFix.

    Args:
        faulty_design: Verilog source of the design to repair.
        testbench: Verilog testbench (instrumented automatically if it has
            no ``$cirfix_record`` hook).
        golden_design: A previously-functioning version of the design used
            to generate the expected-behaviour trace (paper §4.1.2).
        config: Search budget; defaults to paper-style parameters — pass
            :data:`repro.core.config.TEST_CONFIG` or a custom config for
            laptop-scale runs.
        seeds: Independent trial seeds; the first plausible repair wins.

    Returns:
        The best :class:`RepairOutcome` across trials.
    """
    from .core.repair import repair

    golden = parse(golden_design)
    bench = ensure_instrumented(parse(testbench), golden)
    oracle = generate_oracle(golden, bench)
    problem = RepairProblem(parse(faulty_design), bench, oracle)
    return repair(problem, config, seeds)
