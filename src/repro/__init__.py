"""repro — a from-scratch reproduction of CirFix (ASPLOS 2022).

CirFix automatically repairs defects in Verilog hardware designs with
genetic programming, a dataflow-based fault localization, and a fitness
function over instrumented-testbench traces.  This package re-implements
the complete system plus every substrate the paper depends on:

- :mod:`repro.hdl` — Verilog frontend (lexer, parser, numbered AST, codegen);
- :mod:`repro.sim` — event-driven 4-state simulator (the VCS stand-in);
- :mod:`repro.instrument` — testbench instrumentation and traces;
- :mod:`repro.core` — the CirFix repair engine itself;
- :mod:`repro.lint` — static analysis and the pre-simulation candidate gate;
- :mod:`repro.obs` — run telemetry: structured tracing and metrics;
- :mod:`repro.api` — the stable high-level facade;
- :mod:`repro.cache` — the persistent sharded evaluation store;
- :mod:`repro.service` — repair-as-a-service: job daemon, typed job API;
- :mod:`repro.baselines` — the brute-force comparison search;
- :mod:`repro.benchsuite` — 11 projects / 32 defect scenarios (Table 2/3);
- :mod:`repro.experiments` — harnesses regenerating every table and figure.

Quickstart::

    from repro import repair_scenario, repair_verilog

    outcome = repair_verilog(faulty_design, testbench, golden_design)
    if outcome.plausible:
        print(outcome.repaired_source)

    # or run a benchmark scenario by id, with telemetry:
    from repro.obs import JsonlTraceObserver

    outcome = repair_scenario(
        "dec_numeric",
        seeds=(0,),
        observers=[JsonlTraceObserver("run.jsonl")],
    )
"""

from __future__ import annotations

from .api import (
    build_problem,
    lint,
    localize,
    materialize_request,
    repair_scenario,
    repair_verilog,
    run_request,
    simulate,
)
from .core.config import ConfigError, RepairConfig
from .core.engines import engine_names, get_engine, register_engine
from .core.oracle import ensure_instrumented, generate_oracle
from .core.repair import CirFixEngine, RepairOutcome, RepairProblem
from .hdl import generate, parse
from .service.jobs import JobStatus, RepairRequest, RepairResponse
from .sim import SimResult, Simulator

__version__ = "1.5.0"

__all__ = [
    # facade (repro.api)
    "repair_scenario",
    "repair_verilog",
    "run_request",
    "materialize_request",
    "localize",
    "simulate",
    "lint",
    "build_problem",
    # typed job API (repro.service.jobs)
    "RepairRequest",
    "RepairResponse",
    "JobStatus",
    # engine registry (repro.core.engines)
    "register_engine",
    "get_engine",
    "engine_names",
    # core types
    "ConfigError",
    "RepairConfig",
    "RepairProblem",
    "RepairOutcome",
    "CirFixEngine",
    "Simulator",
    "SimResult",
    "parse",
    "generate",
    "__version__",
]
