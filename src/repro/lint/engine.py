"""Lint driver: run a rule set over a source tree, report, profile.

:func:`lint_tree` is the core entry point (AST in, :class:`LintReport`
out); :func:`lint_text` parses first and is what ``repro lint`` and the
:func:`repro.api.lint` facade call.  A report's :meth:`LintReport.profile`
— rule code → finding count — is the unit the repair engine's candidate
gate compares: a candidate is pruned when any gated rule's count exceeds
the buggy baseline's (:func:`new_violations`).

Determinism: diagnostics are sorted (module, line, code, message) and
every rule is a pure function of the AST, so the same source text always
yields the same report — byte-for-byte in both renderings.  This is
fuzz-checked (``repro fuzz``'s ``lint`` oracle) and is what lets the
gate stay backend-independent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Sequence

from ..hdl import ast, parse
from .diagnostics import Diagnostic, LintRule
from .model import build_module_model
from .rules import RULES


@dataclass(frozen=True)
class LintReport:
    """All findings of one lint run, deterministically ordered."""

    diagnostics: tuple[Diagnostic, ...] = ()
    #: How many modules were analysed (context for "no findings").
    modules: int = 0

    @property
    def ok(self) -> bool:
        """True when there are no findings at all."""
        return not self.diagnostics

    @property
    def errors(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == "error")

    @property
    def warnings(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == "warning")

    def profile(self) -> dict[str, int]:
        """Rule code → finding count (the candidate gate's currency)."""
        counts: dict[str, int] = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
        return dict(sorted(counts.items()))

    def to_text(self) -> str:
        """Human-readable report: one line per finding plus a summary."""
        lines = [d.render() for d in self.diagnostics]
        lines.append(
            f"{len(self.diagnostics)} finding"
            f"{'s' if len(self.diagnostics) != 1 else ''} "
            f"({self.errors} error{'s' if self.errors != 1 else ''}, "
            f"{self.warnings} warning{'s' if self.warnings != 1 else ''}) "
            f"in {self.modules} module{'s' if self.modules != 1 else ''}"
        )
        return "\n".join(lines) + "\n"

    def to_json(self) -> str:
        """Machine-readable report (schema of ``repro lint --json``)."""
        return json.dumps(
            {
                "modules": self.modules,
                "findings": len(self.diagnostics),
                "errors": self.errors,
                "warnings": self.warnings,
                "profile": self.profile(),
                "diagnostics": [d.to_dict() for d in self.diagnostics],
            },
            indent=2,
        )


def lint_module(
    module: ast.ModuleDef, rules: Sequence[LintRule] | None = None
) -> list[Diagnostic]:
    """Run ``rules`` (default: all) over one module; unsorted findings."""
    model = build_module_model(module)
    findings: list[Diagnostic] = []
    for rule in rules if rules is not None else RULES:
        findings.extend(rule.check(model))
    return findings


def lint_tree(
    tree: ast.Source | ast.ModuleDef,
    rules: Sequence[LintRule] | None = None,
) -> LintReport:
    """Lint a parsed source tree (or a single module)."""
    modules = tree.modules if isinstance(tree, ast.Source) else [tree]
    findings: list[Diagnostic] = []
    for module in modules:
        findings.extend(lint_module(module, rules))
    return LintReport(diagnostics=tuple(sorted(findings)), modules=len(modules))


def lint_text(text: str, rules: Sequence[LintRule] | None = None) -> LintReport:
    """Parse Verilog source and lint it.

    Propagates :class:`~repro.hdl.parser.ParseError` /
    :class:`~repro.hdl.lexer.LexError` — a file that does not parse has
    no lint answer (the CLI maps this to exit code 2).
    """
    return lint_tree(parse(text), rules)


def new_violations(
    candidate: dict[str, int], baseline: dict[str, int]
) -> dict[str, int]:
    """Per-code findings the candidate has *beyond* the baseline.

    The gate's comparison: only codes whose count increased appear, with
    the increase as the value.  Fixing violations (counts going down)
    never penalises a candidate.
    """
    return {
        code: count - baseline.get(code, 0)
        for code, count in sorted(candidate.items())
        if count > baseline.get(code, 0)
    }
