"""repro.lint — static analysis over the Verilog AST.

A rule engine (:class:`LintRule` protocol, :class:`Diagnostic` findings
with node-id/line anchors and stable ``L0xx`` codes) plus an initial
eight-rule catalog: multiple drivers, blocking/non-blocking mixes,
incomplete sensitivity lists, inferred latches, combinational loops,
undeclared and unused identifiers, and width truncation.

Two consumers:

- ``repro lint file.v`` / :func:`repro.api.lint` — CI-style static
  checking of design sources;
- the repair engine's opt-in candidate gate
  (``RepairConfig.lint_gate``) — candidates whose lint profile adds
  violations over the buggy baseline are rejected before simulation
  (see ``docs/lint.md``).

Usage::

    from repro.lint import lint_text

    report = lint_text(Path("design.v").read_text())
    for diagnostic in report.diagnostics:
        print(diagnostic.render())
"""

from __future__ import annotations

from .diagnostics import SEVERITIES, Diagnostic, LintRule
from .engine import LintReport, lint_module, lint_text, lint_tree, new_violations
from .model import ModuleModel, ProcessInfo, build_module_model, classify_always
from .rules import DEFAULT_GATE_RULES, RULES, RULES_BY_KEY, resolve_rules

__all__ = [
    "Diagnostic",
    "LintRule",
    "LintReport",
    "SEVERITIES",
    "RULES",
    "RULES_BY_KEY",
    "DEFAULT_GATE_RULES",
    "resolve_rules",
    "lint_module",
    "lint_text",
    "lint_tree",
    "new_violations",
    "ModuleModel",
    "ProcessInfo",
    "build_module_model",
    "classify_always",
]
