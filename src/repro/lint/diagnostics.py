"""Diagnostic records and the rule protocol of the lint subsystem.

A :class:`Diagnostic` is one finding: a stable rule code (``L0xx``), a
human-readable rule slug, a severity, the module it was found in, a
message, and — when the parser recorded them — the ``node_id``/line
anchors of the offending construct.  Diagnostics are frozen and ordered,
so a report sorts deterministically and renders byte-stably.

A :class:`LintRule` inspects one module's :class:`~repro.lint.model.ModuleModel`
and yields diagnostics.  Rules must be pure functions of the model: no
randomness, no wall-clock, no mutation — that is what makes lint profiles
usable inside the repair engine's deterministic candidate gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .model import ModuleModel

#: Valid severities, most severe first.
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding, ordered for stable output."""

    #: Module the finding belongs to (sorts first: reports group by module).
    module: str
    #: 1-based source line anchor (0 when the construct has no line info;
    #: kept as an int so ordering stays total).
    line: int
    #: Stable rule code, e.g. ``"L001"``.
    code: str
    #: Human-readable rule slug, e.g. ``"multi-driver"``.
    rule: str
    #: ``"error"``, ``"warning"``, or ``"info"``.
    severity: str
    #: One-line description of the finding.
    message: str
    #: Preorder node id of the anchored AST node (None for module-level
    #: findings or synthesised nodes).
    node_id: int | None = None

    def location(self) -> str:
        """``module:line`` (line omitted when unknown)."""
        return f"{self.module}:{self.line}" if self.line else self.module

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping (schema of ``repro lint --json``)."""
        return {
            "code": self.code,
            "rule": self.rule,
            "severity": self.severity,
            "module": self.module,
            "line": self.line or None,
            "node_id": self.node_id,
            "message": self.message,
        }

    def render(self) -> str:
        """One human-readable report line."""
        return f"{self.location()}: {self.severity} [{self.code}/{self.rule}] {self.message}"


@runtime_checkable
class LintRule(Protocol):
    """One static-analysis rule over a module model.

    Implementations are stateless: ``check`` may be called on any number
    of models in any order and must yield the same diagnostics for the
    same model every time.
    """

    #: Stable code (``"L001"`` …) — never reused, never renumbered.
    code: str
    #: Human-readable slug (``"multi-driver"`` …), also stable.
    name: str
    #: Default severity of this rule's findings.
    severity: str

    def check(self, model: "ModuleModel") -> Iterator[Diagnostic]:
        """Yield every finding of this rule in ``model``'s module."""
        ...
