"""The lint rule catalog (codes L001–L008).

Every rule is a small stateless class satisfying the
:class:`~repro.lint.diagnostics.LintRule` protocol; the registry at the
bottom (:data:`RULES`, :func:`resolve_rules`) is what the engine, the CLI
and the candidate gate select from.  Codes are stable: they never change
meaning and are never reused, so golden snapshots and gate configurations
survive rule additions.

Severities encode how a finding relates to the repair search:

- ``error`` rules (multi-driver, comb-loop) describe structurally doomed
  designs — no simulation can make them behave; they form the default
  candidate-gate set together with inferred-latch;
- ``warning``/``info`` rules describe style and likely-bug patterns that
  a *correct* design may legitimately contain, so they report but do not
  gate by default (a repair is allowed to look like the golden design).
"""

from __future__ import annotations

from typing import Iterator

from ..hdl import ast
from ..hdl.dataflow import expr_names, lhs_names, lhs_read_names
from .diagnostics import Diagnostic, LintRule
from .model import (
    CONST_KINDS,
    LOOPVAR_KINDS,
    ModuleModel,
    ProcessInfo,
    anchor_line,
)


def _diag(
    rule: "LintRule",
    model: ModuleModel,
    message: str,
    node: ast.Node | None = None,
) -> Diagnostic:
    """Build one diagnostic anchored at ``node`` (or the module)."""
    anchor = node if node is not None else model.module
    return Diagnostic(
        module=model.module.name,
        line=anchor_line(anchor),
        code=rule.code,
        rule=rule.name,
        severity=rule.severity,
        message=message,
        node_id=anchor.node_id,
    )


# ----------------------------------------------------------------------
# L001 — multiple drivers
# ----------------------------------------------------------------------


class MultiDriverRule:
    """A name driven by more than one continuous assign / always block.

    ``initial`` blocks do not count as drivers (one-shot initialisation
    is the universal testbench idiom), and loop counters are exempt.
    Several assignments *inside one* always block are fine — the conflict
    is between concurrent drivers.
    """

    code = "L001"
    name = "multi-driver"
    severity = "error"

    def check(self, model: ModuleModel) -> Iterator[Diagnostic]:
        """Report each name with two or more concurrent drivers."""
        drivers: dict[str, list[tuple[str, ast.Node]]] = {}
        for ca in model.continuous:
            for name in lhs_names(ca.lhs):
                drivers.setdefault(name, []).append(("assign", ca))
        for proc in model.processes:
            if proc.kind == "initial":
                continue
            for name in sorted(proc.assigned):
                drivers.setdefault(name, []).append(("always", proc.item))
        for name in sorted(drivers):
            if model.is_loopvar(name):
                continue
            if "event" in model.decl_kinds.get(name, set()):
                continue
            sites = drivers[name]
            if len(sites) < 2:
                continue
            n_assign = sum(1 for kind, _ in sites if kind == "assign")
            n_always = len(sites) - n_assign
            parts = []
            if n_assign:
                parts.append(f"{n_assign} continuous assign{'s' if n_assign > 1 else ''}")
            if n_always:
                parts.append(f"{n_always} always block{'s' if n_always > 1 else ''}")
            # Anchor at the second driver — the one creating the conflict.
            yield _diag(
                self, model,
                f"'{name}' has multiple drivers ({' and '.join(parts)})",
                sites[1][1],
            )


# ----------------------------------------------------------------------
# L002 — blocking / non-blocking mix
# ----------------------------------------------------------------------


class BlockingMixRule:
    """Blocking and non-blocking assignments mixed inside one always.

    Loop counters (``integer``/``genvar``/``time`` variables) are exempt:
    ``for (i = 0; ...)`` with ``<=`` datapath assignments is idiomatic.
    Timed (sensitivity-less) and ``initial`` processes are testbench
    machinery and are not checked.
    """

    code = "L002"
    name = "blocking-nonblocking-mix"
    severity = "warning"

    def check(self, model: ModuleModel) -> Iterator[Diagnostic]:
        """Report each always block mixing assignment styles."""
        for proc in model.processes:
            if proc.kind not in ("comb_star", "comb", "seq"):
                continue
            blocking = [
                a for a in proc.blocking
                if not all(model.is_loopvar(n) for n in lhs_names(a.lhs) or {""})
            ]
            if blocking and proc.nonblocking:
                yield _diag(
                    self, model,
                    f"always block mixes {len(blocking)} blocking and "
                    f"{len(proc.nonblocking)} non-blocking assignments",
                    proc.item,
                )


# ----------------------------------------------------------------------
# L003 — incomplete sensitivity list
# ----------------------------------------------------------------------


class IncompleteSensitivityRule:
    """A level-sensitive always reads signals missing from its list.

    ``always @*`` is complete by construction; edge-triggered and timed
    processes are exempt.  Names the process itself assigns are treated
    as internal (reading them back is self-feedback, the comb-loop
    rule's business), and parameters/loop counters are not events.
    """

    code = "L003"
    name = "incomplete-sensitivity"
    severity = "warning"

    def check(self, model: ModuleModel) -> Iterator[Diagnostic]:
        """Report each level-sensitive block with missing events."""
        for proc in model.processes:
            if proc.kind != "comb":
                continue
            relevant = {n for n in proc.external_reads if model.is_signal(n)}
            missing = sorted(relevant - set(proc.sens_names) - set(proc.assigned))
            if missing:
                yield _diag(
                    self, model,
                    "sensitivity list is missing read signal"
                    f"{'s' if len(missing) > 1 else ''}: {', '.join(missing)}",
                    proc.item,
                )


# ----------------------------------------------------------------------
# L004 — inferred latch
# ----------------------------------------------------------------------


def _may_must(stmt: ast.Stmt | None) -> tuple[set[str], set[str]]:
    """(names assigned on some path, names assigned on every path)."""
    if stmt is None:
        return set(), set()
    if isinstance(stmt, ast.Block):
        may: set[str] = set()
        must: set[str] = set()
        for sub in stmt.stmts:
            m, n = _may_must(sub)
            may |= m
            must |= n
        return may, must
    if isinstance(stmt, (ast.BlockingAssign, ast.NonBlockingAssign)):
        names = lhs_names(stmt.lhs)
        return set(names), set(names)
    if isinstance(stmt, ast.If):
        then_may, then_must = _may_must(stmt.then_stmt)
        else_may, else_must = _may_must(stmt.else_stmt)
        may = then_may | else_may
        must = (then_must & else_must) if stmt.else_stmt is not None else set()
        return may, must
    if isinstance(stmt, ast.Case):
        arms = [_may_must(item.stmt) for item in stmt.items]
        may = set().union(*(a[0] for a in arms)) if arms else set()
        has_default = any(not item.exprs for item in stmt.items)
        if arms and has_default:
            must = set.intersection(*(a[1] for a in arms))
        else:
            must = set()
        return may, must
    if isinstance(stmt, ast.For):
        # Combinational for-loops conventionally have static bounds and
        # execute; treating the body as taken avoids flagging the
        # ``for (i..) out[i] = in[i];`` unrolling idiom as a latch.
        init_may, init_must = _may_must(stmt.init)
        step_may, step_must = _may_must(stmt.step)
        body_may, body_must = _may_must(stmt.body)
        return (
            init_may | step_may | body_may,
            init_must | step_must | body_must,
        )
    if isinstance(stmt, (ast.While, ast.RepeatStmt, ast.Forever)):
        return _may_must(stmt.body)[0], set()
    if isinstance(stmt, (ast.Wait, ast.DelayStmt, ast.EventControl)):
        return _may_must(stmt.body)
    return set(), set()


class InferredLatchRule:
    """A combinational always assigns a register on some but not all paths.

    The classic incomplete-``if``/``case`` pattern: synthesis infers a
    level-sensitive latch to hold the stale value.  One diagnostic per
    latched name, so the candidate gate sees each newly latched signal as
    a new violation.
    """

    code = "L004"
    name = "inferred-latch"
    severity = "warning"

    def check(self, model: ModuleModel) -> Iterator[Diagnostic]:
        """Report each register latched by an incomplete path."""
        for proc in model.processes:
            if not proc.is_combinational:
                continue
            may, must = _may_must(proc.item.body)
            for name in sorted(may - must):
                if not model.is_register(name):
                    continue
                yield _diag(
                    self, model,
                    f"'{name}' is not assigned on every path through this "
                    "combinational always: latch inferred",
                    proc.item,
                )


# ----------------------------------------------------------------------
# L005 — combinational loop
# ----------------------------------------------------------------------


def _comb_dependencies(model: ModuleModel) -> dict[str, tuple[set[str], ast.Node]]:
    """name → (combinationally-read names it depends on, driver anchor).

    Process edges come from *external* reads only: a name the block
    overwrites before reading (``p = 0; ... p = p ^ a;``) is an internal
    accumulator, not feedback from the previous activation.  Loop
    counters never carry combinational state and are excluded on both
    sides of every edge.
    """
    deps: dict[str, tuple[set[str], ast.Node]] = {}
    for ca in model.continuous:
        reads = {
            n
            for n in expr_names(ca.rhs) | lhs_read_names(ca.lhs)
            if not model.is_loopvar(n)
        }
        for name in lhs_names(ca.lhs):
            entry = deps.setdefault(name, (set(), ca))
            entry[0].update(reads)
    for proc in model.processes:
        if not proc.is_combinational:
            continue
        # Only reads the process re-triggers on can propagate through it
        # combinationally; @* sees everything it externally reads.
        visible = (
            set(proc.external_reads)
            if proc.kind == "comb_star"
            else set(proc.external_reads) & set(proc.sens_names)
        )
        visible = {n for n in visible if not model.is_loopvar(n)}
        for name in proc.assigned:
            if model.is_loopvar(name):
                continue
            entry = deps.setdefault(name, (set(), proc.item))
            entry[0].update(visible)
    return deps


def _strongly_connected(graph: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan's SCC over a name graph (iterative; deterministic order)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    for root in sorted(graph):
        if root in index:
            continue
        work: list[tuple[str, Iterator[str]]] = []
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        work.append((root, iter(sorted(graph.get(root, ())))))
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in graph:
                    continue
                if child not in index:
                    index[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(sorted(scc))
    return sccs


class CombLoopRule:
    """A cycle in the combinational dataflow graph.

    Edges: a continuous assign's target depends on every name its RHS
    reads; a combinational always' targets depend on the reads the block
    re-triggers on.  Sequential blocks break the cycle (the register is
    the loop's state element) and so contribute no edges.  One diagnostic
    per strongly connected component.
    """

    code = "L005"
    name = "comb-loop"
    severity = "error"

    def check(self, model: ModuleModel) -> Iterator[Diagnostic]:
        """Report each strongly connected dataflow component."""
        deps = _comb_dependencies(model)
        graph = {name: reads for name, (reads, _) in deps.items()}
        for scc in _strongly_connected(graph):
            if len(scc) == 1:
                name = scc[0]
                if name not in graph.get(name, ()):  # no self-edge
                    continue
            cycle = " -> ".join(scc + [scc[0]])
            yield _diag(
                self, model,
                f"combinational feedback loop: {cycle}",
                deps[scc[0]][1],
            )


# ----------------------------------------------------------------------
# L006 — undeclared identifier
# ----------------------------------------------------------------------


class UndeclaredIdentifierRule:
    """A referenced name with no declaration in the module.

    The known-name set covers declarations, parameters, ports, functions,
    tasks, function/task locals and return registers, instance names, and
    named blocks.  System names (``$time``…) are the simulator's.
    """

    code = "L006"
    name = "undeclared-ident"
    severity = "warning"

    def check(self, model: ModuleModel) -> Iterator[Diagnostic]:
        """Report each name referenced without a declaration."""
        known: set[str] = set(model.decl_kinds)
        known |= set(model.module.port_names)
        known |= set(model.functions)
        known |= set(model.tasks)
        known |= model.named_blocks
        known |= {inst.name for inst in model.instances}
        for func in model.functions.values():
            known |= {decl.name for decl in func.decls}
        for task in model.tasks.values():
            known |= {decl.name for decl in task.decls}
        for name in sorted(model.references):
            if name in known or name.startswith("$"):
                continue
            yield _diag(
                self, model,
                f"'{name}' is used but never declared",
                model.references[name],
            )


# ----------------------------------------------------------------------
# L007 — unused declaration
# ----------------------------------------------------------------------


class UnusedDeclRule:
    """A declared net/variable that nothing reads or writes.

    Ports and parameters are part of the module's interface and are
    never flagged.
    """

    code = "L007"
    name = "unused-decl"
    severity = "info"

    def check(self, model: ModuleModel) -> Iterator[Diagnostic]:
        """Report each declaration nothing references."""
        for name in sorted(model.decl_nodes):
            kinds = model.decl_kinds[name]
            if kinds & CONST_KINDS or "genvar" in kinds:
                continue
            if model.is_port(name):
                continue
            if name in model.references:
                continue
            decl = model.decl_nodes[name]
            yield _diag(
                self, model,
                f"'{name}' is declared but never used",
                decl,
            )


# ----------------------------------------------------------------------
# L008 — width mismatch
# ----------------------------------------------------------------------

_CONST_FOLD_OPS = {"+", "-", "*"}


def _const_int(expr: ast.Expr | None, model: ModuleModel, depth: int = 0) -> int | None:
    """Evaluate a compile-time-constant expression, or None."""
    if expr is None or depth > 8:
        return None
    if isinstance(expr, ast.Number):
        return expr.aval if expr.bval == 0 else None
    if isinstance(expr, ast.Identifier):
        if expr.name in model.params:
            return _const_int(model.params[expr.name], model, depth + 1)
        return None
    if isinstance(expr, ast.UnaryOp):
        value = _const_int(expr.operand, model, depth + 1)
        if value is None:
            return None
        if expr.op == "-":
            return -value
        if expr.op == "+":
            return value
        return None
    if isinstance(expr, ast.BinaryOp) and expr.op in _CONST_FOLD_OPS:
        left = _const_int(expr.left, model, depth + 1)
        right = _const_int(expr.right, model, depth + 1)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        return left * right
    return None


def _range_width(
    msb: ast.Expr | None, lsb: ast.Expr | None, model: ModuleModel
) -> int | None:
    if msb is None or lsb is None:
        return 1
    high = _const_int(msb, model)
    low = _const_int(lsb, model)
    if high is None or low is None:
        return None
    return abs(high - low) + 1


def _decl_width(decl: ast.Decl, model: ModuleModel) -> int | None:
    if decl.kind in ("integer", "time"):
        return 32 if decl.kind == "integer" else 64
    if decl.kind in ("real", "event"):
        return None
    return _range_width(decl.msb, decl.lsb, model)


_BOOL_OPS = frozenset(
    {"==", "!=", "===", "!==", "<", "<=", ">", ">=", "&&", "||"}
)


def _expr_width(expr: ast.Expr | None, model: ModuleModel) -> int | None:
    """Static bit width of an expression, or None when not derivable.

    Unsized literals and unknown names yield None, which makes the rule
    conservative: ``x + 1`` never flags, only fully-sized truncations do.
    """
    if expr is None:
        return None
    if isinstance(expr, ast.Number):
        return expr.width
    if isinstance(expr, ast.Identifier):
        decl = model.decl_nodes.get(expr.name)
        if decl is None:
            return None
        if decl.array_msb is not None:
            return None  # bare memory reference: width is per-element
        return _decl_width(decl, model)
    if isinstance(expr, ast.Index):
        target = expr.target
        if isinstance(target, ast.Identifier):
            decl = model.decl_nodes.get(target.name)
            if decl is not None and decl.array_msb is not None:
                return _range_width(decl.msb, decl.lsb, model)  # word select
        return 1  # bit select
    if isinstance(expr, ast.PartSelect):
        return _range_width(expr.msb, expr.lsb, model)
    if isinstance(expr, ast.Concat):
        total = 0
        for part in expr.parts:
            width = _expr_width(part, model)
            if width is None:
                return None
            total += width
        return total
    if isinstance(expr, ast.Repeat_):
        count = _const_int(expr.count, model)
        width = _expr_width(expr.value, model)
        if count is None or width is None:
            return None
        return count * width
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "!" or expr.op not in ("~", "+", "-"):
            return 1  # logical not / reductions
        return _expr_width(expr.operand, model)
    if isinstance(expr, ast.BinaryOp):
        if expr.op in _BOOL_OPS:
            return 1
        if expr.op in ("<<", ">>", "<<<", ">>>"):
            return _expr_width(expr.left, model)
        left = _expr_width(expr.left, model)
        right = _expr_width(expr.right, model)
        if left is None or right is None:
            return None
        return max(left, right)
    if isinstance(expr, ast.Ternary):
        true_w = _expr_width(expr.true_expr, model)
        false_w = _expr_width(expr.false_expr, model)
        if true_w is None or false_w is None:
            return None
        return max(true_w, false_w)
    if isinstance(expr, ast.FunctionCall):
        func = model.functions.get(expr.name)
        if func is not None:
            return _range_width(func.msb, func.lsb, model)
        return None
    return None


class WidthMismatchRule:
    """An assignment whose RHS is statically wider than its target.

    Only flags when *both* widths are derivable (sized literals, declared
    ranges, resolvable parameters) — silent truncation of a known-wider
    value.  Implicit extension (narrow RHS) is idiomatic and not flagged.
    """

    code = "L008"
    name = "width-mismatch"
    severity = "warning"

    def _check_assign(
        self, model: ModuleModel, node: ast.Node, lhs: ast.Expr, rhs: ast.Expr
    ) -> Iterator[Diagnostic]:
        lhs_width = _expr_width(lhs, model)
        rhs_width = _expr_width(rhs, model)
        if lhs_width is None or rhs_width is None or rhs_width <= lhs_width:
            return
        targets = ", ".join(sorted(lhs_names(lhs))) or "target"
        yield _diag(
            self, model,
            f"assignment truncates a {rhs_width}-bit value into "
            f"{lhs_width}-bit '{targets}'",
            node,
        )

    def check(self, model: ModuleModel) -> Iterator[Diagnostic]:
        """Report each statically-truncating assignment."""
        for ca in model.continuous:
            yield from self._check_assign(model, ca, ca.lhs, ca.rhs)
        for proc in model.processes:
            for assign in proc.blocking + proc.nonblocking:
                yield from self._check_assign(model, assign, assign.lhs, assign.rhs)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

#: Every rule, in code order — the default rule set of :func:`repro.lint.lint_tree`.
RULES: tuple[LintRule, ...] = (
    MultiDriverRule(),
    BlockingMixRule(),
    IncompleteSensitivityRule(),
    InferredLatchRule(),
    CombLoopRule(),
    UndeclaredIdentifierRule(),
    UnusedDeclRule(),
    WidthMismatchRule(),
)

#: Code → rule and slug → rule, for spec resolution.
RULES_BY_KEY: dict[str, LintRule] = {}
for _rule in RULES:
    RULES_BY_KEY[_rule.code] = _rule
    RULES_BY_KEY[_rule.name] = _rule

#: The candidate gate's default rule set: the structurally-doomed trio.
#: Style rules (L002/L003/L006/L007/L008) stay report-only by default so
#: the gate can never reject a repair for resembling the golden design.
DEFAULT_GATE_RULES = "multi-driver,inferred-latch,comb-loop"


def resolve_rules(spec: str | None) -> tuple[LintRule, ...]:
    """Resolve a comma-separated spec of codes/slugs to rule instances.

    ``None`` or ``"all"`` selects every rule.  Raises ``ValueError``
    naming the first unknown entry.  The result is deduplicated and in
    canonical code order regardless of spec order.
    """
    if spec is None or spec.strip().lower() in ("", "all"):
        return RULES
    chosen: set[str] = set()
    for entry in spec.split(","):
        key = entry.strip()
        if not key:
            continue
        rule = RULES_BY_KEY.get(key)
        if rule is None:
            raise ValueError(
                f"unknown lint rule {key!r} "
                f"(valid: {', '.join(r.code + '/' + r.name for r in RULES)})"
            )
        chosen.add(rule.code)
    return tuple(rule for rule in RULES if rule.code in chosen)
