"""Per-module semantic model the lint rules run against.

:func:`build_module_model` walks one :class:`~repro.hdl.ast.ModuleDef`
once and precomputes everything the rules need: declarations by name,
parameter values, processes (``always``/``initial``) classified as
combinational / sequential / timed, each process's reads, writes, and
assignment styles, continuous assigns, instances, functions and tasks.
Rules then run as cheap dictionary lookups — the model walk is the only
full traversal per module, which matters when the repair engine lints
thousands of candidate mutants.

Classification of ``always`` blocks mirrors common lint practice:

- no sensitivity list at all → ``timed`` (a free-running testbench-style
  process; combinational rules do not apply);
- any ``@*`` item → ``comb_star``;
- every item edge-triggered (``posedge``/``negedge``) → ``seq``;
- every item level-sensitive → ``comb``;
- a mix of edges and levels → ``seq`` (asynchronous set/reset style —
  treating it as sequential keeps the latch/sensitivity rules quiet on
  the classic ``@(posedge clk or negedge rst_n)`` idiom, where the level
  name is a misuse the simulator tolerates).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl import ast
from ..hdl.dataflow import expr_names, lhs_names, lhs_read_names

#: Declaration kinds that name a net or variable carrying design state.
SIGNAL_KINDS = frozenset(
    {"input", "output", "inout", "wire", "reg", "tri", "supply0", "supply1"}
)
#: Kinds excluded from driver/latch analysis (simulation bookkeeping).
LOOPVAR_KINDS = frozenset({"integer", "real", "genvar", "time"})
#: Kinds that name compile-time constants.
CONST_KINDS = frozenset({"parameter", "localparam"})


@dataclass
class ProcessInfo:
    """One ``always`` or ``initial`` process, pre-digested for the rules."""

    item: ast.Always | ast.Initial
    #: ``"comb_star"`` | ``"comb"`` | ``"seq"`` | ``"timed"`` | ``"initial"``
    kind: str
    #: Names listed in the sensitivity list (edge and level items alike).
    sens_names: frozenset[str] = frozenset()
    #: Names this process assigns → the assignment nodes, in body order.
    assigned: dict[str, list[ast.Stmt]] = field(default_factory=dict)
    #: Names the process reads anywhere (RHS, guards, subscripts, args).
    reads: set[str] = field(default_factory=set)
    #: Names the process reads *before* any dominating blocking write in
    #: the same activation — the values that actually flow in from the
    #: previous activation.  A ``@*`` multiplier that does ``p = 0`` and
    #: then accumulates into ``p`` reads ``p`` internally, not
    #: externally; only external reads create combinational dependencies
    #: or belong in a sensitivity list.
    external_reads: set[str] = field(default_factory=set)
    blocking: list[ast.BlockingAssign] = field(default_factory=list)
    nonblocking: list[ast.NonBlockingAssign] = field(default_factory=list)

    @property
    def is_combinational(self) -> bool:
        return self.kind in ("comb_star", "comb")


@dataclass
class ModuleModel:
    """Everything the rules need to know about one module."""

    module: ast.ModuleDef
    #: Name → declaration kinds (``output reg x`` gives ``{"output"}`` with
    #: ``reg_flag`` folded in; a separate ``reg x`` decl adds ``"reg"``).
    decl_kinds: dict[str, set[str]] = field(default_factory=dict)
    #: Name → first declaration item (anchor for per-decl diagnostics).
    decl_nodes: dict[str, ast.Decl] = field(default_factory=dict)
    #: Parameter/localparam name → init expression.
    params: dict[str, ast.Expr | None] = field(default_factory=dict)
    continuous: list[ast.ContinuousAssign] = field(default_factory=list)
    processes: list[ProcessInfo] = field(default_factory=list)
    functions: dict[str, ast.FunctionDef] = field(default_factory=dict)
    tasks: dict[str, ast.TaskDef] = field(default_factory=dict)
    instances: list[ast.Instance] = field(default_factory=list)
    #: Named ``begin : label`` blocks (targets of ``disable``).
    named_blocks: set[str] = field(default_factory=set)
    #: Every name referenced anywhere in the module → one anchor node.
    references: dict[str, ast.Node] = field(default_factory=dict)

    def is_signal(self, name: str) -> bool:
        """Declared as a net/variable (not a parameter or loop counter)."""
        return bool(self.decl_kinds.get(name, set()) & SIGNAL_KINDS)

    def is_register(self, name: str) -> bool:
        """Procedurally assignable: ``reg`` or a ``reg``-flagged port."""
        kinds = self.decl_kinds.get(name, set())
        if "reg" in kinds:
            return True
        decl = self.decl_nodes.get(name)
        return decl is not None and decl.reg_flag

    def is_loopvar(self, name: str) -> bool:
        """Declared as a loop counter / simulation variable."""
        return bool(self.decl_kinds.get(name, set()) & LOOPVAR_KINDS)

    def is_port(self, name: str) -> bool:
        """Listed in the module's port list."""
        return name in self.module.port_names


def classify_always(always: ast.Always) -> tuple[str, frozenset[str]]:
    """(kind, sensitivity names) for one ``always`` block."""
    if always.senslist is None or not always.senslist.items:
        return "timed", frozenset()
    items = always.senslist.items
    if any(item.edge == "all" for item in items):
        return "comb_star", frozenset()
    names: set[str] = set()
    for item in items:
        names |= expr_names(item.signal)
    edges = {item.edge for item in items}
    if "level" not in edges:
        return "seq", frozenset(names)
    if edges == {"level"}:
        return "comb", frozenset(names)
    return "seq", frozenset(names)  # mixed edge + level: async-reset style


def _collect_stmt(stmt: ast.Stmt | None, info: ProcessInfo) -> None:
    """Fold one statement subtree into a process's reads/writes."""
    if stmt is None:
        return
    if isinstance(stmt, ast.Block):
        for sub in stmt.stmts:
            _collect_stmt(sub, info)
    elif isinstance(stmt, (ast.BlockingAssign, ast.NonBlockingAssign)):
        for name in lhs_names(stmt.lhs):
            info.assigned.setdefault(name, []).append(stmt)
        info.reads |= expr_names(stmt.rhs)
        info.reads |= lhs_read_names(stmt.lhs)
        info.reads |= expr_names(stmt.delay)
        if isinstance(stmt, ast.BlockingAssign):
            info.blocking.append(stmt)
        else:
            info.nonblocking.append(stmt)
    elif isinstance(stmt, ast.If):
        info.reads |= expr_names(stmt.cond)
        _collect_stmt(stmt.then_stmt, info)
        _collect_stmt(stmt.else_stmt, info)
    elif isinstance(stmt, ast.Case):
        info.reads |= expr_names(stmt.expr)
        for item in stmt.items:
            for expr in item.exprs:
                info.reads |= expr_names(expr)
            _collect_stmt(item.stmt, info)
    elif isinstance(stmt, ast.For):
        _collect_stmt(stmt.init, info)
        info.reads |= expr_names(stmt.cond)
        _collect_stmt(stmt.step, info)
        _collect_stmt(stmt.body, info)
    elif isinstance(stmt, ast.While):
        info.reads |= expr_names(stmt.cond)
        _collect_stmt(stmt.body, info)
    elif isinstance(stmt, ast.RepeatStmt):
        info.reads |= expr_names(stmt.count)
        _collect_stmt(stmt.body, info)
    elif isinstance(stmt, ast.Forever):
        _collect_stmt(stmt.body, info)
    elif isinstance(stmt, ast.Wait):
        info.reads |= expr_names(stmt.cond)
        _collect_stmt(stmt.body, info)
    elif isinstance(stmt, ast.DelayStmt):
        info.reads |= expr_names(stmt.delay)
        _collect_stmt(stmt.body, info)
    elif isinstance(stmt, ast.EventControl):
        if stmt.senslist is not None:
            for item in stmt.senslist.items:
                info.reads |= expr_names(item.signal)
        _collect_stmt(stmt.body, info)
    elif isinstance(stmt, ast.EventTrigger):
        info.reads.add(stmt.name)
    elif isinstance(stmt, (ast.SysTaskCall, ast.TaskCall)):
        for arg in stmt.args:
            info.reads |= expr_names(arg)
    # NullStmt / Disable: nothing to fold (Disable targets a block label,
    # which the reference collector picks up separately).


def _dominated_names(lhs: ast.Expr) -> set[str]:
    """Names a blocking write to ``lhs`` fully overwrites.

    A plain identifier (or a concat of them) dominates later reads; an
    indexed or part-selected write only touches a slice, so reads of the
    base name elsewhere may still see the previous activation's value.
    """
    if isinstance(lhs, ast.Identifier):
        return {lhs.name}
    if isinstance(lhs, ast.Concat):
        names: set[str] = set()
        for part in lhs.parts:
            names |= _dominated_names(part)
        return names
    return set()


def _external_reads(stmt: ast.Stmt | None, written: set[str]) -> set[str]:
    """Names ``stmt`` reads before a dominating blocking write.

    Walks in execution order, tracking the set of names that are
    *must-written* so far on every path (``written``, mutated in place).
    A read of a name already in ``written`` sees the value computed in
    this activation — an internal wire of the process, not a dependency
    on prior state.  Non-blocking writes never dominate (they land after
    the activation), and writes inside maybe-skipped bodies (``while``,
    ``wait`` …) are folded on a copy so they cannot mask later reads.
    ``for`` bodies are treated as executing, matching the latch rule's
    handling of the unrolled-loop idiom.
    """
    reads: set[str] = set()
    if stmt is None:
        return reads
    if isinstance(stmt, ast.Block):
        for sub in stmt.stmts:
            reads |= _external_reads(sub, written)
    elif isinstance(stmt, (ast.BlockingAssign, ast.NonBlockingAssign)):
        used = expr_names(stmt.rhs) | lhs_read_names(stmt.lhs)
        used |= expr_names(stmt.delay)
        reads |= used - written
        if isinstance(stmt, ast.BlockingAssign):
            written |= _dominated_names(stmt.lhs)
    elif isinstance(stmt, ast.If):
        reads |= expr_names(stmt.cond) - written
        then_written = set(written)
        else_written = set(written)
        reads |= _external_reads(stmt.then_stmt, then_written)
        reads |= _external_reads(stmt.else_stmt, else_written)
        written |= then_written & else_written
    elif isinstance(stmt, ast.Case):
        reads |= expr_names(stmt.expr) - written
        arm_written: list[set[str]] = []
        has_default = False
        for item in stmt.items:
            if not item.exprs:
                has_default = True
            for expr in item.exprs:
                reads |= expr_names(expr) - written
            arm = set(written)
            reads |= _external_reads(item.stmt, arm)
            arm_written.append(arm)
        if has_default and arm_written:
            written |= set.intersection(*arm_written)
    elif isinstance(stmt, ast.For):
        reads |= _external_reads(stmt.init, written)
        reads |= expr_names(stmt.cond) - written
        reads |= _external_reads(stmt.body, written)
        reads |= _external_reads(stmt.step, written)
    elif isinstance(stmt, (ast.While, ast.RepeatStmt, ast.Forever, ast.Wait, ast.DelayStmt, ast.EventControl)):
        if isinstance(stmt, ast.While):
            reads |= expr_names(stmt.cond) - written
        elif isinstance(stmt, ast.RepeatStmt):
            reads |= expr_names(stmt.count) - written
        elif isinstance(stmt, ast.Wait):
            reads |= expr_names(stmt.cond) - written
        elif isinstance(stmt, ast.DelayStmt):
            reads |= expr_names(stmt.delay) - written
        elif isinstance(stmt, ast.EventControl) and stmt.senslist is not None:
            for item in stmt.senslist.items:
                reads |= expr_names(item.signal) - written
        body_written = set(written)
        reads |= _external_reads(stmt.body, body_written)
    elif isinstance(stmt, ast.EventTrigger):
        if stmt.name not in written:
            reads.add(stmt.name)
    elif isinstance(stmt, (ast.SysTaskCall, ast.TaskCall)):
        for arg in stmt.args:
            reads |= expr_names(arg) - written
    return reads


def build_module_model(module: ast.ModuleDef) -> ModuleModel:
    """Pre-digest one module for the rule set (single AST walk)."""
    model = ModuleModel(module=module)
    for item in module.items:
        if isinstance(item, ast.Decl):
            model.decl_kinds.setdefault(item.name, set()).add(item.kind)
            model.decl_nodes.setdefault(item.name, item)
            if item.kind in CONST_KINDS:
                model.params[item.name] = item.init
        elif isinstance(item, ast.ContinuousAssign):
            model.continuous.append(item)
        elif isinstance(item, ast.Always):
            kind, sens = classify_always(item)
            info = ProcessInfo(item=item, kind=kind, sens_names=sens)
            _collect_stmt(item.body, info)
            info.external_reads = _external_reads(item.body, set())
            model.processes.append(info)
        elif isinstance(item, ast.Initial):
            info = ProcessInfo(item=item, kind="initial")
            _collect_stmt(item.body, info)
            info.external_reads = _external_reads(item.body, set())
            model.processes.append(info)
        elif isinstance(item, ast.Instance):
            model.instances.append(item)
        elif isinstance(item, ast.FunctionDef):
            model.functions[item.name] = item
        elif isinstance(item, ast.TaskDef):
            model.tasks[item.name] = item
    for node in module.walk():
        if isinstance(node, ast.Block) and node.name:
            model.named_blocks.add(node.name)
        elif isinstance(node, ast.Identifier):
            model.references.setdefault(node.name, node)
        elif isinstance(node, (ast.EventTrigger, ast.Disable, ast.TaskCall)):
            model.references.setdefault(node.name, node)
        elif isinstance(node, ast.FunctionCall):
            model.references.setdefault(node.name, node)
    return model


def anchor_line(node: ast.Node | None) -> int:
    """Best-effort line anchor for a diagnostic (0 when unknown)."""
    return getattr(node, "line", None) or 0
