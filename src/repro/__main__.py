"""Entry point: ``python -m repro <command>`` (see :mod:`repro.cli`)."""

from .cli import main

raise SystemExit(main())
