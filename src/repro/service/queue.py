"""Deterministic fair-share scheduling for the repair service.

:class:`JobQueue` is the daemon's brain, kept deliberately free of any
asyncio or I/O so its behaviour is a pure function of the submission
sequence — which is what the property tests in
``tests/service/test_queue.py`` exercise:

- **dedup/join** — a submission whose :meth:`~repro.service.jobs.RepairRequest.job_key`
  matches a queued *or running* job attaches to that job instead of
  enqueuing duplicate work;
- **fair share** — ready jobs are picked round-robin across tenants (in
  first-submission order, with a rotating cursor) and FIFO within a
  tenant, so one chatty tenant cannot starve the others;
- **quota** — at most ``tenant_quota`` jobs of one tenant run at once;
- **cancel** — queued jobs are removed outright; running jobs get their
  cooperative :class:`threading.Event` cancel flag set.

The queue is thread-safe (the daemon touches it from the event loop and
from worker-thread completion callbacks) but never blocks.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from .jobs import JobStatus, RepairRequest


@dataclass
class Job:
    """One admitted unit of work (possibly serving several submissions)."""

    #: Short stable id handed to clients (``job-<n>-<key8>``).
    job_id: str
    #: Dedup key (:meth:`RepairRequest.job_key` of the first submission).
    key: str
    #: The request that will actually run (first submission wins).
    request: RepairRequest
    #: Lifecycle state; one of :data:`repro.service.jobs.JOB_STATES`.
    state: str = "queued"
    #: How many submissions joined this job (1 = no joins).
    submissions: int = 1
    #: Error summary once ``failed``.
    error: str = ""
    #: Telemetry events dropped across this job's streaming bridges
    #: (the lossy-at-tail contract: slow consumers lose events, never
    #: slow the engine).  Updated by the daemon, not the queue.
    dropped_events: int = 0
    #: True when this job was re-admitted from the journal on recovery.
    recovered: bool = False
    #: Cooperative cancel flag polled by the engine between generations.
    cancel_flag: threading.Event = field(default_factory=threading.Event)

    def status(self) -> JobStatus:
        """Snapshot this job as a wire-ready :class:`JobStatus` row."""
        return JobStatus(
            job_id=self.job_id,
            state=self.state,
            tenant=self.request.tenant,
            scenario=self.request.scenario or "<custom>",
            submissions=self.submissions,
            error=self.error,
            dropped_events=self.dropped_events,
        )


class JobQueue:
    """Dedup + fair-share + quota scheduling over admitted jobs.

    Pure bookkeeping: the daemon calls :meth:`submit` on arrival,
    :meth:`next_ready` whenever capacity frees up, :meth:`mark_running` /
    :meth:`mark_finished` around execution, and :meth:`cancel` on client
    request.  Given the same call sequence the same decisions come out —
    there is no clock and no randomness in here.
    """

    def __init__(self, tenant_quota: int = 2):
        """``tenant_quota``: max concurrently *running* jobs per tenant
        (minimum 1)."""
        self._lock = threading.RLock()
        self.tenant_quota = max(1, int(tenant_quota))
        self._ids = itertools.count(1)
        #: key → job, for every job not yet finished.
        self._live: dict[str, Job] = {}
        #: job_id → job, for every job ever admitted (status/history).
        self._jobs: dict[str, Job] = {}
        #: tenant → FIFO of queued jobs (insertion-ordered dict as deque).
        self._queues: dict[str, list[Job]] = {}
        #: Tenants in first-submission order (the round-robin ring).
        self._tenant_order: list[str] = []
        #: Ring index of the tenant to try first on the next pick.
        self._cursor = 0
        #: tenant → currently running job count (quota accounting).
        self._running: dict[str, int] = {}

    def submit(
        self, request: RepairRequest, job_id: "str | None" = None
    ) -> tuple[Job, bool]:
        """Admit one request; returns ``(job, joined)``.

        ``joined`` is True when an identical job (same dedup key) was
        already queued or running and this submission attached to it.
        ``job_id`` (crash recovery) preserves a journaled id instead of
        minting a fresh one; see :meth:`advance_ids`.
        """
        with self._lock:
            key = request.job_key()
            existing = self._live.get(key)
            if existing is not None:
                existing.submissions += 1
                return existing, True
            job = Job(
                job_id=job_id or f"job-{next(self._ids)}-{key[:8]}",
                key=key,
                request=request,
            )
            self._live[key] = job
            self._jobs[job.job_id] = job
            tenant = request.tenant
            if tenant not in self._queues:
                self._queues[tenant] = []
                self._tenant_order.append(tenant)
            self._queues[tenant].append(job)
            return job, False

    def next_ready(self) -> Job | None:
        """Pick the next job to run, honouring fair share and quotas.

        Scans the tenant ring starting at the rotating cursor; the first
        tenant with a queued job and spare quota yields its oldest job.
        Returns None when nothing is runnable (empty or all at quota).
        The picked job is *not* marked running — the daemon does that
        once it actually starts executing.
        """
        with self._lock:
            n = len(self._tenant_order)
            for offset in range(n):
                idx = (self._cursor + offset) % n
                tenant = self._tenant_order[idx]
                queue = self._queues.get(tenant, [])
                if not queue:
                    continue
                if self._running.get(tenant, 0) >= self.tenant_quota:
                    continue
                job = queue.pop(0)
                # Next pick starts at the following tenant: round-robin.
                self._cursor = (idx + 1) % n
                return job
            return None

    def mark_running(self, job: Job) -> None:
        """Transition a picked job to ``running`` (quota accounting)."""
        with self._lock:
            job.state = "running"
            tenant = job.request.tenant
            self._running[tenant] = self._running.get(tenant, 0) + 1

    def mark_finished(self, job: Job, state: str, error: str = "") -> None:
        """Terminal transition: ``done`` / ``failed`` / ``cancelled``."""
        with self._lock:
            was_running = job.state == "running"
            job.state = state
            job.error = error
            if was_running:
                tenant = job.request.tenant
                self._running[tenant] = max(0, self._running.get(tenant, 0) - 1)
            self._live.pop(job.key, None)

    def cancel(self, job_id: str) -> Job | None:
        """Cancel by id; returns the job, or None for unknown ids.

        A still-queued job is removed and finished as ``cancelled``
        immediately; a running job only gets its cancel flag set — the
        daemon finishes it when the engine comes back.  Finished jobs are
        returned unchanged (cancel is then a no-op).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.state == "queued":
                self._queues.get(job.request.tenant, []).remove(job)
                self.mark_finished(job, "cancelled", "cancelled while queued")
            elif job.state == "running":
                job.cancel_flag.set()
            return job

    def get(self, job_id: str) -> Job | None:
        """Look a job up by id (any state); None for unknown ids."""
        with self._lock:
            return self._jobs.get(job_id)

    def peek_live(self, key: str) -> Job | None:
        """The queued/running job a submission with ``key`` would join.

        Admission control uses this to exempt joins from load shedding:
        attaching to in-flight work adds no queue depth.
        """
        with self._lock:
            return self._live.get(key)

    def advance_ids(self, past: int) -> None:
        """Ensure freshly minted ids start after ordinal ``past``.

        Called once on recovery, after journaled jobs were re-admitted
        with their original ids, so new ``job-<n>-…`` ids never collide
        with recovered ones.
        """
        with self._lock:
            current = next(self._ids)
            self._ids = itertools.count(max(current, past + 1))

    def statuses(self) -> list[JobStatus]:
        """Status rows for every job ever admitted, in admission order."""
        with self._lock:
            return [job.status() for job in self._jobs.values()]

    def queued_depth(self) -> int:
        """Jobs currently waiting to run."""
        with self._lock:
            return sum(len(q) for q in self._queues.values())

    def running_count(self) -> int:
        """Jobs currently executing."""
        with self._lock:
            return sum(self._running.values())


__all__ = ["Job", "JobQueue"]
