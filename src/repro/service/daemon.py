"""The repair-as-a-service daemon (``repro serve``).

An asyncio Unix-domain-socket server that admits typed
:class:`~repro.service.jobs.RepairRequest` jobs, deduplicates identical
in-flight work, schedules fairly across tenants
(:class:`~repro.service.queue.JobQueue`), executes repairs on a thread
pool (each run uses the engine's own evaluation backend, including the
supervised process pool and the persistent eval cache configured via
``cache_dir``), and streams :mod:`repro.obs` telemetry to clients.

Wire protocol (version :data:`PROTOCOL_VERSION`) — newline-delimited
JSON, one operation per connection:

- ``{"op": "ping"}`` → ``{"ok": true, "pong": true, "protocol": 1}``
- ``{"op": "submit", "request": {...}, "wait": true, "stream": false}``
  → an admission line ``{"ok": true, "job": {...}, "joined": bool}``;
  with ``stream`` also ``{"event": {...}}`` lines as the run emits
  telemetry; with ``wait`` or ``stream`` a terminal
  ``{"response": {...}}`` line (a :class:`~repro.service.jobs.RepairResponse`).
- ``{"op": "jobs"}`` → ``{"ok": true, "jobs": [...]}`` (status rows)
- ``{"op": "cancel", "job_id": "..."}`` → ``{"ok": true, "job": {...}}``
- ``{"op": "shutdown"}`` → ``{"ok": true, "stopping": true}``; the
  daemon cancels queued jobs, flags running ones, drains, and exits.

Every error is ``{"ok": false, "error": "..."}``; malformed requests
fail the connection, never the daemon.  Typed errors additionally carry
a ``code`` plus machine-readable context — a submit naming an
unregistered engine is rejected at admission with
``{"ok": false, "error": "...", "code": "unknown_engine",
"known_engines": [...]}``, and a submit shed by admission control gets
``{"ok": false, "code": "overloaded", "retry_after_hint": seconds}`` —
so clients can self-correct without parsing prose.

Crash safety (``docs/service.md``, "Operations"): with ``journal_dir``
set every admission/start/completion is write-ahead logged
(:mod:`repro.service.journal`) and engines checkpoint their cursor at
each generation boundary; ``recover=True`` replays the journal on
startup and re-admits unfinished jobs, whose deterministic replay runs
warm out of the persistent eval cache.  SIGTERM/SIGINT trigger the same
drain path as the ``shutdown`` op.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Sequence

from ..core.backend import open_eval_store
from ..core.config import RepairConfig
from ..core.engines import engine_names
from ..core.serialize import outcome_to_json
from ..obs.bridge import AsyncEventBridge
from ..obs.events import (
    JobAdmitted,
    JobCompleted,
    JobRecovered,
    JobShed,
    JobStarted,
    RepairEvent,
)
from ..obs.observer import ObserverSet, RepairObserver
from .jobs import RepairRequest, RepairResponse
from .journal import JobJournal, JournalCheckpointSink
from .queue import Job, JobQueue

#: Version of the NDJSON socket protocol (echoed by ``ping``).
PROTOCOL_VERSION = 1

#: Hard cap on one request line (a full custom-design request carries
#: Verilog texts inline; 16 MiB is far above any benchmark's size).
MAX_LINE_BYTES = 16 << 20

#: Recovery re-admissions one job may consume before it is failed as a
#: poison job — a request that reliably crashes the daemon must not
#: crash-loop it forever.
MAX_RECOVERY_ATTEMPTS = 3


class _Broadcast:
    """Fan one run's observer stream out to dynamically attached bridges.

    The engine calls :meth:`on_event` from the job's worker thread; the
    daemon attaches/detaches :class:`AsyncEventBridge` consumers from
    the event loop thread as streaming clients come and go — hence the
    lock.  After :meth:`close`, attaching finishes the bridge
    immediately (the job is over; there is nothing left to stream).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._bridges: list[AsyncEventBridge] = []
        #: Every bridge ever attached (for the dropped-events tally).
        self._all: list[AsyncEventBridge] = []
        self._closed = False

    def on_event(self, event: RepairEvent) -> None:
        """Observer hook: replicate one event to every attached bridge."""
        with self._lock:
            bridges = list(self._bridges)
        for bridge in bridges:
            bridge.on_event(event)

    def attach(self, bridge: AsyncEventBridge) -> None:
        """Start streaming to ``bridge`` (finishes it at once if closed)."""
        with self._lock:
            self._all.append(bridge)
            if self._closed:
                closed = True
            else:
                closed = False
                self._bridges.append(bridge)
        if closed:
            bridge.finish()

    def dropped_total(self) -> int:
        """Events lost across every bridge this job ever streamed to."""
        with self._lock:
            return sum(bridge.dropped for bridge in self._all)

    def close(self) -> None:
        """Terminate every attached bridge; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            bridges, self._bridges = self._bridges, []
        for bridge in bridges:
            bridge.finish()


class _JobRuntime:
    """Daemon-side execution state for one admitted job."""

    def __init__(self, config: RepairConfig) -> None:
        #: The request's fully resolved config (overrides applied).
        self.config = config
        #: The persistent eval store this job will hit (None = no disk tier).
        self.store = open_eval_store(config)
        #: Fan-out point for the run's telemetry events.
        self.broadcast = _Broadcast()
        #: Set (loop-side) when the terminal response is available.
        self.done = asyncio.Event()
        #: The terminal :class:`RepairResponse` once ``done`` is set.
        self.response: RepairResponse | None = None
        #: Journal-backed engine checkpoint sink (None when unjournaled).
        self.checkpoint: JournalCheckpointSink | None = None


class RepairDaemon:
    """The asyncio job daemon behind ``repro serve``.

    Args:
        socket_path: Unix socket to listen on (created, replaced if a
            stale file exists, and unlinked on exit).
        base_config: Server-side :class:`RepairConfig` every request's
            overrides are applied on top of.  Point ``cache_dir`` at a
            directory to give all jobs a shared persistent eval cache.
        max_jobs: Repairs executing concurrently (thread-pool width).
        tenant_quota: Max concurrently running jobs per tenant.
        observers: Optional :mod:`repro.obs` observers receiving the
            *job lifecycle* events (admitted/started/completed, plus
            recovered/shed) — called on the event loop thread only.
            Engine telemetry goes to streaming clients, not here.
        journal_dir: Directory for the durable job journal
            (:class:`~repro.service.journal.JobJournal`).  None (the
            default) keeps the daemon fully in-memory, as before.
        recover: With a journal, replay it on startup and re-admit every
            job that never reached a terminal state.
        max_queue_depth: Admission backpressure — reject new (non-join)
            submissions with a typed ``overloaded`` error once this many
            jobs are queued.  0 (the default) disables shedding.
    """

    def __init__(
        self,
        socket_path: "str | os.PathLike[str]",
        base_config: RepairConfig | None = None,
        max_jobs: int = 2,
        tenant_quota: int = 2,
        observers: Sequence[RepairObserver] | None = None,
        journal_dir: "str | os.PathLike[str] | None" = None,
        recover: bool = False,
        max_queue_depth: int = 0,
    ) -> None:
        self.socket_path = os.fspath(socket_path)
        self.base_config = base_config or RepairConfig()
        self.max_jobs = max(1, int(max_jobs))
        self.queue = JobQueue(tenant_quota=tenant_quota)
        self.journal = JobJournal(journal_dir) if journal_dir else None
        self.recover = bool(recover)
        self.max_queue_depth = max(0, int(max_queue_depth))
        self._observers = ObserverSet(observers)
        self._runtimes: dict[str, _JobRuntime] = {}
        self._tasks: set[asyncio.Task] = set()
        self._pool: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop = asyncio.Event()
        self._stopping = False
        #: EWMA of completed-job wall seconds (the retry_after_hint base).
        self._avg_job_seconds = 0.0

    async def serve(self, ready: "asyncio.Event | None" = None) -> None:
        """Run the daemon until a ``shutdown`` op (or :meth:`stop`).

        ``ready`` (optional) is set once the socket is listening —
        handy for tests and for the CLI's "serving on …" message.

        SIGTERM and SIGINT trigger :meth:`stop` — the same graceful
        drain as the ``shutdown`` op — when the loop runs on the main
        thread (signal handlers are silently skipped elsewhere, e.g. in
        tests running the daemon on a background thread).
        """
        self._loop = asyncio.get_running_loop()
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_jobs, thread_name_prefix="repro-job"
        )
        handled_signals: list[signal.Signals] = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                self._loop.add_signal_handler(sig, self.stop)
                handled_signals.append(sig)
        if self.journal is not None and self.recover:
            self._recover_jobs()
        with contextlib.suppress(OSError):
            os.unlink(self.socket_path)
        server = await asyncio.start_unix_server(
            self._handle, path=self.socket_path, limit=MAX_LINE_BYTES
        )
        try:
            if ready is not None:
                ready.set()
            self._pump()  # start any recovered jobs
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            await self._drain()
            self._pool.shutdown(wait=True)
            self._observers.close()
            for sig in handled_signals:
                with contextlib.suppress(Exception):
                    self._loop.remove_signal_handler(sig)
            with contextlib.suppress(OSError):
                os.unlink(self.socket_path)

    def stop(self) -> None:
        """Request shutdown (idempotent; usable from the loop thread)."""
        self._stopping = True
        self._stop.set()

    async def _drain(self) -> None:
        """Cancel queued jobs, flag running ones, await their tasks.

        A graceful drain leaves no unfinished journal records: queued
        jobs are journaled ``cancelled`` here, running ones finish
        (as ``cancelled``) through :meth:`_execute` while we await their
        tasks.  Only a hard kill leaves records for ``--recover``.
        """
        for status in self.queue.statuses():
            if status.state == "queued":
                self.queue.cancel(status.job_id)
                if self.journal is not None:
                    self.journal.record_completed(
                        status.job_id, "cancelled", "daemon shutting down"
                    )
                runtime = self._runtimes.get(status.job_id)
                if runtime is not None and not runtime.done.is_set():
                    runtime.response = RepairResponse(
                        job_id=status.job_id,
                        status="cancelled",
                        error="daemon shutting down",
                    )
                    runtime.done.set()
                    runtime.broadcast.close()
            elif status.state == "running":
                self.queue.cancel(status.job_id)
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    # ------------------------------------------------------------------
    # Crash recovery (docs/service.md, "Operations")

    def _new_runtime(self, job: Job, config: RepairConfig) -> _JobRuntime:
        """Create (and register) the runtime for one admitted job."""
        runtime = _JobRuntime(config)
        if self.journal is not None:
            runtime.checkpoint = JournalCheckpointSink(self.journal, job.job_id)
        self._runtimes[job.job_id] = runtime
        return runtime

    def _recover_jobs(self) -> None:
        """Re-admit every unfinished journaled job (startup, pre-listen).

        Recovered jobs keep their journaled ids (clients re-attach by
        resubmitting the identical request, which joins via the dedup
        key), are re-journaled with a bumped attempt count, and replay
        deterministically — the persistent eval cache turns every
        pre-crash evaluation into a warm hit, so reaching the journaled
        checkpoint again costs cache lookups, not simulations.
        """
        assert self.journal is not None
        records = self.journal.unfinished()
        if not records:
            return
        self.queue.advance_ids(self.journal.max_ordinal())
        for record in records:
            if record.attempts > MAX_RECOVERY_ATTEMPTS:
                self.journal.record_completed(
                    record.job_id,
                    "failed",
                    f"poison job: recovered {record.attempts - 1} times "
                    "without completing",
                )
                continue
            try:
                request = RepairRequest.from_dict(record.request)
                request.validate()
                config = request.resolved_config(self.base_config)
            except (ValueError, TypeError, KeyError) as exc:
                self.journal.record_completed(
                    record.job_id, "failed",
                    f"unrecoverable journaled request: {exc}",
                )
                continue
            job, joined = self.queue.submit(request, job_id=record.job_id)
            if joined:  # duplicate record (should not happen); tolerate
                continue
            job.recovered = True
            runtime = self._new_runtime(job, config)
            assert runtime.checkpoint is not None
            snapshot = runtime.checkpoint.load()
            self.journal.record_admitted(
                job.job_id, request.to_dict(), attempts=record.attempts + 1
            )
            self._emit(
                runtime,
                JobRecovered(
                    job_id=job.job_id,
                    tenant=request.tenant,
                    scenario=request.scenario or "<custom>",
                    attempts=record.attempts + 1,
                    had_checkpoint=snapshot is not None,
                    cursor=(
                        int(snapshot.get("cursor", -1)) if snapshot else -1
                    ),
                ),
            )

    def _retry_after_hint(self) -> float:
        """Seconds a shed client should wait before resubmitting.

        A smoothed estimate of one execution slot freeing up: the EWMA
        of completed-job wall time divided across the slots, floored at
        one second (before any job completes there is no signal — the
        floor is the hint).
        """
        if self._avg_job_seconds <= 0.0:
            return 1.0
        return round(max(1.0, self._avg_job_seconds / self.max_jobs), 3)

    # ------------------------------------------------------------------
    # Connection handling

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client connection (one operation, then close)."""
        try:
            line = await reader.readline()
            if not line.strip():
                return
            try:
                message = json.loads(line)
                if not isinstance(message, dict):
                    raise ValueError("request must be a JSON object")
                op = message.get("op")
                if op == "ping":
                    await self._send(
                        writer, {"ok": True, "pong": True, "protocol": PROTOCOL_VERSION}
                    )
                elif op == "jobs":
                    self._refresh_dropped()
                    rows = [status.to_dict() for status in self.queue.statuses()]
                    await self._send(writer, {"ok": True, "jobs": rows})
                elif op == "cancel":
                    await self._op_cancel(writer, message)
                elif op == "submit":
                    await self._op_submit(writer, message)
                elif op == "shutdown":
                    await self._send(writer, {"ok": True, "stopping": True})
                    self.stop()
                else:
                    raise ValueError(f"unknown op {op!r}")
            except (ValueError, TypeError, KeyError) as exc:
                await self._send(writer, {"ok": False, "error": str(exc)})
        except (ConnectionResetError, BrokenPipeError):  # client went away
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _send(self, writer: asyncio.StreamWriter, payload: dict[str, Any]) -> None:
        """Write one NDJSON line and flush it."""
        writer.write(json.dumps(payload, separators=(",", ":")).encode() + b"\n")
        await writer.drain()

    async def _op_cancel(
        self, writer: asyncio.StreamWriter, message: dict[str, Any]
    ) -> None:
        """Handle a ``cancel`` op."""
        job_id = message.get("job_id", "")
        job = self.queue.cancel(job_id)
        if job is None:
            await self._send(writer, {"ok": False, "error": f"unknown job {job_id!r}"})
            return
        runtime = self._runtimes.get(job.job_id)
        if job.state == "cancelled" and runtime is not None and not runtime.done.is_set():
            # Was still queued: it will never run, so finalize it here.
            if self.journal is not None:
                self.journal.record_completed(job.job_id, "cancelled", job.error)
            runtime.response = RepairResponse(
                job_id=job.job_id, status="cancelled", error=job.error
            )
            runtime.done.set()
            runtime.broadcast.close()
        await self._send(writer, {"ok": True, "job": job.status().to_dict()})

    async def _op_submit(
        self, writer: asyncio.StreamWriter, message: dict[str, Any]
    ) -> None:
        """Handle a ``submit`` op (admission, optional stream, response)."""
        if self._stopping:
            raise ValueError("daemon is shutting down")
        request = RepairRequest.from_dict(message.get("request") or {})
        if request.engine not in engine_names():
            # Typed protocol error at admission: clients get the valid
            # engine list without having to parse the message text.
            await self._send(
                writer,
                {
                    "ok": False,
                    "error": (
                        f"unknown repair engine {request.engine!r} "
                        f"(registered: {', '.join(engine_names())})"
                    ),
                    "code": "unknown_engine",
                    "known_engines": list(engine_names()),
                },
            )
            return
        request.validate()
        config = request.resolved_config(self.base_config)
        if (
            self.max_queue_depth
            and self.queue.peek_live(request.job_key()) is None
            and self.queue.queued_depth() >= self.max_queue_depth
        ):
            # Admission backpressure: shed new work (joins are exempt —
            # attaching to in-flight work adds no queue depth).
            depth = self.queue.queued_depth()
            hint = self._retry_after_hint()
            if self._observers:
                self._observers.emit(
                    JobShed(
                        tenant=request.tenant,
                        scenario=request.scenario or "<custom>",
                        queue_depth=depth,
                        retry_after_hint=hint,
                    )
                )
            await self._send(
                writer,
                {
                    "ok": False,
                    "error": (
                        f"daemon overloaded: {depth} jobs queued "
                        f"(cap {self.max_queue_depth}); retry later"
                    ),
                    "code": "overloaded",
                    "retry_after_hint": hint,
                },
            )
            return
        job, joined = self.queue.submit(request)
        runtime = self._runtimes.get(job.job_id)
        if runtime is None:
            runtime = self._new_runtime(job, config)
        if self.journal is not None and not joined:
            self.journal.record_admitted(job.job_id, request.to_dict())
        self._emit(
            runtime,
            JobAdmitted(
                job_id=job.job_id,
                tenant=request.tenant,
                scenario=request.scenario or "<custom>",
                joined=joined,
                queue_depth=self.queue.queued_depth(),
            ),
        )
        stream = bool(message.get("stream", False))
        wait = bool(message.get("wait", True)) or stream
        bridge: AsyncEventBridge | None = None
        if stream:
            # Attach before replying so no event can slip past us.
            bridge = AsyncEventBridge(asyncio.get_running_loop())
            runtime.broadcast.attach(bridge)
            if runtime.done.is_set():
                bridge.finish()
        await self._send(
            writer, {"ok": True, "job": job.status().to_dict(), "joined": joined}
        )
        self._pump()
        if not wait:
            return
        if bridge is not None:
            async for event in bridge:
                await self._send(writer, {"event": event.to_dict()})
        await runtime.done.wait()
        assert runtime.response is not None
        await self._send(writer, {"response": runtime.response.to_dict()})

    # ------------------------------------------------------------------
    # Scheduling and execution

    def _pump(self) -> None:
        """Start ready jobs while execution slots are free (loop thread)."""
        if self._stopping:
            return
        while self.queue.running_count() < self.max_jobs:
            job = self.queue.next_ready()
            if job is None:
                return
            self.queue.mark_running(job)
            task = asyncio.ensure_future(self._execute(job))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _execute(self, job: Job) -> None:
        """Run one job on the thread pool and finalize it."""
        runtime = self._runtimes[job.job_id]
        self._emit(
            runtime,
            JobStarted(
                job_id=job.job_id,
                tenant=job.request.tenant,
                running=self.queue.running_count(),
            ),
        )
        if self.journal is not None:
            self.journal.record_started(job.job_id)
        assert self._loop is not None and self._pool is not None
        status, response, elapsed = await self._loop.run_in_executor(
            self._pool, self._run_job, job, runtime
        )
        self.queue.mark_finished(job, status, response.error)
        if self.journal is not None:
            self.journal.record_completed(job.job_id, status, response.error)
        if self._avg_job_seconds <= 0.0:
            self._avg_job_seconds = elapsed
        else:
            self._avg_job_seconds = 0.7 * self._avg_job_seconds + 0.3 * elapsed
        runtime.response = response
        self._emit(
            runtime,
            JobCompleted(
                job_id=job.job_id,
                tenant=job.request.tenant,
                status=status,
                plausible=response.plausible,
                fitness=response.fitness,
                elapsed_seconds=elapsed,
                cache_hit_rate=float(response.cache.get("hit_rate", 0.0)),
            ),
        )
        runtime.done.set()
        runtime.broadcast.close()
        job.dropped_events = runtime.broadcast.dropped_total()
        self._pump()

    def _run_job(
        self, job: Job, runtime: _JobRuntime
    ) -> tuple[str, RepairResponse, float]:
        """Worker-thread body: execute the repair, package the response.

        Cache statistics are persistent-tier counter deltas over the
        job's execution window; with overlapping jobs on one shared
        store they include the neighbours' lookups, so treat them as
        daemon-level telemetry, exact only for serialized submissions.
        """
        # Lazy import: repro.api imports repro.service.jobs at module
        # scope, so importing it here (not at module top) keeps
        # ``repro.service`` importable on its own without a cycle.
        from ..api import run_request

        store = runtime.store
        hits0 = store.hits if store is not None else 0
        misses0 = store.misses if store is not None else 0
        start = time.monotonic()
        try:
            outcome = run_request(
                job.request,
                base_config=self.base_config,
                observers=[runtime.broadcast],
                cancel=job.cancel_flag.is_set,
                checkpoint=(
                    runtime.checkpoint.save
                    if runtime.checkpoint is not None
                    else None
                ),
            )
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            elapsed = time.monotonic() - start
            response = RepairResponse(
                job_id=job.job_id,
                status="failed",
                error=f"{type(exc).__name__}: {exc}",
                cache=self._cache_stats(store, hits0, misses0),
            )
            return "failed", response, elapsed
        elapsed = time.monotonic() - start
        status = "cancelled" if job.cancel_flag.is_set() else "done"
        response = RepairResponse(
            job_id=job.job_id,
            status=status,
            plausible=outcome.plausible,
            fitness=outcome.fitness,
            outcome_json=outcome_to_json(outcome, job.request.scenario),
            cache=self._cache_stats(store, hits0, misses0),
        )
        return status, response, elapsed

    @staticmethod
    def _cache_stats(store, hits0: int, misses0: int) -> dict[str, Any]:
        """Persistent-store counter deltas → the response ``cache`` dict."""
        if store is None:
            return {"store_hits": 0, "store_misses": 0, "hit_rate": 0.0}
        hits = store.hits - hits0
        misses = store.misses - misses0
        total = hits + misses
        return {
            "store_hits": hits,
            "store_misses": misses,
            "hit_rate": (hits / total) if total else 0.0,
        }

    def _refresh_dropped(self) -> None:
        """Pull live dropped-event tallies into the job table rows."""
        for job_id, runtime in self._runtimes.items():
            job = self.queue.get(job_id)
            if job is not None:
                job.dropped_events = runtime.broadcast.dropped_total()

    def _emit(self, runtime: _JobRuntime, event: RepairEvent) -> None:
        """Deliver one lifecycle event to daemon observers + streamers."""
        if self._observers:
            self._observers.emit(event)
        runtime.broadcast.on_event(event)


__all__ = ["PROTOCOL_VERSION", "MAX_LINE_BYTES", "RepairDaemon"]
