"""The repair-as-a-service daemon (``repro serve``).

An asyncio Unix-domain-socket server that admits typed
:class:`~repro.service.jobs.RepairRequest` jobs, deduplicates identical
in-flight work, schedules fairly across tenants
(:class:`~repro.service.queue.JobQueue`), executes repairs on a thread
pool (each run uses the engine's own evaluation backend, including the
supervised process pool and the persistent eval cache configured via
``cache_dir``), and streams :mod:`repro.obs` telemetry to clients.

Wire protocol (version :data:`PROTOCOL_VERSION`) — newline-delimited
JSON, one operation per connection:

- ``{"op": "ping"}`` → ``{"ok": true, "pong": true, "protocol": 1}``
- ``{"op": "submit", "request": {...}, "wait": true, "stream": false}``
  → an admission line ``{"ok": true, "job": {...}, "joined": bool}``;
  with ``stream`` also ``{"event": {...}}`` lines as the run emits
  telemetry; with ``wait`` or ``stream`` a terminal
  ``{"response": {...}}`` line (a :class:`~repro.service.jobs.RepairResponse`).
- ``{"op": "jobs"}`` → ``{"ok": true, "jobs": [...]}`` (status rows)
- ``{"op": "cancel", "job_id": "..."}`` → ``{"ok": true, "job": {...}}``
- ``{"op": "shutdown"}`` → ``{"ok": true, "stopping": true}``; the
  daemon cancels queued jobs, flags running ones, drains, and exits.

Every error is ``{"ok": false, "error": "..."}``; malformed requests
fail the connection, never the daemon.  Typed errors additionally carry
a ``code`` plus machine-readable context — a submit naming an
unregistered engine is rejected at admission with
``{"ok": false, "error": "...", "code": "unknown_engine",
"known_engines": [...]}`` so clients can self-correct without parsing
prose.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Sequence

from ..core.backend import open_eval_store
from ..core.config import RepairConfig
from ..core.engines import engine_names
from ..core.serialize import outcome_to_json
from ..obs.bridge import AsyncEventBridge
from ..obs.events import JobAdmitted, JobCompleted, JobStarted, RepairEvent
from ..obs.observer import ObserverSet, RepairObserver
from .jobs import RepairRequest, RepairResponse
from .queue import Job, JobQueue

#: Version of the NDJSON socket protocol (echoed by ``ping``).
PROTOCOL_VERSION = 1

#: Hard cap on one request line (a full custom-design request carries
#: Verilog texts inline; 16 MiB is far above any benchmark's size).
MAX_LINE_BYTES = 16 << 20


class _Broadcast:
    """Fan one run's observer stream out to dynamically attached bridges.

    The engine calls :meth:`on_event` from the job's worker thread; the
    daemon attaches/detaches :class:`AsyncEventBridge` consumers from
    the event loop thread as streaming clients come and go — hence the
    lock.  After :meth:`close`, attaching finishes the bridge
    immediately (the job is over; there is nothing left to stream).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._bridges: list[AsyncEventBridge] = []
        self._closed = False

    def on_event(self, event: RepairEvent) -> None:
        """Observer hook: replicate one event to every attached bridge."""
        with self._lock:
            bridges = list(self._bridges)
        for bridge in bridges:
            bridge.on_event(event)

    def attach(self, bridge: AsyncEventBridge) -> None:
        """Start streaming to ``bridge`` (finishes it at once if closed)."""
        with self._lock:
            if self._closed:
                closed = True
            else:
                closed = False
                self._bridges.append(bridge)
        if closed:
            bridge.finish()

    def close(self) -> None:
        """Terminate every attached bridge; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            bridges, self._bridges = self._bridges, []
        for bridge in bridges:
            bridge.finish()


class _JobRuntime:
    """Daemon-side execution state for one admitted job."""

    def __init__(self, config: RepairConfig) -> None:
        #: The request's fully resolved config (overrides applied).
        self.config = config
        #: The persistent eval store this job will hit (None = no disk tier).
        self.store = open_eval_store(config)
        #: Fan-out point for the run's telemetry events.
        self.broadcast = _Broadcast()
        #: Set (loop-side) when the terminal response is available.
        self.done = asyncio.Event()
        #: The terminal :class:`RepairResponse` once ``done`` is set.
        self.response: RepairResponse | None = None


class RepairDaemon:
    """The asyncio job daemon behind ``repro serve``.

    Args:
        socket_path: Unix socket to listen on (created, replaced if a
            stale file exists, and unlinked on exit).
        base_config: Server-side :class:`RepairConfig` every request's
            overrides are applied on top of.  Point ``cache_dir`` at a
            directory to give all jobs a shared persistent eval cache.
        max_jobs: Repairs executing concurrently (thread-pool width).
        tenant_quota: Max concurrently running jobs per tenant.
        observers: Optional :mod:`repro.obs` observers receiving the
            *job lifecycle* events (admitted/started/completed) — called
            on the event loop thread only.  Engine telemetry goes to
            streaming clients, not here.
    """

    def __init__(
        self,
        socket_path: "str | os.PathLike[str]",
        base_config: RepairConfig | None = None,
        max_jobs: int = 2,
        tenant_quota: int = 2,
        observers: Sequence[RepairObserver] | None = None,
    ) -> None:
        self.socket_path = os.fspath(socket_path)
        self.base_config = base_config or RepairConfig()
        self.max_jobs = max(1, int(max_jobs))
        self.queue = JobQueue(tenant_quota=tenant_quota)
        self._observers = ObserverSet(observers)
        self._runtimes: dict[str, _JobRuntime] = {}
        self._tasks: set[asyncio.Task] = set()
        self._pool: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop = asyncio.Event()
        self._stopping = False

    async def serve(self, ready: "asyncio.Event | None" = None) -> None:
        """Run the daemon until a ``shutdown`` op (or :meth:`stop`).

        ``ready`` (optional) is set once the socket is listening —
        handy for tests and for the CLI's "serving on …" message.
        """
        self._loop = asyncio.get_running_loop()
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_jobs, thread_name_prefix="repro-job"
        )
        with contextlib.suppress(OSError):
            os.unlink(self.socket_path)
        server = await asyncio.start_unix_server(
            self._handle, path=self.socket_path, limit=MAX_LINE_BYTES
        )
        try:
            if ready is not None:
                ready.set()
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            await self._drain()
            self._pool.shutdown(wait=True)
            self._observers.close()
            with contextlib.suppress(OSError):
                os.unlink(self.socket_path)

    def stop(self) -> None:
        """Request shutdown (idempotent; usable from the loop thread)."""
        self._stopping = True
        self._stop.set()

    async def _drain(self) -> None:
        """Cancel queued jobs, flag running ones, await their tasks."""
        for status in self.queue.statuses():
            if status.state == "queued":
                self.queue.cancel(status.job_id)
                runtime = self._runtimes.get(status.job_id)
                if runtime is not None and not runtime.done.is_set():
                    runtime.response = RepairResponse(
                        job_id=status.job_id,
                        status="cancelled",
                        error="daemon shutting down",
                    )
                    runtime.done.set()
                    runtime.broadcast.close()
            elif status.state == "running":
                self.queue.cancel(status.job_id)
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    # ------------------------------------------------------------------
    # Connection handling

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client connection (one operation, then close)."""
        try:
            line = await reader.readline()
            if not line.strip():
                return
            try:
                message = json.loads(line)
                if not isinstance(message, dict):
                    raise ValueError("request must be a JSON object")
                op = message.get("op")
                if op == "ping":
                    await self._send(
                        writer, {"ok": True, "pong": True, "protocol": PROTOCOL_VERSION}
                    )
                elif op == "jobs":
                    rows = [status.to_dict() for status in self.queue.statuses()]
                    await self._send(writer, {"ok": True, "jobs": rows})
                elif op == "cancel":
                    await self._op_cancel(writer, message)
                elif op == "submit":
                    await self._op_submit(writer, message)
                elif op == "shutdown":
                    await self._send(writer, {"ok": True, "stopping": True})
                    self.stop()
                else:
                    raise ValueError(f"unknown op {op!r}")
            except (ValueError, TypeError, KeyError) as exc:
                await self._send(writer, {"ok": False, "error": str(exc)})
        except (ConnectionResetError, BrokenPipeError):  # client went away
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _send(self, writer: asyncio.StreamWriter, payload: dict[str, Any]) -> None:
        """Write one NDJSON line and flush it."""
        writer.write(json.dumps(payload, separators=(",", ":")).encode() + b"\n")
        await writer.drain()

    async def _op_cancel(
        self, writer: asyncio.StreamWriter, message: dict[str, Any]
    ) -> None:
        """Handle a ``cancel`` op."""
        job_id = message.get("job_id", "")
        job = self.queue.cancel(job_id)
        if job is None:
            await self._send(writer, {"ok": False, "error": f"unknown job {job_id!r}"})
            return
        runtime = self._runtimes.get(job.job_id)
        if job.state == "cancelled" and runtime is not None and not runtime.done.is_set():
            # Was still queued: it will never run, so finalize it here.
            runtime.response = RepairResponse(
                job_id=job.job_id, status="cancelled", error=job.error
            )
            runtime.done.set()
            runtime.broadcast.close()
        await self._send(writer, {"ok": True, "job": job.status().to_dict()})

    async def _op_submit(
        self, writer: asyncio.StreamWriter, message: dict[str, Any]
    ) -> None:
        """Handle a ``submit`` op (admission, optional stream, response)."""
        if self._stopping:
            raise ValueError("daemon is shutting down")
        request = RepairRequest.from_dict(message.get("request") or {})
        if request.engine not in engine_names():
            # Typed protocol error at admission: clients get the valid
            # engine list without having to parse the message text.
            await self._send(
                writer,
                {
                    "ok": False,
                    "error": (
                        f"unknown repair engine {request.engine!r} "
                        f"(registered: {', '.join(engine_names())})"
                    ),
                    "code": "unknown_engine",
                    "known_engines": list(engine_names()),
                },
            )
            return
        request.validate()
        config = request.resolved_config(self.base_config)
        job, joined = self.queue.submit(request)
        runtime = self._runtimes.get(job.job_id)
        if runtime is None:
            runtime = _JobRuntime(config)
            self._runtimes[job.job_id] = runtime
        self._emit(
            runtime,
            JobAdmitted(
                job_id=job.job_id,
                tenant=request.tenant,
                scenario=request.scenario or "<custom>",
                joined=joined,
                queue_depth=self.queue.queued_depth(),
            ),
        )
        stream = bool(message.get("stream", False))
        wait = bool(message.get("wait", True)) or stream
        bridge: AsyncEventBridge | None = None
        if stream:
            # Attach before replying so no event can slip past us.
            bridge = AsyncEventBridge(asyncio.get_running_loop())
            runtime.broadcast.attach(bridge)
            if runtime.done.is_set():
                bridge.finish()
        await self._send(
            writer, {"ok": True, "job": job.status().to_dict(), "joined": joined}
        )
        self._pump()
        if not wait:
            return
        if bridge is not None:
            async for event in bridge:
                await self._send(writer, {"event": event.to_dict()})
        await runtime.done.wait()
        assert runtime.response is not None
        await self._send(writer, {"response": runtime.response.to_dict()})

    # ------------------------------------------------------------------
    # Scheduling and execution

    def _pump(self) -> None:
        """Start ready jobs while execution slots are free (loop thread)."""
        if self._stopping:
            return
        while self.queue.running_count() < self.max_jobs:
            job = self.queue.next_ready()
            if job is None:
                return
            self.queue.mark_running(job)
            task = asyncio.ensure_future(self._execute(job))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _execute(self, job: Job) -> None:
        """Run one job on the thread pool and finalize it."""
        runtime = self._runtimes[job.job_id]
        self._emit(
            runtime,
            JobStarted(
                job_id=job.job_id,
                tenant=job.request.tenant,
                running=self.queue.running_count(),
            ),
        )
        assert self._loop is not None and self._pool is not None
        status, response, elapsed = await self._loop.run_in_executor(
            self._pool, self._run_job, job, runtime
        )
        self.queue.mark_finished(job, status, response.error)
        runtime.response = response
        self._emit(
            runtime,
            JobCompleted(
                job_id=job.job_id,
                tenant=job.request.tenant,
                status=status,
                plausible=response.plausible,
                fitness=response.fitness,
                elapsed_seconds=elapsed,
                cache_hit_rate=float(response.cache.get("hit_rate", 0.0)),
            ),
        )
        runtime.done.set()
        runtime.broadcast.close()
        self._pump()

    def _run_job(
        self, job: Job, runtime: _JobRuntime
    ) -> tuple[str, RepairResponse, float]:
        """Worker-thread body: execute the repair, package the response.

        Cache statistics are persistent-tier counter deltas over the
        job's execution window; with overlapping jobs on one shared
        store they include the neighbours' lookups, so treat them as
        daemon-level telemetry, exact only for serialized submissions.
        """
        # Lazy import: repro.api imports repro.service.jobs at module
        # scope, so importing it here (not at module top) keeps
        # ``repro.service`` importable on its own without a cycle.
        from ..api import run_request

        store = runtime.store
        hits0 = store.hits if store is not None else 0
        misses0 = store.misses if store is not None else 0
        start = time.monotonic()
        try:
            outcome = run_request(
                job.request,
                base_config=self.base_config,
                observers=[runtime.broadcast],
                cancel=job.cancel_flag.is_set,
            )
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            elapsed = time.monotonic() - start
            response = RepairResponse(
                job_id=job.job_id,
                status="failed",
                error=f"{type(exc).__name__}: {exc}",
                cache=self._cache_stats(store, hits0, misses0),
            )
            return "failed", response, elapsed
        elapsed = time.monotonic() - start
        status = "cancelled" if job.cancel_flag.is_set() else "done"
        response = RepairResponse(
            job_id=job.job_id,
            status=status,
            plausible=outcome.plausible,
            fitness=outcome.fitness,
            outcome_json=outcome_to_json(outcome, job.request.scenario),
            cache=self._cache_stats(store, hits0, misses0),
        )
        return status, response, elapsed

    @staticmethod
    def _cache_stats(store, hits0: int, misses0: int) -> dict[str, Any]:
        """Persistent-store counter deltas → the response ``cache`` dict."""
        if store is None:
            return {"store_hits": 0, "store_misses": 0, "hit_rate": 0.0}
        hits = store.hits - hits0
        misses = store.misses - misses0
        total = hits + misses
        return {
            "store_hits": hits,
            "store_misses": misses,
            "hit_rate": (hits / total) if total else 0.0,
        }

    def _emit(self, runtime: _JobRuntime, event: RepairEvent) -> None:
        """Deliver one lifecycle event to daemon observers + streamers."""
        if self._observers:
            self._observers.emit(event)
        runtime.broadcast.on_event(event)


__all__ = ["PROTOCOL_VERSION", "MAX_LINE_BYTES", "RepairDaemon"]
