"""repro.service — repair-as-a-service on top of the repro pipeline.

Long-lived repair infrastructure: instead of one ``repro repair``
process per request, a daemon (:class:`RepairDaemon`, ``repro serve``)
owns a persistent sharded evaluation cache and a fair-share job queue,
so repeated and concurrent repair requests share evaluation work.

Layers, bottom-up:

- :mod:`repro.service.jobs` — the versioned typed job API
  (:class:`RepairRequest` / :class:`JobStatus` / :class:`RepairResponse`)
  with stable JSON round-trips and content-hash job keys;
- :mod:`repro.service.queue` — deterministic dedup/fair-share/quota
  scheduling (:class:`JobQueue`), pure bookkeeping with no I/O;
- :mod:`repro.service.daemon` — the asyncio Unix-socket NDJSON server
  executing jobs on a thread pool and streaming :mod:`repro.obs`
  telemetry to clients;
- :mod:`repro.service.journal` — the durable job journal
  (:class:`JobJournal`) write-ahead logging admissions and engine
  checkpoints for crash recovery (``repro serve --journal-dir``);
- :mod:`repro.service.client` — a blocking client (:class:`ServiceClient`)
  used by ``repro submit`` / ``repro jobs`` and the tests, with typed
  retryable errors and idempotent resubmission.

See ``docs/service.md`` for the protocol and operational guide.
"""

from __future__ import annotations

from .client import (
    ServiceClient,
    ServiceError,
    ServiceInterruptedError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)
from .daemon import PROTOCOL_VERSION, RepairDaemon
from .jobs import JOB_STATES, SCHEMA_VERSION, JobStatus, RepairRequest, RepairResponse
from .journal import JobJournal, JournalCheckpointSink
from .queue import Job, JobQueue

__all__ = [
    "JOB_STATES",
    "PROTOCOL_VERSION",
    "SCHEMA_VERSION",
    "Job",
    "JobJournal",
    "JobQueue",
    "JobStatus",
    "JournalCheckpointSink",
    "RepairDaemon",
    "RepairRequest",
    "RepairResponse",
    "ServiceClient",
    "ServiceError",
    "ServiceInterruptedError",
    "ServiceOverloadedError",
    "ServiceUnavailableError",
]
