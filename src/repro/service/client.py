"""Blocking client for the repair service socket protocol.

:class:`ServiceClient` speaks the daemon's NDJSON protocol
(:mod:`repro.service.daemon`) over an ``AF_UNIX`` socket with plain
blocking I/O — no asyncio needed on the client side, which keeps the
CLI (``repro submit`` / ``repro jobs``) and tests simple.  One
operation per connection, mirroring the server.

Failures surface as typed :class:`ServiceError` subclasses so callers
can react without parsing prose:

- :class:`ServiceUnavailableError` — nothing listening on the socket;
- :class:`ServiceOverloadedError` — admission control shed the request
  (carries the daemon's ``retry_after_hint``);
- :class:`ServiceInterruptedError` — the daemon dropped the connection
  mid-job (typically a crash or hard kill).

All three are *retryable*: :meth:`ServiceClient.submit` takes a
``retries`` budget and resubmits with capped exponential backoff.
Resubmission is idempotent by construction — the daemon dedups on
:meth:`~repro.service.jobs.RepairRequest.job_key`, so a retry joins the
original job (or its journal-recovered successor) instead of spawning
duplicate work.
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Any, Callable

from ..obs.events import RepairEvent, event_from_dict
from .jobs import JobStatus, RepairRequest, RepairResponse


class ServiceError(Exception):
    """The daemon answered ``{"ok": false}`` (or spoke garbage)."""


class ServiceUnavailableError(ServiceError, ConnectionError):
    """Could not connect — no daemon is listening on the socket.

    Also a :class:`ConnectionError` (hence an ``OSError``), so callers
    that predate the typed errors and catch ``OSError`` around a
    connect still work unchanged.
    """

    def __init__(self, socket_path: str, cause: Exception):
        super().__init__(
            f"no repair daemon listening on {socket_path!r} ({cause})"
        )
        self.socket_path = socket_path


class ServiceOverloadedError(ServiceError):
    """Admission control shed the request (``code: "overloaded"``)."""

    def __init__(self, message: str, retry_after_hint: float):
        super().__init__(message)
        #: Daemon's estimate (seconds) of when a slot frees up.
        self.retry_after_hint = retry_after_hint


class ServiceInterruptedError(ServiceError):
    """The daemon dropped the connection before the job finished."""


class ServiceClient:
    """Talk to a running :class:`~repro.service.daemon.RepairDaemon`.

    Args:
        socket_path: The daemon's Unix socket path.
        timeout: Per-connection socket timeout in seconds (None blocks
            forever — the right choice when waiting on long repairs).
    """

    def __init__(self, socket_path: str, timeout: "float | None" = None):
        self.socket_path = socket_path
        self.timeout = timeout

    def _call(self, payload: dict[str, Any]):
        """Open a connection, send one op line, yield reply dicts."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            try:
                sock.connect(self.socket_path)
            except (ConnectionRefusedError, FileNotFoundError, OSError) as exc:
                raise ServiceUnavailableError(self.socket_path, exc) from exc
            stream = sock.makefile("rwb")
            stream.write(json.dumps(payload, separators=(",", ":")).encode() + b"\n")
            stream.flush()
            for line in stream:
                if line.strip():
                    yield json.loads(line)
        finally:
            sock.close()

    @staticmethod
    def _check(reply: dict[str, Any]) -> dict[str, Any]:
        """Raise a typed :class:`ServiceError` on an error reply."""
        if reply.get("ok") is False:
            message = reply.get("error", "unknown service error")
            if reply.get("code") == "overloaded":
                raise ServiceOverloadedError(
                    message, float(reply.get("retry_after_hint", 1.0))
                )
            raise ServiceError(message)
        return reply

    def ping(self) -> dict[str, Any]:
        """Liveness probe; returns the daemon's ping reply."""
        for reply in self._call({"op": "ping"}):
            return self._check(reply)
        raise ServiceInterruptedError("daemon closed the connection without replying")

    def submit(
        self,
        request: RepairRequest,
        wait: bool = True,
        stream: bool = False,
        on_event: "Callable[[RepairEvent], None] | None" = None,
        retries: int = 0,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> tuple[JobStatus, "RepairResponse | None"]:
        """Submit one request; returns ``(admission_status, response)``.

        With ``wait=False`` (and no stream) the call returns right after
        admission with ``response=None`` — poll :meth:`jobs` later.  With
        ``stream=True`` each telemetry event is decoded and handed to
        ``on_event`` as it arrives (events with unknown types are
        skipped), and the call still returns the terminal response.

        ``retries`` > 0 resubmits on :class:`ServiceUnavailableError`,
        :class:`ServiceOverloadedError`, and
        :class:`ServiceInterruptedError` — safe because the daemon dedups
        on the request's ``job_key`` (a retry joins in-flight or
        journal-recovered work rather than duplicating it).  Backoff is
        ``min(backoff_cap, backoff_base * 2**attempt)``, raised to the
        daemon's ``retry_after_hint`` when shed, with deterministic
        jitter seeded from the job key.  ``sleep`` is injectable for
        tests.
        """
        rng = random.Random(request.job_key())
        attempt = 0
        while True:
            try:
                return self._submit_once(request, wait, stream, on_event)
            except (
                ServiceUnavailableError,
                ServiceOverloadedError,
                ServiceInterruptedError,
            ) as exc:
                if attempt >= retries:
                    raise
                delay = min(backoff_cap, backoff_base * (2.0 ** attempt))
                if isinstance(exc, ServiceOverloadedError):
                    delay = max(delay, min(backoff_cap, exc.retry_after_hint))
                # Jitter in [0.5, 1.5): deterministic per job key, so
                # identical clients desynchronize identically every run.
                delay *= 0.5 + rng.random()
                sleep(delay)
                attempt += 1

    def _submit_once(
        self,
        request: RepairRequest,
        wait: bool,
        stream: bool,
        on_event: "Callable[[RepairEvent], None] | None",
    ) -> tuple[JobStatus, "RepairResponse | None"]:
        """One submit attempt (the body :meth:`submit` retries)."""
        payload = {
            "op": "submit",
            "request": request.to_dict(),
            "wait": wait,
            "stream": stream,
        }
        admitted: JobStatus | None = None
        for reply in self._call(payload):
            self._check(reply)
            if "job" in reply and admitted is None:
                admitted = JobStatus.from_dict(reply["job"])
                if not wait and not stream:
                    return admitted, None
            elif "event" in reply and on_event is not None:
                try:
                    on_event(event_from_dict(reply["event"]))
                except ValueError:  # newer daemon, unknown event type
                    pass
            elif "response" in reply:
                if admitted is None:
                    raise ServiceError("response arrived before admission")
                return admitted, RepairResponse.from_dict(reply["response"])
        if admitted is not None and not wait and not stream:
            return admitted, None
        raise ServiceInterruptedError("daemon closed the connection mid-job")

    def jobs(self) -> list[JobStatus]:
        """The daemon's job table (every job ever admitted)."""
        for reply in self._call({"op": "jobs"}):
            self._check(reply)
            return [JobStatus.from_dict(row) for row in reply.get("jobs", [])]
        raise ServiceInterruptedError("daemon closed the connection without replying")

    def cancel(self, job_id: str) -> JobStatus:
        """Cancel a job by id; returns its (possibly updated) status."""
        for reply in self._call({"op": "cancel", "job_id": job_id}):
            self._check(reply)
            return JobStatus.from_dict(reply["job"])
        raise ServiceInterruptedError("daemon closed the connection without replying")

    def shutdown(self) -> dict[str, Any]:
        """Ask the daemon to drain and exit; returns its acknowledgement."""
        for reply in self._call({"op": "shutdown"}):
            return self._check(reply)
        raise ServiceInterruptedError("daemon closed the connection without replying")


__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailableError",
    "ServiceOverloadedError",
    "ServiceInterruptedError",
]
