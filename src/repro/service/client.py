"""Blocking client for the repair service socket protocol.

:class:`ServiceClient` speaks the daemon's NDJSON protocol
(:mod:`repro.service.daemon`) over an ``AF_UNIX`` socket with plain
blocking I/O — no asyncio needed on the client side, which keeps the
CLI (``repro submit`` / ``repro jobs``) and tests simple.  One
operation per connection, mirroring the server.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Callable

from ..obs.events import RepairEvent, event_from_dict
from .jobs import JobStatus, RepairRequest, RepairResponse


class ServiceError(Exception):
    """The daemon answered ``{"ok": false}`` (or spoke garbage)."""


class ServiceClient:
    """Talk to a running :class:`~repro.service.daemon.RepairDaemon`.

    Args:
        socket_path: The daemon's Unix socket path.
        timeout: Per-connection socket timeout in seconds (None blocks
            forever — the right choice when waiting on long repairs).
    """

    def __init__(self, socket_path: str, timeout: "float | None" = None):
        self.socket_path = socket_path
        self.timeout = timeout

    def _call(self, payload: dict[str, Any]):
        """Open a connection, send one op line, yield reply dicts."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
            stream = sock.makefile("rwb")
            stream.write(json.dumps(payload, separators=(",", ":")).encode() + b"\n")
            stream.flush()
            for line in stream:
                if line.strip():
                    yield json.loads(line)
        finally:
            sock.close()

    @staticmethod
    def _check(reply: dict[str, Any]) -> dict[str, Any]:
        """Raise :class:`ServiceError` on an error reply; pass others."""
        if reply.get("ok") is False:
            raise ServiceError(reply.get("error", "unknown service error"))
        return reply

    def ping(self) -> dict[str, Any]:
        """Liveness probe; returns the daemon's ping reply."""
        for reply in self._call({"op": "ping"}):
            return self._check(reply)
        raise ServiceError("daemon closed the connection without replying")

    def submit(
        self,
        request: RepairRequest,
        wait: bool = True,
        stream: bool = False,
        on_event: "Callable[[RepairEvent], None] | None" = None,
    ) -> tuple[JobStatus, "RepairResponse | None"]:
        """Submit one request; returns ``(admission_status, response)``.

        With ``wait=False`` (and no stream) the call returns right after
        admission with ``response=None`` — poll :meth:`jobs` later.  With
        ``stream=True`` each telemetry event is decoded and handed to
        ``on_event`` as it arrives (events with unknown types are
        skipped), and the call still returns the terminal response.
        """
        payload = {
            "op": "submit",
            "request": request.to_dict(),
            "wait": wait,
            "stream": stream,
        }
        admitted: JobStatus | None = None
        for reply in self._call(payload):
            self._check(reply)
            if "job" in reply and admitted is None:
                admitted = JobStatus.from_dict(reply["job"])
                if not wait and not stream:
                    return admitted, None
            elif "event" in reply and on_event is not None:
                try:
                    on_event(event_from_dict(reply["event"]))
                except ValueError:  # newer daemon, unknown event type
                    pass
            elif "response" in reply:
                if admitted is None:
                    raise ServiceError("response arrived before admission")
                return admitted, RepairResponse.from_dict(reply["response"])
        if admitted is not None and not wait and not stream:
            return admitted, None
        raise ServiceError("daemon closed the connection mid-job")

    def jobs(self) -> list[JobStatus]:
        """The daemon's job table (every job ever admitted)."""
        for reply in self._call({"op": "jobs"}):
            self._check(reply)
            return [JobStatus.from_dict(row) for row in reply.get("jobs", [])]
        raise ServiceError("daemon closed the connection without replying")

    def cancel(self, job_id: str) -> JobStatus:
        """Cancel a job by id; returns its (possibly updated) status."""
        for reply in self._call({"op": "cancel", "job_id": job_id}):
            self._check(reply)
            return JobStatus.from_dict(reply["job"])
        raise ServiceError("daemon closed the connection without replying")

    def shutdown(self) -> dict[str, Any]:
        """Ask the daemon to drain and exit; returns its acknowledgement."""
        for reply in self._call({"op": "shutdown"}):
            return self._check(reply)
        raise ServiceError("daemon closed the connection without replying")


__all__ = ["ServiceClient", "ServiceError"]
