"""Durable write-ahead job journal for the repair daemon.

The daemon keeps queued and running jobs in memory; without a journal a
crash (or ``kill -9``) silently loses them all.  :class:`JobJournal`
records every job's admission, start, and terminal completion as one
JSON file per job, written atomically (tmp file + ``os.replace``, the
same discipline as :class:`~repro.cache.store.PersistentEvalCache`), so
at any instant the directory is a consistent snapshot of daemon state.

On ``repro serve --recover`` the daemon replays the journal
(:meth:`JobJournal.unfinished`) and re-admits every job that never
reached a terminal state.  Alongside the per-job records the journal
stores engine **checkpoints** (:class:`JournalCheckpointSink`): at each
generation/template boundary the engine snapshots its deterministic
cursor — seed, rng stream digest, ``eval_sims``, best-so-far — and the
sink persists it.  Recovery does not deserialize populations: the
engine replays from the start with the persistent eval cache warm, so
every pre-crash evaluation is a disk hit and the replay reaches the
checkpointed cursor at cache speed; the stored snapshot then serves as
a *verification* record — when the replay crosses the same cursor the
sink compares seed, rng digest, and ``eval_sims`` and flags any drift.

Layout under ``--journal-dir``::

    jobs/<job_id>.json          admission/start/terminal record
    checkpoints/<job_id>.json   latest engine cursor snapshot

Corrupt or truncated files (a crash can land mid-write only on the tmp
file, but disks lie) are dropped and counted, never fatal — mirroring
the cache store's corruption tolerance.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from pathlib import Path
from typing import Any

logger = logging.getLogger("repro.service")

#: On-disk journal schema; bump on incompatible record changes.
JOURNAL_SCHEMA = 1

#: Job states with nothing left to do; anything else is re-admitted.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


class JournalRecord:
    """One job's journaled lifecycle (parsed from ``jobs/<id>.json``)."""

    def __init__(
        self,
        job_id: str,
        state: str,
        request: dict[str, Any],
        error: str = "",
        attempts: int = 1,
    ) -> None:
        self.job_id = job_id
        self.state = state
        #: The admitted request's ``to_dict`` form (re-parsed on recovery).
        self.request = request
        self.error = error
        #: How many daemon lifetimes have admitted this job (1 = never
        #: recovered).  Poison jobs that crash the daemon repeatedly are
        #: failed instead of re-admitted once this crosses the cap.
        self.attempts = attempts

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping (the on-disk record shape)."""
        return {
            "schema": JOURNAL_SCHEMA,
            "job_id": self.job_id,
            "state": self.state,
            "request": self.request,
            "error": self.error,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JournalRecord":
        if (
            not isinstance(data, dict)
            or data.get("schema") != JOURNAL_SCHEMA
            or not isinstance(data.get("job_id"), str)
            or not isinstance(data.get("request"), dict)
        ):
            raise ValueError("malformed journal record")
        return cls(
            job_id=data["job_id"],
            state=str(data.get("state", "")),
            request=data["request"],
            error=str(data.get("error", "")),
            attempts=int(data.get("attempts", 1)),
        )


def _job_ordinal(job_id: str) -> int:
    """The ``<n>`` in ``job-<n>-<key8>`` (0 for foreign id shapes)."""
    parts = job_id.split("-")
    if len(parts) >= 2 and parts[0] == "job" and parts[1].isdigit():
        return int(parts[1])
    return 0


class JobJournal:
    """Atomic per-job WAL + checkpoint store under one directory.

    Thread-safe: admissions and terminal transitions happen on the
    daemon's event-loop thread while checkpoint saves arrive from job
    worker threads.
    """

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self.root = Path(root)
        self._jobs_dir = self.root / "jobs"
        self._checkpoints_dir = self.root / "checkpoints"
        self._jobs_dir.mkdir(parents=True, exist_ok=True)
        self._checkpoints_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.records_written = 0
        self.checkpoints_written = 0
        self.corrupt_dropped = 0

    # ------------------------------------------------------------------
    # Job lifecycle records
    # ------------------------------------------------------------------

    def record_admitted(self, job_id: str, request: dict[str, Any],
                        attempts: int = 1) -> None:
        """WAL an admission (or recovery re-admission) before it runs."""
        self._write_record(
            JournalRecord(job_id, "queued", dict(request), attempts=attempts)
        )

    def record_started(self, job_id: str) -> None:
        """Transition a journaled job to ``running``."""
        self._transition(job_id, "running")

    def record_completed(self, job_id: str, state: str, error: str = "") -> None:
        """Terminal transition; also discards the job's checkpoint."""
        if state not in TERMINAL_STATES:
            raise ValueError(f"non-terminal journal state {state!r}")
        self._transition(job_id, state, error)
        with self._lock:
            try:
                self._checkpoint_path(job_id).unlink(missing_ok=True)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    def _transition(self, job_id: str, state: str, error: str = "") -> None:
        record = self.get(job_id)
        if record is None:
            # A journal attached mid-flight (or a dropped corrupt record):
            # synthesize a requestless record so the state is not lost —
            # recovery skips it (no request to re-admit) but operators
            # still see the terminal state.
            record = JournalRecord(job_id, state, {}, error)
        record.state = state
        record.error = error
        self._write_record(record)

    def _write_record(self, record: JournalRecord) -> None:
        path = self._jobs_dir / f"{record.job_id}.json"
        data = json.dumps(record.to_dict(), sort_keys=True).encode()
        with self._lock:
            if self._atomic_write(path, data):
                self.records_written += 1

    def get(self, job_id: str) -> JournalRecord | None:
        """Load one record; None when absent or corrupt (then dropped)."""
        path = self._jobs_dir / f"{job_id}.json"
        return self._load_record(path)

    def records(self) -> list[JournalRecord]:
        """Every parseable record, ordered by job ordinal then id."""
        out: list[JournalRecord] = []
        try:
            paths = sorted(self._jobs_dir.iterdir())
        except OSError:  # pragma: no cover - unreadable journal
            logger.warning("journal scan failed under %s", self._jobs_dir)
            return out
        for path in paths:
            if path.suffix != ".json":
                continue  # tmp files, strays
            record = self._load_record(path)
            if record is not None:
                out.append(record)
        out.sort(key=lambda r: (_job_ordinal(r.job_id), r.job_id))
        return out

    def unfinished(self) -> list[JournalRecord]:
        """Records needing recovery: admitted/started but never terminal."""
        return [
            record
            for record in self.records()
            if record.state not in TERMINAL_STATES and record.request
        ]

    def max_ordinal(self) -> int:
        """Highest ``job-<n>-…`` ordinal ever journaled (0 when empty).

        Recovery preserves journaled job ids; the queue's id counter must
        start past them so new jobs never collide.
        """
        return max((_job_ordinal(r.job_id) for r in self.records()), default=0)

    def _load_record(self, path: Path) -> JournalRecord | None:
        try:
            return JournalRecord.from_dict(json.loads(path.read_bytes()))
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            with self._lock:
                self.corrupt_dropped += 1
            logger.warning("dropping corrupt journal record %s", path.name)
            try:
                path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - best-effort
                pass
            return None

    # ------------------------------------------------------------------
    # Engine checkpoints
    # ------------------------------------------------------------------

    def _checkpoint_path(self, job_id: str) -> Path:
        return self._checkpoints_dir / f"{job_id}.json"

    def save_checkpoint(self, job_id: str, state: dict[str, Any]) -> None:
        """Persist the latest engine cursor snapshot for one job."""
        payload = {"schema": JOURNAL_SCHEMA, "job_id": job_id, "state": state}
        data = json.dumps(payload, sort_keys=True).encode()
        with self._lock:
            if self._atomic_write(self._checkpoint_path(job_id), data):
                self.checkpoints_written += 1

    def load_checkpoint(self, job_id: str) -> dict[str, Any] | None:
        """The job's last snapshot; None when absent or corrupt."""
        path = self._checkpoint_path(job_id)
        try:
            payload = json.loads(path.read_bytes())
            if (
                not isinstance(payload, dict)
                or payload.get("schema") != JOURNAL_SCHEMA
                or payload.get("job_id") != job_id
                or not isinstance(payload.get("state"), dict)
            ):
                raise ValueError("malformed checkpoint")
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            with self._lock:
                self.corrupt_dropped += 1
            logger.warning("dropping corrupt checkpoint %s", path.name)
            try:
                path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - best-effort
                pass
            return None
        return payload["state"]

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------

    def _atomic_write(self, path: Path, data: bytes) -> bool:
        """tmp + ``os.replace`` write (lock held); False on failure."""
        tmp = path.with_suffix(".tmp.%d" % os.getpid())
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
            return True
        except OSError as exc:
            logger.warning("journal write failed for %s (%s)", path.name, exc)
            try:
                tmp.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - best-effort
                pass
            return False

    def info(self) -> dict[str, int]:
        """Counters (tests and operator diagnostics)."""
        with self._lock:
            return {
                "records_written": self.records_written,
                "checkpoints_written": self.checkpoints_written,
                "corrupt_dropped": self.corrupt_dropped,
            }


class JournalCheckpointSink:
    """Per-job adapter between an engine's checkpoint hook and the journal.

    The engine calls :meth:`save` at every search boundary (from its
    worker thread).  On a recovered job the daemon primes the sink with
    the pre-crash snapshot (:meth:`load`); when the deterministic replay
    crosses the same ``(engine, seed, cursor)`` the sink compares the
    replayed ``eval_sims`` and rng digest against the snapshot —
    :attr:`verified` records whether the resume was bit-exact.
    """

    def __init__(self, journal: JobJournal, job_id: str) -> None:
        self._journal = journal
        self.job_id = job_id
        #: Snapshots persisted through this sink.
        self.saves = 0
        #: The pre-crash snapshot being verified (None once checked).
        self.resumed_from: dict[str, Any] | None = None
        #: None until the replay reaches the resumed cursor; then True
        #: when the replayed counters matched the snapshot bit-exactly.
        self.verified: bool | None = None

    def load(self) -> dict[str, Any] | None:
        """Prime the sink with the journaled snapshot (daemon recovery)."""
        self.resumed_from = self._journal.load_checkpoint(self.job_id)
        return self.resumed_from

    def save(self, state: dict[str, Any]) -> None:
        """Persist one snapshot; verify it against a primed resume point."""
        self.saves += 1
        resumed = self.resumed_from
        if (
            resumed is not None
            and state.get("engine") == resumed.get("engine")
            and state.get("seed") == resumed.get("seed")
            and state.get("cursor") == resumed.get("cursor")
        ):
            self.verified = (
                state.get("eval_sims") == resumed.get("eval_sims")
                and state.get("rng") == resumed.get("rng")
            )
            self.resumed_from = None  # one-shot: later cursors are new work
            if not self.verified:
                logger.warning(
                    "job %s resume drift at cursor %s: replay eval_sims=%s "
                    "rng=%s vs journal eval_sims=%s rng=%s",
                    self.job_id, state.get("cursor"), state.get("eval_sims"),
                    state.get("rng"), resumed.get("eval_sims"),
                    resumed.get("rng"),
                )
        self._journal.save_checkpoint(self.job_id, state)


__all__ = [
    "JOURNAL_SCHEMA",
    "TERMINAL_STATES",
    "JobJournal",
    "JournalCheckpointSink",
    "JournalRecord",
]
