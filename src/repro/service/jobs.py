"""The versioned, typed job API of the repair service.

Three frozen dataclasses define the wire contract between clients and
the daemon (and double as the canonical argument objects behind
``repro.api``):

- :class:`RepairRequest` — what to repair (a benchmark scenario id, or
  raw design/testbench/golden/oracle texts), with which config
  overrides, seeds, engine, and tenant;
- :class:`JobStatus` — one row of the daemon's job table;
- :class:`RepairResponse` — the terminal answer for one job, carrying
  the outcome report JSON and the job's cache statistics.

All three carry a ``schema_version`` and round-trip losslessly through
``to_json`` / ``from_json``; serialization is *stable* (sorted keys,
fixed separators), so equal values always produce byte-equal JSON —
which is what makes :meth:`RepairRequest.job_key` a usable dedup key.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core.config import RepairConfig
from ..core.engines import DEFAULT_ENGINE, engine_names

#: Version of the job API schema.  Bump on any incompatible field
#: change; ``from_json`` rejects payloads from other versions.
SCHEMA_VERSION = 1

#: Job states a :class:`JobStatus` may report, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


def _stable_json(data: Mapping[str, Any]) -> str:
    """Canonical JSON: sorted keys, no whitespace — byte-stable."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _load(cls_name: str, text: str) -> dict[str, Any]:
    """Parse one payload and check its schema version."""
    data = json.loads(text)
    if not isinstance(data, dict):
        raise ValueError(f"{cls_name} payload must be a JSON object")
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{cls_name} schema_version {version!r} is not supported "
            f"(this build speaks version {SCHEMA_VERSION})"
        )
    return data


@dataclass(frozen=True)
class RepairRequest:
    """One repair job, fully described by value.

    Exactly one problem source must be given: ``scenario`` (a benchmark
    scenario id such as ``"counter_reset"``) or ``design`` +
    ``testbench`` + one of ``golden`` / ``oracle_csv`` (raw Verilog /
    trace-CSV texts).  ``config`` holds :class:`RepairConfig` *overrides*
    as a plain mapping (the same keys ``repair.conf`` accepts), applied
    on top of the server's base config — requests stay valid across
    config-default changes.
    """

    schema_version: int = SCHEMA_VERSION
    #: Benchmark scenario id ("" when the texts below are used).
    scenario: str = ""
    #: Faulty design Verilog text ("" when ``scenario`` is used).
    design: str = ""
    #: Testbench Verilog text (instrumented automatically if needed).
    testbench: str = ""
    #: Golden design text — one oracle source …
    golden: str = ""
    #: … or an expected-behaviour trace CSV (Figure 2 shape).
    oracle_csv: str = ""
    #: :class:`RepairConfig` overrides (string-keyed; values may be
    #: strings or JSON scalars — coerced like ``repair.conf`` entries).
    config: dict[str, Any] = field(default_factory=dict)
    #: Independent trial seeds; first plausible wins.
    seeds: tuple[int, ...] = (0, 1, 2)
    #: Registered repair engine to run (:mod:`repro.core.engines`).
    engine: str = DEFAULT_ENGINE
    #: Fair-share scheduling bucket; never part of the dedup key.
    tenant: str = "default"

    def validate(self) -> "RepairRequest":
        """Check structural validity; raises ``ValueError``.

        Config override *values* are checked separately by
        :meth:`resolved_config` (they need the server's base config).
        """
        if bool(self.scenario) == bool(self.design):
            raise ValueError(
                "provide exactly one of: a scenario id, or design+testbench texts"
            )
        if self.design and not self.testbench:
            raise ValueError("a design text needs a testbench text")
        if self.design and bool(self.golden) == bool(self.oracle_csv):
            raise ValueError(
                "a design text needs exactly one oracle source "
                "(golden design or oracle CSV)"
            )
        if not self.seeds:
            raise ValueError("at least one seed is required")
        if self.engine not in engine_names():
            raise ValueError(
                f"unknown repair engine {self.engine!r} "
                f"(registered: {', '.join(engine_names())})"
            )
        if not self.tenant:
            raise ValueError("tenant must be non-empty")
        return self

    def resolved_config(self, base: RepairConfig | None = None) -> RepairConfig:
        """Apply the request's overrides to ``base`` and validate.

        Raises :class:`~repro.core.config.ConfigError` (a ``ValueError``)
        for unknown keys or bad values — admission fails fast instead of
        a queued job failing later.
        """
        return RepairConfig.from_mapping(
            self.config, base=base, source="repair request"
        )

    def job_key(self) -> str:
        """The dedup/cache key: hash of everything outcome-relevant.

        Two requests with equal keys are guaranteed to produce identical
        outcomes (the engine's determinism contract), so the daemon
        coalesces them onto one job.  ``tenant`` is excluded — identical
        work is identical work regardless of who asked; tenancy affects
        scheduling only.
        """
        data = self.to_dict()
        del data["tenant"]
        return hashlib.sha256(_stable_json(data).encode("utf-8")).hexdigest()

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping (tuples become lists)."""
        data = dataclasses.asdict(self)
        data["seeds"] = list(self.seeds)
        return data

    def to_json(self) -> str:
        """Stable JSON serialization (byte-equal for equal requests)."""
        return _stable_json(self.to_dict())

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RepairRequest":
        """Rebuild a request from its :meth:`to_dict` form."""
        names = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in names}
        if "seeds" in kwargs:
            kwargs["seeds"] = tuple(int(s) for s in kwargs["seeds"])
        if "config" in kwargs:
            kwargs["config"] = dict(kwargs["config"])
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "RepairRequest":
        """Inverse of :meth:`to_json`; rejects other schema versions."""
        return cls.from_dict(_load("RepairRequest", text))


@dataclass(frozen=True)
class JobStatus:
    """One row of the daemon's job table (the ``repro jobs`` output)."""

    schema_version: int = SCHEMA_VERSION
    job_id: str = ""
    #: One of :data:`JOB_STATES`.
    state: str = "queued"
    tenant: str = "default"
    #: Scenario id, or ``"<custom>"`` for raw-text requests.
    scenario: str = ""
    #: How many submissions are attached to this job (1 = no joins).
    submissions: int = 1
    #: Error summary for ``failed`` jobs ("" otherwise).
    error: str = ""
    #: Telemetry events dropped by this job's streaming bridges — the
    #: lossy-at-tail backpressure contract made visible: a slow
    #: streaming consumer loses events rather than slowing the engine,
    #: and this counter says how many.  (Additive field; absent in
    #: pre-journal payloads, which parse as 0.)
    dropped_events: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping."""
        return dataclasses.asdict(self)

    def to_json(self) -> str:
        """Stable JSON serialization."""
        return _stable_json(self.to_dict())

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobStatus":
        """Rebuild a status row from its :meth:`to_dict` form."""
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})

    @classmethod
    def from_json(cls, text: str) -> "JobStatus":
        """Inverse of :meth:`to_json`; rejects other schema versions."""
        return cls.from_dict(_load("JobStatus", text))


@dataclass(frozen=True)
class RepairResponse:
    """The terminal answer for one job.

    ``status`` is ``"done"`` (the repair ran to completion — look at
    ``plausible`` for whether it *succeeded*), ``"failed"`` (the run
    raised; see ``error``), or ``"cancelled"``.  ``outcome_json`` is the
    full :func:`repro.core.serialize.outcome_to_json` report — the same
    bytes a direct ``repro repair`` of the request would produce, modulo
    the wall-clock ``elapsed_seconds`` field.
    """

    schema_version: int = SCHEMA_VERSION
    job_id: str = ""
    status: str = "done"
    plausible: bool = False
    fitness: float = 0.0
    #: Full outcome report JSON ("" for failed/cancelled-before-start).
    outcome_json: str = ""
    error: str = ""
    #: Evaluation-cache statistics measured over this job (persistent
    #: tier deltas: ``store_hits``, ``store_misses``, ``hit_rate``).
    cache: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping."""
        return dataclasses.asdict(self)

    def to_json(self) -> str:
        """Stable JSON serialization."""
        return _stable_json(self.to_dict())

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RepairResponse":
        """Rebuild a response from its :meth:`to_dict` form."""
        names = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in names}
        if "cache" in kwargs:
            kwargs["cache"] = dict(kwargs["cache"])
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "RepairResponse":
        """Inverse of :meth:`to_json`; rejects other schema versions."""
        return cls.from_dict(_load("RepairResponse", text))


__all__ = [
    "SCHEMA_VERSION",
    "JOB_STATES",
    "RepairRequest",
    "JobStatus",
    "RepairResponse",
]
