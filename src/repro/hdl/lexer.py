"""Hand-written lexer for the supported Verilog subset.

The lexer strips ``//`` and ``/* */`` comments, recognises based number
literals (``4'b10x0``, ``8'hFF``, ``'d42``), identifiers (including escaped
identifiers and system identifiers like ``$display``), strings, operators and
punctuation.  Compiler directives (`` `timescale``, `` `define`` etc.) are
handled by :mod:`repro.hdl.preprocess` before the lexer runs; any stray
backtick directives encountered here are skipped to end of line.
"""

from __future__ import annotations

from .tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    PUNCTUATION,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenKind,
)


class LexError(Exception):
    """Raised when the lexer encounters an unrecognised character."""

    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"{message} at line {line}, column {col}")
        self.line = line
        self.col = col


_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789$")
_DIGITS = frozenset("0123456789")
_BASE_CHARS = frozenset("bBoOdDhH")
_NUMBER_BODY = frozenset("0123456789abcdefABCDEFxXzZ?_")


class Lexer:
    """Tokenises Verilog source text.

    Use :func:`tokenize` for the common one-shot case.
    """

    def __init__(self, source: str):
        self._src = source
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokens(self) -> list[Token]:
        """Lex the whole input and return the token list (ending with EOF)."""
        out: list[Token] = []
        while True:
            tok = self._next_token()
            out.append(tok)
            if tok.kind is TokenKind.EOF:
                return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        pos = self._pos + offset
        return self._src[pos] if pos < len(self._src) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._src):
                return
            if self._src[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    def _skip_trivia(self) -> None:
        """Skip whitespace, comments, and backtick directives."""
        while self._pos < len(self._src):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._src) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._pos < len(self._src) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                self._advance(2)
            elif ch == "`":
                # Directive survived preprocessing; ignore to end of line.
                while self._pos < len(self._src) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, col = self._line, self._col
        ch = self._peek()
        if not ch:
            return Token(TokenKind.EOF, "", line, col)
        if ch in _IDENT_START:
            return self._lex_ident(line, col)
        if ch in _DIGITS or (ch == "'" and self._peek(1) in _BASE_CHARS | frozenset("sS")):
            return self._lex_number(line, col)
        if ch == "$":
            return self._lex_system_ident(line, col)
        if ch == '"':
            return self._lex_string(line, col)
        if ch == "\\":
            return self._lex_escaped_ident(line, col)
        for op in MULTI_CHAR_OPERATORS:
            if self._src.startswith(op, self._pos):
                self._advance(len(op))
                return Token(TokenKind.OPERATOR, op, line, col)
        if ch in SINGLE_CHAR_OPERATORS:
            self._advance()
            return Token(TokenKind.OPERATOR, ch, line, col)
        if ch in PUNCTUATION:
            self._advance()
            return Token(TokenKind.PUNCT, ch, line, col)
        raise LexError(f"unexpected character {ch!r}", line, col)

    def _lex_ident(self, line: int, col: int) -> Token:
        start = self._pos
        while self._peek() in _IDENT_CONT:
            self._advance()
        text = self._src[start : self._pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, line, col)

    def _lex_escaped_ident(self, line: int, col: int) -> Token:
        self._advance()  # backslash
        start = self._pos
        while self._peek() and self._peek() not in " \t\r\n":
            self._advance()
        return Token(TokenKind.IDENT, self._src[start : self._pos], line, col)

    def _lex_system_ident(self, line: int, col: int) -> Token:
        start = self._pos
        self._advance()  # $
        while self._peek() in _IDENT_CONT:
            self._advance()
        return Token(TokenKind.SYSTEM_IDENT, self._src[start : self._pos], line, col)

    def _lex_string(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        start = self._pos
        while self._peek() and self._peek() != '"':
            if self._peek() == "\\":
                self._advance()
            self._advance()
        text = self._src[start : self._pos]
        if not self._peek():
            raise LexError("unterminated string literal", line, col)
        self._advance()  # closing quote
        return Token(TokenKind.STRING, text, line, col)

    def _lex_number(self, line: int, col: int) -> Token:
        """Lex a number: plain decimal, real, or based literal.

        A based literal may carry an explicit size prefix (``4'b1010``) or
        not (``'hFF``).  The size prefix, if present, was already consumed
        as part of this token because we look ahead for a quote.
        """
        start = self._pos
        while self._peek() in _DIGITS or self._peek() == "_":
            self._advance()
        # Real number (simple form: digits '.' digits).
        if self._peek() == "." and self._peek(1) in _DIGITS:
            self._advance()
            while self._peek() in _DIGITS:
                self._advance()
            return Token(TokenKind.NUMBER, self._src[start : self._pos], line, col)
        # Based literal: optional whitespace between size and base is legal,
        # but our subset requires them adjacent (all benchmark code complies).
        if self._peek() == "'":
            self._advance()
            if self._peek() in "sS":
                self._advance()
            if self._peek() not in _BASE_CHARS:
                raise LexError("expected number base after quote", line, col)
            self._advance()
            while self._peek() in _NUMBER_BODY:
                self._advance()
        return Token(TokenKind.NUMBER, self._src[start : self._pos], line, col)


def tokenize(source: str) -> list[Token]:
    """Tokenise ``source`` and return the token list terminated by EOF."""
    return Lexer(source).tokens()
