"""Name-level dataflow helpers over the AST.

These queries — which identifiers an assignment writes, which names an
expression reads, which expression guards a conditional — are the shared
substrate of two analyses: the fixed-point fault localization in
:mod:`repro.core.faultloc` (paper §3.1, Algorithm 2) and the static lint
rules in :mod:`repro.lint`.  They live here so the lint subsystem can
depend on the frontend alone, without importing the repair engine.

All helpers are purely structural: no elaboration, no symbol table.  A
hierarchical or generated name that the subset cannot express never
reaches them (the parser would have rejected it).
"""

from __future__ import annotations

from . import ast


def lhs_names(lhs: ast.Expr) -> set[str]:
    """Identifier names *written* by an assignment target.

    Looks through bit-/part-selects and concatenations: ``{a, b[3:0]}``
    writes ``a`` and ``b``.  Index and select subscripts are reads, not
    writes — see :func:`lhs_read_names`.
    """
    names: set[str] = set()
    stack: list[ast.Expr] = [lhs]
    while stack:
        expr = stack.pop()
        if isinstance(expr, ast.Identifier):
            names.add(expr.name)
        elif isinstance(expr, (ast.Index, ast.PartSelect)):
            stack.append(expr.target)
        elif isinstance(expr, ast.Concat):
            stack.extend(expr.parts)
    return names


def lhs_read_names(lhs: ast.Expr) -> set[str]:
    """Identifier names *read* by an assignment target's subscripts.

    ``mem[addr] <= x`` writes ``mem`` but reads ``addr``; the select
    bounds of a part-select are reads too.
    """
    reads: set[str] = set()
    stack: list[ast.Expr] = [lhs]
    while stack:
        expr = stack.pop()
        if isinstance(expr, ast.Index):
            stack.append(expr.target)
            reads |= expr_names(expr.index)
        elif isinstance(expr, ast.PartSelect):
            stack.append(expr.target)
            reads |= expr_names(expr.msb)
            reads |= expr_names(expr.lsb)
        elif isinstance(expr, ast.Concat):
            stack.extend(expr.parts)
    return reads


def expr_names(expr: ast.Expr | None) -> set[str]:
    """Every identifier name appearing anywhere in an expression."""
    if expr is None:
        return set()
    return {n.name for n in expr.walk() if isinstance(n, ast.Identifier)}


def condition_expr(node: ast.Node) -> ast.Expr | None:
    """The guard expression of a conditional construct, if any."""
    if isinstance(node, (ast.If, ast.While, ast.Ternary, ast.For)):
        return node.cond
    if isinstance(node, ast.Case):
        return node.expr
    return None
