"""Token definitions for the Verilog lexer.

The lexer produces a flat stream of :class:`Token` objects.  Token kinds are
coarse (keyword, identifier, number, operator, punctuation); the parser
dispatches on :attr:`Token.kind` and :attr:`Token.text`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    """Coarse lexical categories for Verilog tokens."""

    KEYWORD = auto()
    IDENT = auto()
    SYSTEM_IDENT = auto()  # $display, $time, ...
    NUMBER = auto()  # 12, 4'b10x0, 8'hFF, 3.14
    STRING = auto()  # "..." (for $display format strings)
    OPERATOR = auto()  # + - * / == <= && ...
    PUNCT = auto()  # ( ) [ ] { } ; , : . # @
    EOF = auto()


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: Coarse category of the token.
        text: Exact source text (keywords/identifiers/operators) or the
            normalised literal text for numbers and strings.
        line: 1-based source line where the token starts.
        col: 1-based source column where the token starts.
    """

    kind: TokenKind
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.col})"


#: Reserved words recognised by the lexer.  This is the Verilog-2001 subset
#: needed by the benchmark designs plus a few extras for robustness.
KEYWORDS = frozenset(
    {
        "module",
        "endmodule",
        "input",
        "output",
        "inout",
        "wire",
        "reg",
        "integer",
        "real",
        "time",
        "event",
        "parameter",
        "localparam",
        "assign",
        "always",
        "initial",
        "begin",
        "end",
        "if",
        "else",
        "case",
        "casez",
        "casex",
        "endcase",
        "default",
        "for",
        "while",
        "repeat",
        "forever",
        "wait",
        "posedge",
        "negedge",
        "or",
        "and",
        "not",
        "function",
        "endfunction",
        "task",
        "endtask",
        "signed",
        "unsigned",
        "generate",
        "endgenerate",
        "genvar",
        "disable",
        "fork",
        "join",
        "defparam",
        "supply0",
        "supply1",
        "tri",
    }
)

#: Multi-character operators, longest first so the lexer can greedily match.
MULTI_CHAR_OPERATORS = (
    "<<<",
    ">>>",
    "===",
    "!==",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "~&",
    "~|",
    "~^",
    "^~",
    "->",
    "**",
)

#: Single-character operators.
SINGLE_CHAR_OPERATORS = "+-*/%<>!&|^~=?"

#: Punctuation characters (structure, not computation).
PUNCTUATION = "()[]{};,:.#@"
