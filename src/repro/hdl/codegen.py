"""Verilog code generation (AST → source text).

The repair loop regenerates source for every mutated AST before simulation,
mirroring the paper's PyVerilog codegen step.  Output is normalised (one
statement per line, canonical spacing) and round-trips through the parser.
"""

from __future__ import annotations

from . import ast

_INDENT = "  "


class CodegenError(Exception):
    """Raised when an AST node cannot be rendered (malformed mutation)."""


def generate(node: ast.Node) -> str:
    """Render an AST (any node type) back to Verilog source text."""
    return _Generator().render(node)


class _Generator:
    def render(self, node: ast.Node) -> str:
        if isinstance(node, ast.Source):
            return "\n\n".join(self.module(m) for m in node.modules) + "\n"
        if isinstance(node, ast.ModuleDef):
            return self.module(node)
        if isinstance(node, ast.ModuleItem):
            return self.item(node, 0)
        if isinstance(node, ast.Stmt):
            return self.stmt(node, 0)
        if isinstance(node, ast.Expr):
            return self.expr(node)
        if isinstance(node, ast.SensList):
            return self.senslist(node)
        if isinstance(node, (ast.SensItem, ast.CaseItem, ast.PortArg, ast.ParamArg)):
            # Fragments render inside their parents; fall back to repr-ish.
            raise CodegenError(f"cannot render fragment {type(node).__name__} standalone")
        raise CodegenError(f"unknown node type {type(node).__name__}")

    # ------------------------------------------------------------------
    # Modules and items
    # ------------------------------------------------------------------

    def module(self, mod: ast.ModuleDef) -> str:
        header = f"module {mod.name}"
        if mod.port_names:
            header += "(" + ", ".join(mod.port_names) + ")"
        lines = [header + ";"]
        for item in mod.items:
            lines.append(self.item(item, 1))
        lines.append("endmodule")
        return "\n".join(lines)

    def item(self, item: ast.ModuleItem, level: int) -> str:
        pad = _INDENT * level
        if isinstance(item, ast.Decl):
            return pad + self.decl(item)
        if isinstance(item, ast.ContinuousAssign):
            delay = f"#{self.expr(item.delay)} " if item.delay is not None else ""
            return f"{pad}assign {delay}{self.expr(item.lhs)} = {self.expr(item.rhs)};"
        if isinstance(item, ast.Always):
            sens = f" {self.senslist(item.senslist)}" if item.senslist is not None else ""
            return f"{pad}always{sens}\n{self.stmt(item.body, level + 1)}"
        if isinstance(item, ast.Initial):
            return f"{pad}initial\n{self.stmt(item.body, level + 1)}"
        if isinstance(item, ast.Instance):
            return pad + self.instance(item)
        if isinstance(item, ast.FunctionDef):
            return self.function(item, level)
        if isinstance(item, ast.TaskDef):
            return self.task(item, level)
        raise CodegenError(f"unknown module item {type(item).__name__}")

    def decl(self, decl: ast.Decl) -> str:
        parts = [decl.kind]
        if decl.reg_flag:
            parts.append("reg")
        if decl.signed:
            parts.append("signed")
        if decl.msb is not None:
            parts.append(f"[{self.expr(decl.msb)}:{self.expr(decl.lsb)}]")
        name = decl.name
        if decl.array_msb is not None:
            name += f" [{self.expr(decl.array_msb)}:{self.expr(decl.array_lsb)}]"
        parts.append(name)
        if decl.init is not None:
            parts.append(f"= {self.expr(decl.init)}")
        return " ".join(parts) + ";"

    def instance(self, inst: ast.Instance) -> str:
        text = inst.module_name
        if inst.params:
            text += " #(" + ", ".join(self.port_arg(p) for p in inst.params) + ")"
        text += f" {inst.name}(" + ", ".join(self.port_arg(p) for p in inst.ports) + ");"
        return text

    def port_arg(self, arg: ast.PortArg | ast.ParamArg) -> str:
        expr = self.expr(arg.expr) if arg.expr is not None else ""
        if arg.name is not None:
            return f".{arg.name}({expr})"
        return expr

    def function(self, fn: ast.FunctionDef, level: int) -> str:
        pad = _INDENT * level
        rng = f" [{self.expr(fn.msb)}:{self.expr(fn.lsb)}]" if fn.msb is not None else ""
        lines = [f"{pad}function{rng} {fn.name};"]
        for decl in fn.decls:
            lines.append(_INDENT * (level + 1) + self.decl(decl))
        lines.append(self.stmt(fn.body, level + 1))
        lines.append(f"{pad}endfunction")
        return "\n".join(lines)

    def task(self, tk: ast.TaskDef, level: int) -> str:
        pad = _INDENT * level
        lines = [f"{pad}task {tk.name};"]
        for decl in tk.decls:
            lines.append(_INDENT * (level + 1) + self.decl(decl))
        lines.append(self.stmt(tk.body, level + 1))
        lines.append(f"{pad}endtask")
        return "\n".join(lines)

    def senslist(self, sens: ast.SensList) -> str:
        if len(sens.items) == 1 and sens.items[0].edge == "all":
            return "@(*)"
        rendered = []
        for item in sens.items:
            if item.edge in ("posedge", "negedge"):
                rendered.append(f"{item.edge} {self.expr(item.signal)}")
            else:
                rendered.append(self.expr(item.signal))
        return "@(" + " or ".join(rendered) + ")"

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def stmt(self, stmt: ast.Stmt | None, level: int) -> str:
        pad = _INDENT * level
        if stmt is None or isinstance(stmt, ast.NullStmt):
            return pad + ";"
        if isinstance(stmt, ast.Block):
            name = f" : {stmt.name}" if stmt.name else ""
            lines = [f"{pad}begin{name}"]
            for inner in stmt.stmts:
                lines.append(self.stmt(inner, level + 1))
            lines.append(f"{pad}end")
            return "\n".join(lines)
        if isinstance(stmt, ast.BlockingAssign):
            delay = f"#{self.expr(stmt.delay)} " if stmt.delay is not None else ""
            return f"{pad}{self.expr(stmt.lhs)} = {delay}{self.expr(stmt.rhs)};"
        if isinstance(stmt, ast.NonBlockingAssign):
            delay = f"#{self.expr(stmt.delay)} " if stmt.delay is not None else ""
            return f"{pad}{self.expr(stmt.lhs)} <= {delay}{self.expr(stmt.rhs)};"
        if isinstance(stmt, ast.If):
            lines = [f"{pad}if ({self.expr(stmt.cond)})"]
            lines.append(self.stmt(stmt.then_stmt, level + 1))
            if stmt.else_stmt is not None:
                lines.append(f"{pad}else")
                lines.append(self.stmt(stmt.else_stmt, level + 1))
            return "\n".join(lines)
        if isinstance(stmt, ast.Case):
            lines = [f"{pad}{stmt.kind} ({self.expr(stmt.expr)})"]
            for item in stmt.items:
                label = (
                    ", ".join(self.expr(e) for e in item.exprs) if item.exprs else "default"
                )
                lines.append(f"{pad}{_INDENT}{label} :")
                lines.append(self.stmt(item.stmt, level + 2))
            lines.append(f"{pad}endcase")
            return "\n".join(lines)
        if isinstance(stmt, ast.For):
            init = self._inline_assign(stmt.init)
            step = self._inline_assign(stmt.step)
            return (
                f"{pad}for ({init}; {self.expr(stmt.cond)}; {step})\n"
                + self.stmt(stmt.body, level + 1)
            )
        if isinstance(stmt, ast.While):
            return f"{pad}while ({self.expr(stmt.cond)})\n" + self.stmt(stmt.body, level + 1)
        if isinstance(stmt, ast.RepeatStmt):
            return f"{pad}repeat ({self.expr(stmt.count)})\n" + self.stmt(stmt.body, level + 1)
        if isinstance(stmt, ast.Forever):
            return f"{pad}forever\n" + self.stmt(stmt.body, level + 1)
        if isinstance(stmt, ast.Wait):
            return f"{pad}wait ({self.expr(stmt.cond)})\n" + self.stmt(stmt.body, level + 1)
        if isinstance(stmt, ast.DelayStmt):
            if isinstance(stmt.body, ast.NullStmt):
                return f"{pad}#{self.expr(stmt.delay)};"
            return f"{pad}#{self.expr(stmt.delay)}\n" + self.stmt(stmt.body, level + 1)
        if isinstance(stmt, ast.EventControl):
            if isinstance(stmt.body, ast.NullStmt):
                return f"{pad}{self.senslist(stmt.senslist)};"
            return f"{pad}{self.senslist(stmt.senslist)}\n" + self.stmt(stmt.body, level + 1)
        if isinstance(stmt, ast.EventTrigger):
            return f"{pad}-> {stmt.name};"
        if isinstance(stmt, ast.SysTaskCall):
            args = ", ".join(self.expr(a) for a in stmt.args)
            suffix = f"({args})" if stmt.args else ""
            return f"{pad}{stmt.name}{suffix};"
        if isinstance(stmt, ast.TaskCall):
            args = ", ".join(self.expr(a) for a in stmt.args)
            suffix = f"({args})" if stmt.args else ""
            return f"{pad}{stmt.name}{suffix};"
        if isinstance(stmt, ast.Disable):
            return f"{pad}disable {stmt.name};"
        raise CodegenError(f"unknown statement {type(stmt).__name__}")

    def _inline_assign(self, stmt: ast.BlockingAssign) -> str:
        return f"{self.expr(stmt.lhs)} = {self.expr(stmt.rhs)}"

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def expr(self, expr: ast.Expr | None) -> str:
        if expr is None:
            raise CodegenError("missing expression (deleted by mutation?)")
        if isinstance(expr, ast.Identifier):
            return expr.name
        if isinstance(expr, (ast.Number, ast.RealNumber)):
            return expr.text
        if isinstance(expr, ast.StringConst):
            return f'"{expr.text}"'
        if isinstance(expr, ast.UnaryOp):
            return f"{expr.op}({self.expr(expr.operand)})"
        if isinstance(expr, ast.BinaryOp):
            return f"({self.expr(expr.left)} {expr.op} {self.expr(expr.right)})"
        if isinstance(expr, ast.Ternary):
            return (
                f"(({self.expr(expr.cond)}) ? {self.expr(expr.true_expr)}"
                f" : {self.expr(expr.false_expr)})"
            )
        if isinstance(expr, ast.Index):
            return f"{self.expr(expr.target)}[{self.expr(expr.index)}]"
        if isinstance(expr, ast.PartSelect):
            return f"{self.expr(expr.target)}[{self.expr(expr.msb)}:{self.expr(expr.lsb)}]"
        if isinstance(expr, ast.Concat):
            return "{" + ", ".join(self.expr(p) for p in expr.parts) + "}"
        if isinstance(expr, ast.Repeat_):
            return "{" + self.expr(expr.count) + "{" + self.expr(expr.value) + "}}"
        if isinstance(expr, ast.FunctionCall):
            return f"{expr.name}(" + ", ".join(self.expr(a) for a in expr.args) + ")"
        raise CodegenError(f"unknown expression {type(expr).__name__}")
