"""Verilog frontend: lexer, parser, numbered AST, code generator.

This subpackage replaces the modified PyVerilog toolkit used by the original
CirFix artifact.  Typical usage::

    from repro.hdl import parse, generate

    tree = parse(verilog_text)      # AST with preorder node ids
    text = generate(tree)           # back to Verilog source
"""

from . import ast
from .ast import structural_diff, structurally_equal
from .codegen import CodegenError, generate
from .lexer import LexError, tokenize
from .node_ids import clear_ids, max_node_id, number_nodes
from .parser import ParseError, parse
from .preprocess import preprocess

__all__ = [
    "ast",
    "parse",
    "generate",
    "tokenize",
    "preprocess",
    "number_nodes",
    "clear_ids",
    "max_node_id",
    "structural_diff",
    "structurally_equal",
    "ParseError",
    "LexError",
    "CodegenError",
]
