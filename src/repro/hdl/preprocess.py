"""Minimal Verilog preprocessor.

Supports the directives the benchmark sources use:

- `` `define NAME value`` (object-like macros only) and `` `NAME`` expansion;
- `` `undef NAME``;
- `` `timescale``, `` `default_nettype``, `` `celldefine`` etc. are dropped;
- `` `ifdef`` / `` `ifndef`` / `` `else`` / `` `endif`` conditional blocks.

``include`` is intentionally unsupported — benchmark projects are
self-contained single files (the loader concatenates multi-file projects).
"""

from __future__ import annotations

import re

_DEFINE_RE = re.compile(r"^\s*`define\s+(\w+)\s*(.*)$")
_UNDEF_RE = re.compile(r"^\s*`undef\s+(\w+)\s*$")
_IFDEF_RE = re.compile(r"^\s*`(ifdef|ifndef)\s+(\w+)\s*$")
_USE_RE = re.compile(r"`(\w+)")

#: Directives silently dropped (they do not affect simulation semantics in
#: our unit-delay world).
_IGNORED = ("timescale", "default_nettype", "celldefine", "endcelldefine", "resetall", "include")


def preprocess(source: str, defines: dict[str, str] | None = None) -> str:
    """Expand preprocessor directives in ``source``.

    Args:
        source: Raw Verilog text.
        defines: Optional initial macro table (name → replacement text).

    Returns:
        Text with all directives resolved, suitable for the lexer.  Line
        structure is preserved (dropped lines become empty lines) so parser
        error positions stay meaningful.
    """
    macros = dict(defines or {})
    out_lines: list[str] = []
    # Stack of booleans: is the current conditional region active?
    active_stack: list[bool] = []

    def is_active() -> bool:
        return all(active_stack)

    for line in source.splitlines():
        stripped = line.strip()
        match = _IFDEF_RE.match(line)
        if match:
            want_defined = match.group(1) == "ifdef"
            active_stack.append((match.group(2) in macros) == want_defined)
            out_lines.append("")
            continue
        if stripped.startswith("`else"):
            if active_stack:
                active_stack[-1] = not active_stack[-1]
            out_lines.append("")
            continue
        if stripped.startswith("`endif"):
            if active_stack:
                active_stack.pop()
            out_lines.append("")
            continue
        if not is_active():
            out_lines.append("")
            continue
        match = _DEFINE_RE.match(line)
        if match:
            macros[match.group(1)] = match.group(2).strip()
            out_lines.append("")
            continue
        match = _UNDEF_RE.match(line)
        if match:
            macros.pop(match.group(1), None)
            out_lines.append("")
            continue
        if stripped.startswith("`"):
            directive_words = stripped[1:].split(None, 1)
            directive = directive_words[0].split("(")[0] if directive_words else ""
            if directive in _IGNORED:
                out_lines.append("")
                continue
        out_lines.append(_expand_macros(line, macros))
    return "\n".join(out_lines)


def _expand_macros(line: str, macros: dict[str, str], depth: int = 0) -> str:
    """Replace `` `NAME`` uses with their definitions (recursively, bounded)."""
    if depth > 16 or "`" not in line:
        return line

    def repl(match: re.Match[str]) -> str:
        name = match.group(1)
        if name in macros:
            return macros[name]
        return match.group(0)

    expanded = _USE_RE.sub(repl, line)
    if expanded == line:
        return expanded
    return _expand_macros(expanded, macros, depth + 1)
