"""Abstract syntax tree for the supported Verilog subset.

Every node carries a ``node_id`` assigned by :mod:`repro.hdl.node_ids` after
parsing.  The repair engine refers to nodes exclusively by these ids, so the
tree supports generic traversal (:meth:`Node.walk`), lookup by id, deep
cloning, and structural replacement by id — the primitives needed by the
CirFix patch representation.

Field conventions: each node class declares ``_fields``, a tuple of attribute
names.  An attribute value is a :class:`Node`, a ``list`` of nodes, or a
plain Python value (``str``/``int``/``None``).  Generic machinery inspects
values at runtime, so adding a node class only requires declaring its fields.
"""

from __future__ import annotations

import copy
from typing import Iterator


class Node:
    """Base class for all AST nodes."""

    _fields: tuple[str, ...] = ()
    #: Extra attributes that carry semantic state but are not child slots
    #: (literal planes, signedness flags, port order).  Compared by
    #: :func:`structural_diff` alongside ``_fields``.
    _attrs: tuple[str, ...] = ()

    def __init__(self) -> None:
        self.node_id: int | None = None
        #: 1-based source line of the token that started this node, set by
        #: the parser for statements and module items (None elsewhere, and
        #: for synthesised nodes).  Not part of ``_fields``/``_attrs``:
        #: structural comparison and codegen ignore it; it only anchors
        #: diagnostics (:mod:`repro.lint`).
        self.line: int | None = None

    # ------------------------------------------------------------------
    # Generic traversal
    # ------------------------------------------------------------------

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes in field order."""
        for name in self._fields:
            value = getattr(self, name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants in preorder."""
        yield self
        for child in self.children():
            yield from child.walk()

    def find(self, node_id: int) -> "Node | None":
        """Return the descendant (or self) with the given id, if any."""
        for node in self.walk():
            if node.node_id == node_id:
                return node
        return None

    def clone(self) -> "Node":
        """Deep-copy this subtree, preserving node ids."""
        return copy.deepcopy(self)

    def replace(self, node_id: int, replacement: "Node | None") -> bool:
        """Replace the descendant with ``node_id`` by ``replacement``.

        A ``None`` replacement deletes the node: if it lives in a list field
        it is removed; if it occupies a scalar field the field is set to
        ``None``.  Returns True when a replacement happened.
        """
        for node in self.walk():
            for name in node._fields:
                value = getattr(node, name)
                if isinstance(value, Node) and value.node_id == node_id:
                    setattr(node, name, replacement)
                    return True
                if isinstance(value, list):
                    for i, item in enumerate(value):
                        if isinstance(item, Node) and item.node_id == node_id:
                            if replacement is None:
                                del value[i]
                            else:
                                value[i] = replacement
                            return True
        return False

    def insert_after(self, anchor_id: int, new_node: "Node") -> bool:
        """Insert ``new_node`` after the node ``anchor_id`` in its list field.

        Only succeeds when the anchor lives in a list-valued field (e.g. the
        statements of a block); scalar positions cannot take an insertion.
        """
        for node in self.walk():
            for name in node._fields:
                value = getattr(node, name)
                if isinstance(value, list):
                    for i, item in enumerate(value):
                        if isinstance(item, Node) and item.node_id == anchor_id:
                            value.insert(i + 1, new_node)
                            return True
        return False

    def parent_map(self) -> dict[int, "Node"]:
        """Map each descendant's node_id to its parent node."""
        parents: dict[int, Node] = {}
        for node in self.walk():
            for child in node.children():
                if child.node_id is not None:
                    parents[child.node_id] = node
        return parents

    # ------------------------------------------------------------------
    # Equality / debugging
    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(f"{f}={getattr(self, f)!r}" for f in self._fields)
        return f"{type(self).__name__}({parts})"


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


class Expr(Node):
    """Base class for expressions."""


class Identifier(Expr):
    _fields = ("name",)

    def __init__(self, name: str):
        super().__init__()
        self.name = name


class Number(Expr):
    """An integer literal, possibly based and sized.

    ``width`` is None for unsized literals.  ``aval``/``bval`` use the VPI
    two-integer encoding: bit pair (a, b) is 0=(0,0), 1=(1,0), z=(0,1),
    x=(1,1).  ``text`` preserves the original spelling for code generation.
    """

    _fields = ("text",)
    _attrs = ("width", "aval", "bval", "signed")

    def __init__(self, text: str, width: int | None, aval: int, bval: int, signed: bool = False):
        super().__init__()
        self.text = text
        self.width = width
        self.aval = aval
        self.bval = bval
        self.signed = signed

    @staticmethod
    def from_int(value: int, width: int | None = None) -> "Number":
        """Build a plain decimal literal node from a Python int."""
        if value < 0:
            raise ValueError("use an explicit width for negative constants")
        if width is None:
            return Number(str(value), None, value, 0)
        mask = (1 << width) - 1
        return Number(f"{width}'d{value & mask}", width, value & mask, 0)


class RealNumber(Expr):
    _fields = ("text",)

    def __init__(self, text: str):
        super().__init__()
        self.text = text
        self.value = float(text)


class StringConst(Expr):
    _fields = ("text",)

    def __init__(self, text: str):
        super().__init__()
        self.text = text


class UnaryOp(Expr):
    """Unary operator: ! ~ + - and reductions & | ^ ~& ~| ~^."""

    _fields = ("op", "operand")

    def __init__(self, op: str, operand: Expr):
        super().__init__()
        self.op = op
        self.operand = operand


class BinaryOp(Expr):
    _fields = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        super().__init__()
        self.op = op
        self.left = left
        self.right = right


class Ternary(Expr):
    _fields = ("cond", "true_expr", "false_expr")

    def __init__(self, cond: Expr, true_expr: Expr, false_expr: Expr):
        super().__init__()
        self.cond = cond
        self.true_expr = true_expr
        self.false_expr = false_expr


class Index(Expr):
    """Bit- or word-select: ``var[i]``."""

    _fields = ("target", "index")

    def __init__(self, target: Expr, index: Expr):
        super().__init__()
        self.target = target
        self.index = index


class PartSelect(Expr):
    """Constant part-select: ``var[msb:lsb]``."""

    _fields = ("target", "msb", "lsb")

    def __init__(self, target: Expr, msb: Expr, lsb: Expr):
        super().__init__()
        self.target = target
        self.msb = msb
        self.lsb = lsb


class Concat(Expr):
    _fields = ("parts",)

    def __init__(self, parts: list[Expr]):
        super().__init__()
        self.parts = parts


class Repeat_(Expr):
    """Replication: ``{count{value}}``."""

    _fields = ("count", "value")

    def __init__(self, count: Expr, value: Expr):
        super().__init__()
        self.count = count
        self.value = value


class FunctionCall(Expr):
    """Call of a user function or system function (``$time``)."""

    _fields = ("name", "args")

    def __init__(self, name: str, args: list[Expr]):
        super().__init__()
        self.name = name
        self.args = args


# ----------------------------------------------------------------------
# Sensitivity / event expressions
# ----------------------------------------------------------------------


class SensItem(Node):
    """One item in a sensitivity list.

    ``edge`` is ``"posedge"``, ``"negedge"``, ``"level"`` (any change to the
    named signal) or ``"all"`` (``@*``; ``signal`` is None).
    """

    _fields = ("edge", "signal")

    def __init__(self, edge: str, signal: Expr | None):
        super().__init__()
        self.edge = edge
        self.signal = signal


class SensList(Node):
    _fields = ("items",)

    def __init__(self, items: list[SensItem]):
        super().__init__()
        self.items = items


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


class Stmt(Node):
    """Base class for procedural statements."""


class Block(Stmt):
    """``begin ... end``, optionally named."""

    _fields = ("name", "stmts")

    def __init__(self, stmts: list[Stmt], name: str | None = None):
        super().__init__()
        self.stmts = stmts
        self.name = name


class BlockingAssign(Stmt):
    """``lhs = [#delay] rhs;``"""

    _fields = ("lhs", "rhs", "delay")

    def __init__(self, lhs: Expr, rhs: Expr, delay: Expr | None = None):
        super().__init__()
        self.lhs = lhs
        self.rhs = rhs
        self.delay = delay


class NonBlockingAssign(Stmt):
    """``lhs <= [#delay] rhs;``"""

    _fields = ("lhs", "rhs", "delay")

    def __init__(self, lhs: Expr, rhs: Expr, delay: Expr | None = None):
        super().__init__()
        self.lhs = lhs
        self.rhs = rhs
        self.delay = delay


class If(Stmt):
    _fields = ("cond", "then_stmt", "else_stmt")

    def __init__(self, cond: Expr, then_stmt: Stmt | None, else_stmt: Stmt | None = None):
        super().__init__()
        self.cond = cond
        self.then_stmt = then_stmt
        self.else_stmt = else_stmt


class CaseItem(Node):
    """One arm of a case statement; ``exprs`` empty means ``default``."""

    _fields = ("exprs", "stmt")

    def __init__(self, exprs: list[Expr], stmt: Stmt | None):
        super().__init__()
        self.exprs = exprs
        self.stmt = stmt


class Case(Stmt):
    """``case``/``casez``/``casex`` statement; ``kind`` holds the keyword."""

    _fields = ("kind", "expr", "items")

    def __init__(self, kind: str, expr: Expr, items: list[CaseItem]):
        super().__init__()
        self.kind = kind
        self.expr = expr
        self.items = items


class For(Stmt):
    _fields = ("init", "cond", "step", "body")

    def __init__(self, init: Stmt, cond: Expr, step: Stmt, body: Stmt | None):
        super().__init__()
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class While(Stmt):
    _fields = ("cond", "body")

    def __init__(self, cond: Expr, body: Stmt | None):
        super().__init__()
        self.cond = cond
        self.body = body


class RepeatStmt(Stmt):
    _fields = ("count", "body")

    def __init__(self, count: Expr, body: Stmt | None):
        super().__init__()
        self.count = count
        self.body = body


class Forever(Stmt):
    _fields = ("body",)

    def __init__(self, body: Stmt | None):
        super().__init__()
        self.body = body


class Wait(Stmt):
    """``wait (cond) stmt;``"""

    _fields = ("cond", "body")

    def __init__(self, cond: Expr, body: Stmt | None):
        super().__init__()
        self.cond = cond
        self.body = body


class DelayStmt(Stmt):
    """``#delay stmt`` — wait then run the (possibly null) statement."""

    _fields = ("delay", "body")

    def __init__(self, delay: Expr, body: Stmt | None):
        super().__init__()
        self.delay = delay
        self.body = body


class EventControl(Stmt):
    """``@(senslist) stmt`` — suspend until the event, then run body."""

    _fields = ("senslist", "body")

    def __init__(self, senslist: SensList, body: Stmt | None):
        super().__init__()
        self.senslist = senslist
        self.body = body


class EventTrigger(Stmt):
    """``-> event_name;``"""

    _fields = ("name",)

    def __init__(self, name: str):
        super().__init__()
        self.name = name


class SysTaskCall(Stmt):
    """``$display(...)``, ``$finish``, ``$monitor``, ``$cirfix_record`` ..."""

    _fields = ("name", "args")

    def __init__(self, name: str, args: list[Expr]):
        super().__init__()
        self.name = name
        self.args = args


class NullStmt(Stmt):
    """A lone semicolon; also the result of a delete mutation."""

    _fields = ()


class Disable(Stmt):
    _fields = ("name",)

    def __init__(self, name: str):
        super().__init__()
        self.name = name


class TaskCall(Stmt):
    """Call of a user-defined task: ``my_task(a, b);``"""

    _fields = ("name", "args")

    def __init__(self, name: str, args: list[Expr]):
        super().__init__()
        self.name = name
        self.args = args


# ----------------------------------------------------------------------
# Module items
# ----------------------------------------------------------------------


class ModuleItem(Node):
    """Base class for items directly inside a module body."""


class Decl(ModuleItem):
    """Declaration of one name.

    ``kind`` is one of ``input``, ``output``, ``inout``, ``wire``, ``reg``,
    ``integer``, ``real``, ``event``, ``parameter``, ``localparam``,
    ``genvar``.  ``output reg x`` produces two Decl entries merged by
    elaboration (an ``output`` and a ``reg`` with the same name); the parser
    emits a single Decl with ``kind='output'`` and ``reg_flag=True`` instead
    to keep round-tripping clean.
    """

    _fields = ("kind", "name", "msb", "lsb", "array_msb", "array_lsb", "init")
    _attrs = ("reg_flag", "signed")

    def __init__(
        self,
        kind: str,
        name: str,
        msb: Expr | None = None,
        lsb: Expr | None = None,
        init: Expr | None = None,
        array_msb: Expr | None = None,
        array_lsb: Expr | None = None,
        reg_flag: bool = False,
        signed: bool = False,
    ):
        super().__init__()
        self.kind = kind
        self.name = name
        self.msb = msb
        self.lsb = lsb
        self.init = init
        self.array_msb = array_msb
        self.array_lsb = array_lsb
        self.reg_flag = reg_flag
        self.signed = signed


class ContinuousAssign(ModuleItem):
    """``assign [#delay] lhs = rhs;``"""

    _fields = ("lhs", "rhs", "delay")

    def __init__(self, lhs: Expr, rhs: Expr, delay: Expr | None = None):
        super().__init__()
        self.lhs = lhs
        self.rhs = rhs
        self.delay = delay


class Always(ModuleItem):
    """``always @(senslist) stmt`` (``senslist`` None means plain ``always``)."""

    _fields = ("senslist", "body")

    def __init__(self, senslist: SensList | None, body: Stmt | None):
        super().__init__()
        self.senslist = senslist
        self.body = body


class Initial(ModuleItem):
    _fields = ("body",)

    def __init__(self, body: Stmt | None):
        super().__init__()
        self.body = body


class PortArg(Node):
    """One port connection in an instantiation.

    ``name`` is None for positional connections.
    """

    _fields = ("name", "expr")

    def __init__(self, name: str | None, expr: Expr | None):
        super().__init__()
        self.name = name
        self.expr = expr


class ParamArg(Node):
    """One parameter override in an instantiation (``#(.N(8))``)."""

    _fields = ("name", "expr")

    def __init__(self, name: str | None, expr: Expr):
        super().__init__()
        self.name = name
        self.expr = expr


class Instance(ModuleItem):
    """Module instantiation: ``mod #(.P(1)) inst (.a(x), .b(y));``"""

    _fields = ("module_name", "name", "params", "ports")

    def __init__(
        self,
        module_name: str,
        name: str,
        ports: list[PortArg],
        params: list[ParamArg] | None = None,
    ):
        super().__init__()
        self.module_name = module_name
        self.name = name
        self.ports = ports
        self.params = params or []


class FunctionDef(ModuleItem):
    """``function [msb:lsb] name; decls... body endfunction``"""

    _fields = ("name", "msb", "lsb", "decls", "body")

    def __init__(
        self,
        name: str,
        msb: Expr | None,
        lsb: Expr | None,
        decls: list[Decl],
        body: Stmt | None,
    ):
        super().__init__()
        self.name = name
        self.msb = msb
        self.lsb = lsb
        self.decls = decls
        self.body = body


class TaskDef(ModuleItem):
    _fields = ("name", "decls", "body")

    def __init__(self, name: str, decls: list[Decl], body: Stmt | None):
        super().__init__()
        self.name = name
        self.decls = decls
        self.body = body


class ModuleDef(Node):
    """A module definition.

    ``port_names`` preserves the header order for positional connections.
    Port direction/width details live in Decl items inside ``items``.
    """

    _fields = ("name", "items")
    _attrs = ("port_names",)

    def __init__(self, name: str, port_names: list[str], items: list[ModuleItem]):
        super().__init__()
        self.name = name
        self.port_names = port_names
        self.items = items

    def decls(self) -> list[Decl]:
        """All declaration items in this module, in source order."""
        return [item for item in self.items if isinstance(item, Decl)]

    def find_decl(self, name: str) -> Decl | None:
        """The declaration of ``name``, or None."""
        for decl in self.decls():
            if decl.name == name:
                return decl
        return None


class Source(Node):
    """A parsed source file: an ordered list of module definitions."""

    _fields = ("modules",)

    def __init__(self, modules: list[ModuleDef]):
        super().__init__()
        self.modules = modules

    def module(self, name: str) -> ModuleDef | None:
        """The module named ``name``, or None."""
        for mod in self.modules:
            if mod.name == name:
                return mod
        return None


# ----------------------------------------------------------------------
# Structural comparison
# ----------------------------------------------------------------------


def structural_diff(
    a: object, b: object, *, compare_ids: bool = False, _path: str = "root"
) -> str | None:
    """First structural difference between two trees, or None if equal.

    Compares node types, every ``_fields`` slot recursively, and the
    declared ``_attrs`` (semantic state that lives outside the child
    slots: literal planes, signedness, port order).  ``compare_ids=True``
    additionally requires matching ``node_id`` on every node — the
    contract the repair engine relies on after renumbering.

    The return value is a human-readable path to the mismatch, which the
    fuzz oracles surface verbatim in violation reports.
    """
    if isinstance(a, Node) or isinstance(b, Node):
        if type(a) is not type(b):
            return f"{_path}: {type(a).__name__} != {type(b).__name__}"
        assert isinstance(a, Node) and isinstance(b, Node)
        if compare_ids and a.node_id != b.node_id:
            return f"{_path}: node_id {a.node_id} != {b.node_id}"
        for name in a._fields + a._attrs:
            diff = structural_diff(
                getattr(a, name),
                getattr(b, name),
                compare_ids=compare_ids,
                _path=f"{_path}.{name}",
            )
            if diff is not None:
                return diff
        return None
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return f"{_path}: list length {len(a)} != {len(b)}"
        for i, (item_a, item_b) in enumerate(zip(a, b)):
            diff = structural_diff(
                item_a, item_b, compare_ids=compare_ids, _path=f"{_path}[{i}]"
            )
            if diff is not None:
                return diff
        return None
    if type(a) is not type(b) or a != b:
        return f"{_path}: {a!r} != {b!r}"
    return None


def structurally_equal(a: object, b: object, *, compare_ids: bool = False) -> bool:
    """True when :func:`structural_diff` finds no difference."""
    return structural_diff(a, b, compare_ids=compare_ids) is None
