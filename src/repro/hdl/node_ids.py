"""Node numbering for parsed ASTs.

CirFix's patch representation addresses AST nodes by unique id (the paper
modified PyVerilog to number nodes).  We assign ids in preorder so that the
id ordering matches source order, which the crossover operator relies on for
a stable notion of "left of / right of" a crossover point.
"""

from __future__ import annotations

from .ast import Node


def number_nodes(root: Node, start: int = 1) -> int:
    """Assign sequential preorder ids to every node under ``root``.

    Args:
        root: Tree to number (ids overwritten).
        start: First id to assign.

    Returns:
        The next unused id (useful for numbering freshly created nodes that
        get spliced into an existing tree).
    """
    next_id = start
    for node in root.walk():
        node.node_id = next_id
        next_id += 1
    return next_id


def max_node_id(root: Node) -> int:
    """Return the largest node id present in the tree (0 if none assigned)."""
    return max((n.node_id or 0) for n in root.walk())


def clear_ids(root: Node) -> None:
    """Remove all node ids (used before re-numbering a mutated tree)."""
    for node in root.walk():
        node.node_id = None
