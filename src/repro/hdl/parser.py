"""Recursive-descent parser for the supported Verilog subset.

The grammar covers what the benchmark designs and testbenches need: module
definitions (ANSI and classic port styles), wire/reg/integer/event/parameter
declarations, continuous assigns, always/initial blocks, the full procedural
statement set (blocking/non-blocking assignment with intra-assignment delays,
if/case/for/while/repeat/forever/wait, delay and event controls, named event
triggers, system tasks), module instantiation with parameter overrides, and
function/task definitions.

Entry point: :func:`parse` (source text → :class:`repro.hdl.ast.Source` with
node ids assigned).
"""

from __future__ import annotations

from . import ast
from .lexer import tokenize
from .node_ids import number_nodes
from .preprocess import preprocess
from .tokens import Token, TokenKind


class ParseError(Exception):
    """Raised on a syntax error, with source position information."""

    def __init__(self, message: str, token: Token):
        super().__init__(f"{message} (got {token.text!r} at line {token.line}, col {token.col})")
        self.token = token


# Binary operator precedence, higher binds tighter.  ``<=`` appears here as
# less-or-equal; the statement parser resolves the non-blocking-assignment
# ambiguity before expression parsing begins.
_BINARY_PRECEDENCE = {
    "||": 3,
    "&&": 4,
    "|": 5,
    "^": 6,
    "^~": 6,
    "~^": 6,
    "&": 7,
    "==": 8,
    "!=": 8,
    "===": 8,
    "!==": 8,
    "<": 9,
    "<=": 9,
    ">": 9,
    ">=": 9,
    "<<": 10,
    ">>": 10,
    "<<<": 10,
    ">>>": 10,
    "+": 11,
    "-": 11,
    "*": 12,
    "/": 12,
    "%": 12,
    "**": 13,
}

_UNARY_OPS = frozenset({"!", "~", "+", "-", "&", "|", "^", "~&", "~|", "~^", "^~"})

_DECL_KEYWORDS = frozenset(
    {"input", "output", "inout", "wire", "reg", "integer", "real", "event", "genvar", "tri", "supply0", "supply1"}
)


class Parser:
    """Parses a token stream into an AST."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        pos = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[pos]

    def _next(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind is not TokenKind.EOF:
            self._pos += 1
        return tok

    def _check(self, text: str) -> bool:
        return self._peek().text == text and self._peek().kind in (
            TokenKind.KEYWORD,
            TokenKind.OPERATOR,
            TokenKind.PUNCT,
        )

    def _accept(self, text: str) -> bool:
        if self._check(text):
            self._next()
            return True
        return False

    def _expect(self, text: str) -> Token:
        if not self._check(text):
            raise ParseError(f"expected {text!r}", self._peek())
        return self._next()

    def _expect_ident(self) -> str:
        tok = self._peek()
        if tok.kind is not TokenKind.IDENT:
            raise ParseError("expected identifier", tok)
        return self._next().text

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse_source(self) -> ast.Source:
        """Parse a whole source file (one or more modules)."""
        modules: list[ast.ModuleDef] = []
        while self._peek().kind is not TokenKind.EOF:
            if self._check("module"):
                modules.append(self.parse_module())
            else:
                raise ParseError("expected 'module'", self._peek())
        return ast.Source(modules)

    def parse_module(self) -> ast.ModuleDef:
        """Parse one ``module ... endmodule`` definition."""
        module_line = self._peek().line
        self._expect("module")
        name = self._expect_ident()
        items: list[ast.ModuleItem] = []
        port_names: list[str] = []
        if self._accept("#"):
            self._expect("(")
            items.extend(self._parse_header_params())
            self._expect(")")
        if self._accept("("):
            port_names, port_items = self._parse_port_list()
            items.extend(port_items)
            self._expect(")")
        self._expect(";")
        while not self._check("endmodule"):
            items.extend(self.parse_module_item())
        self._expect("endmodule")
        module = ast.ModuleDef(name, port_names, items)
        module.line = module_line
        for item in items:
            # Header parameter/port declarations share the header's line.
            if item.line is None:
                item.line = module_line
        return module

    def _parse_header_params(self) -> list[ast.Decl]:
        """Parse ``#(parameter A = 1, parameter [3:0] B = 2)``."""
        decls: list[ast.Decl] = []
        while True:
            self._accept("parameter")
            signed = self._accept("signed")
            msb, lsb = self._parse_optional_range()
            pname = self._expect_ident()
            self._expect("=")
            decls.append(
                ast.Decl("parameter", pname, msb, lsb, init=self.parse_expr(), signed=signed)
            )
            if not self._accept(","):
                return decls

    def _parse_port_list(self) -> tuple[list[str], list[ast.Decl]]:
        """Parse either classic name-only or ANSI declared port lists."""
        names: list[str] = []
        decls: list[ast.Decl] = []
        if self._check(")"):
            return names, decls
        direction: str | None = None
        reg_flag = False
        signed = False
        msb: ast.Expr | None = None
        lsb: ast.Expr | None = None
        while True:
            if self._peek().text in ("input", "output", "inout"):
                direction = self._next().text
                reg_flag = self._accept("reg")
                if not reg_flag:
                    self._accept("wire")
                signed = self._accept("signed")
                msb, lsb = self._parse_optional_range()
            pname = self._expect_ident()
            names.append(pname)
            if direction is not None:
                decls.append(
                    ast.Decl(direction, pname, _clone(msb), _clone(lsb), reg_flag=reg_flag, signed=signed)
                )
            if not self._accept(","):
                return names, decls

    # ------------------------------------------------------------------
    # Module items
    # ------------------------------------------------------------------

    def parse_module_item(self) -> list[ast.ModuleItem]:
        """Parse one module item (may expand to several declarations).

        Each returned item is stamped with the source line of its leading
        token (``Node.line``), the anchor used by lint diagnostics.
        """
        tok = self._peek()
        items = self._parse_module_item()
        for item in items:
            if item.line is None:
                item.line = tok.line
        return items

    def _parse_module_item(self) -> list[ast.ModuleItem]:
        tok = self._peek()
        text = tok.text
        if text in _DECL_KEYWORDS:
            return self._parse_decl()
        if text in ("parameter", "localparam"):
            return self._parse_param_decl(text)
        if text == "assign":
            return self._parse_continuous_assign()
        if text == "always":
            return [self._parse_always()]
        if text == "initial":
            self._next()
            return [ast.Initial(self.parse_stmt())]
        if text == "function":
            return [self._parse_function()]
        if text == "task":
            return [self._parse_task()]
        if tok.kind is TokenKind.IDENT:
            return [self._parse_instance()]
        raise ParseError("unexpected token in module body", tok)

    def _parse_optional_range(self) -> tuple[ast.Expr | None, ast.Expr | None]:
        if not self._accept("["):
            return None, None
        msb = self.parse_expr()
        self._expect(":")
        lsb = self.parse_expr()
        self._expect("]")
        return msb, lsb

    def _parse_decl(self) -> list[ast.Decl]:
        kind = self._next().text
        reg_flag = False
        if kind in ("input", "output", "inout"):
            reg_flag = self._accept("reg")
            if not reg_flag:
                self._accept("wire")
        signed = self._accept("signed")
        msb, lsb = self._parse_optional_range()
        decls: list[ast.Decl] = []
        while True:
            name = self._expect_ident()
            array_msb: ast.Expr | None = None
            array_lsb: ast.Expr | None = None
            if self._accept("["):
                array_msb = self.parse_expr()
                self._expect(":")
                array_lsb = self.parse_expr()
                self._expect("]")
            init: ast.Expr | None = None
            if self._accept("="):
                init = self.parse_expr()
            decls.append(
                ast.Decl(
                    kind,
                    name,
                    _clone(msb),
                    _clone(lsb),
                    init=init,
                    array_msb=array_msb,
                    array_lsb=array_lsb,
                    reg_flag=reg_flag,
                    signed=signed,
                )
            )
            if not self._accept(","):
                self._expect(";")
                return decls

    def _parse_param_decl(self, kind: str) -> list[ast.Decl]:
        self._next()
        signed = self._accept("signed")
        msb, lsb = self._parse_optional_range()
        decls: list[ast.Decl] = []
        while True:
            name = self._expect_ident()
            self._expect("=")
            decls.append(
                ast.Decl(
                    kind, name, _clone(msb), _clone(lsb), init=self.parse_expr(), signed=signed
                )
            )
            if not self._accept(","):
                self._expect(";")
                return decls

    def _parse_continuous_assign(self) -> list[ast.ContinuousAssign]:
        self._expect("assign")
        delay = self._parse_optional_delay()
        assigns: list[ast.ContinuousAssign] = []
        while True:
            lhs = self._parse_lvalue()
            self._expect("=")
            assigns.append(ast.ContinuousAssign(lhs, self.parse_expr(), _clone(delay)))
            if not self._accept(","):
                self._expect(";")
                return assigns

    def _parse_always(self) -> ast.Always:
        self._expect("always")
        senslist: ast.SensList | None = None
        if self._check("@"):
            senslist = self._parse_senslist()
        return ast.Always(senslist, self.parse_stmt())

    def _parse_senslist(self) -> ast.SensList:
        self._expect("@")
        if self._accept("*"):
            return ast.SensList([ast.SensItem("all", None)])
        self._expect("(")
        if self._accept("*"):
            self._expect(")")
            return ast.SensList([ast.SensItem("all", None)])
        items: list[ast.SensItem] = []
        while True:
            edge = "level"
            if self._accept("posedge"):
                edge = "posedge"
            elif self._accept("negedge"):
                edge = "negedge"
            items.append(ast.SensItem(edge, self.parse_expr()))
            if not (self._accept("or") or self._accept(",")):
                self._expect(")")
                return ast.SensList(items)

    def _parse_instance(self) -> ast.Instance:
        module_name = self._expect_ident()
        params: list[ast.ParamArg] = []
        if self._accept("#"):
            self._expect("(")
            while True:
                if self._accept("."):
                    pname = self._expect_ident()
                    self._expect("(")
                    params.append(ast.ParamArg(pname, self.parse_expr()))
                    self._expect(")")
                else:
                    params.append(ast.ParamArg(None, self.parse_expr()))
                if not self._accept(","):
                    break
            self._expect(")")
        inst_name = self._expect_ident()
        self._expect("(")
        ports: list[ast.PortArg] = []
        if not self._check(")"):
            while True:
                if self._accept("."):
                    pname = self._expect_ident()
                    self._expect("(")
                    expr = None if self._check(")") else self.parse_expr()
                    self._expect(")")
                    ports.append(ast.PortArg(pname, expr))
                else:
                    ports.append(ast.PortArg(None, self.parse_expr()))
                if not self._accept(","):
                    break
        self._expect(")")
        self._expect(";")
        return ast.Instance(module_name, inst_name, ports, params)

    def _parse_function(self) -> ast.FunctionDef:
        self._expect("function")
        self._accept("automatic")
        self._accept("signed")
        msb, lsb = self._parse_optional_range()
        name = self._expect_ident()
        # Non-ANSI form only: ``function [7:0] f; input [7:0] x; ... endfunction``
        self._expect(";")
        decls: list[ast.Decl] = []
        while self._peek().text in _DECL_KEYWORDS:
            decls.extend(self._parse_decl())
        body = self.parse_stmt()
        self._expect("endfunction")
        return ast.FunctionDef(name, msb, lsb, decls, body)

    def _parse_task(self) -> ast.TaskDef:
        self._expect("task")
        name = self._expect_ident()
        self._expect(";")
        decls: list[ast.Decl] = []
        while self._peek().text in _DECL_KEYWORDS:
            decls.extend(self._parse_decl())
        body = self.parse_stmt()
        self._expect("endtask")
        return ast.TaskDef(name, decls, body)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def parse_stmt(self) -> ast.Stmt:
        """Parse one procedural statement (line-stamped, see above)."""
        tok = self._peek()
        stmt = self._parse_stmt()
        if stmt.line is None:
            stmt.line = tok.line
        return stmt

    def _parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        text = tok.text
        if text == ";":
            self._next()
            return ast.NullStmt()
        if text == "begin":
            return self._parse_block()
        if text == "if":
            return self._parse_if()
        if text in ("case", "casez", "casex"):
            return self._parse_case()
        if text == "for":
            return self._parse_for()
        if text == "while":
            self._next()
            self._expect("(")
            cond = self.parse_expr()
            self._expect(")")
            return ast.While(cond, self.parse_stmt())
        if text == "repeat":
            self._next()
            self._expect("(")
            count = self.parse_expr()
            self._expect(")")
            return ast.RepeatStmt(count, self.parse_stmt())
        if text == "forever":
            self._next()
            return ast.Forever(self.parse_stmt())
        if text == "wait":
            self._next()
            self._expect("(")
            cond = self.parse_expr()
            self._expect(")")
            body = ast.NullStmt() if self._accept(";") else self.parse_stmt()
            return ast.Wait(cond, body)
        if text == "disable":
            self._next()
            name = self._expect_ident()
            self._expect(";")
            return ast.Disable(name)
        if text == "#":
            self._next()
            delay = self._parse_delay_value()
            body = ast.NullStmt() if self._accept(";") else self.parse_stmt()
            return ast.DelayStmt(delay, body)
        if text == "@":
            senslist = self._parse_senslist()
            body = ast.NullStmt() if self._accept(";") else self.parse_stmt()
            return ast.EventControl(senslist, body)
        if text == "->":
            self._next()
            name = self._expect_ident()
            self._expect(";")
            return ast.EventTrigger(name)
        if tok.kind is TokenKind.SYSTEM_IDENT:
            return self._parse_systask()
        if tok.kind is TokenKind.IDENT or text == "{":
            return self._parse_assign_or_taskcall()
        raise ParseError("expected statement", tok)

    def _parse_block(self) -> ast.Block:
        self._expect("begin")
        name: str | None = None
        if self._accept(":"):
            name = self._expect_ident()
        stmts: list[ast.Stmt] = []
        while not self._check("end"):
            stmts.append(self.parse_stmt())
        self._expect("end")
        return ast.Block(stmts, name)

    def _parse_if(self) -> ast.If:
        self._expect("if")
        self._expect("(")
        cond = self.parse_expr()
        self._expect(")")
        then_stmt = self.parse_stmt()
        else_stmt: ast.Stmt | None = None
        if self._accept("else"):
            else_stmt = self.parse_stmt()
        return ast.If(cond, then_stmt, else_stmt)

    def _parse_case(self) -> ast.Case:
        kind = self._next().text
        self._expect("(")
        expr = self.parse_expr()
        self._expect(")")
        items: list[ast.CaseItem] = []
        while not self._check("endcase"):
            if self._accept("default"):
                self._accept(":")
                items.append(ast.CaseItem([], self.parse_stmt()))
            else:
                exprs = [self.parse_expr()]
                while self._accept(","):
                    exprs.append(self.parse_expr())
                self._expect(":")
                items.append(ast.CaseItem(exprs, self.parse_stmt()))
        self._expect("endcase")
        return ast.Case(kind, expr, items)

    def _parse_for(self) -> ast.For:
        self._expect("for")
        self._expect("(")
        init = self._parse_plain_assign()
        self._expect(";")
        cond = self.parse_expr()
        self._expect(";")
        step = self._parse_plain_assign()
        self._expect(")")
        return ast.For(init, cond, step, self.parse_stmt())

    def _parse_plain_assign(self) -> ast.BlockingAssign:
        lhs = self._parse_lvalue()
        self._expect("=")
        return ast.BlockingAssign(lhs, self.parse_expr())

    def _parse_systask(self) -> ast.SysTaskCall:
        name = self._next().text
        args: list[ast.Expr] = []
        if self._accept("("):
            if not self._check(")"):
                while True:
                    args.append(self.parse_expr())
                    if not self._accept(","):
                        break
            self._expect(")")
        self._expect(";")
        return ast.SysTaskCall(name, args)

    def _parse_assign_or_taskcall(self) -> ast.Stmt:
        lhs = self._parse_lvalue()
        if isinstance(lhs, ast.Identifier) and self._check("("):
            self._next()
            args: list[ast.Expr] = []
            if not self._check(")"):
                while True:
                    args.append(self.parse_expr())
                    if not self._accept(","):
                        break
            self._expect(")")
            self._expect(";")
            return ast.TaskCall(lhs.name, args)
        if isinstance(lhs, ast.Identifier) and self._check(";"):
            # A bare name is a call of a zero-argument task.
            self._next()
            return ast.TaskCall(lhs.name, [])
        if self._accept("<="):
            delay = self._parse_optional_delay()
            rhs = self.parse_expr()
            self._expect(";")
            return ast.NonBlockingAssign(lhs, rhs, delay)
        self._expect("=")
        delay = self._parse_optional_delay()
        rhs = self.parse_expr()
        self._expect(";")
        return ast.BlockingAssign(lhs, rhs, delay)

    def _parse_lvalue(self) -> ast.Expr:
        if self._check("{"):
            return self._parse_primary()
        name = self._expect_ident()
        expr: ast.Expr = ast.Identifier(name)
        return self._parse_postfix(expr)

    def _parse_optional_delay(self) -> ast.Expr | None:
        if self._accept("#"):
            return self._parse_delay_value()
        return None

    def _parse_delay_value(self) -> ast.Expr:
        if self._accept("("):
            expr = self.parse_expr()
            self._expect(")")
            return expr
        tok = self._peek()
        if tok.kind is TokenKind.NUMBER:
            return self._parse_number(self._next())
        if tok.kind is TokenKind.IDENT:
            return ast.Identifier(self._next().text)
        raise ParseError("expected delay value", tok)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        """Parse one expression (ternary precedence level)."""
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._accept("?"):
            true_expr = self.parse_expr()
            self._expect(":")
            false_expr = self.parse_expr()
            return ast.Ternary(cond, true_expr, false_expr)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            tok = self._peek()
            prec = _BINARY_PRECEDENCE.get(tok.text) if tok.kind is TokenKind.OPERATOR else None
            if prec is None or prec < min_prec:
                return left
            self._next()
            right = self._parse_binary(prec + 1)
            left = ast.BinaryOp(tok.text, left, right)

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.OPERATOR and tok.text in _UNARY_OPS:
            self._next()
            return ast.UnaryOp(tok.text, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.NUMBER:
            return self._parse_postfix(self._parse_number(self._next()))
        if tok.kind is TokenKind.STRING:
            self._next()
            return ast.StringConst(tok.text)
        if tok.kind is TokenKind.SYSTEM_IDENT:
            self._next()
            args: list[ast.Expr] = []
            if self._accept("("):
                if not self._check(")"):
                    while True:
                        args.append(self.parse_expr())
                        if not self._accept(","):
                            break
                self._expect(")")
            return ast.FunctionCall(tok.text, args)
        if tok.kind is TokenKind.IDENT:
            self._next()
            if self._check("("):
                self._next()
                args = []
                if not self._check(")"):
                    while True:
                        args.append(self.parse_expr())
                        if not self._accept(","):
                            break
                self._expect(")")
                return ast.FunctionCall(tok.text, args)
            return self._parse_postfix(ast.Identifier(tok.text))
        if self._accept("("):
            expr = self.parse_expr()
            self._expect(")")
            return self._parse_postfix(expr)
        if self._accept("{"):
            first = self.parse_expr()
            if self._check("{"):
                # Replication: {count{value}}
                self._next()
                value = self.parse_expr()
                while self._accept(","):
                    value = ast.Concat(
                        [value, self.parse_expr()]
                        if not isinstance(value, ast.Concat)
                        else value.parts + [self.parse_expr()]
                    )
                self._expect("}")
                self._expect("}")
                return ast.Repeat_(first, value)
            parts = [first]
            while self._accept(","):
                parts.append(self.parse_expr())
            self._expect("}")
            return self._parse_postfix(ast.Concat(parts))
        raise ParseError("expected expression", tok)

    def _parse_postfix(self, expr: ast.Expr) -> ast.Expr:
        while self._check("["):
            self._next()
            first = self.parse_expr()
            if self._accept(":"):
                second = self.parse_expr()
                self._expect("]")
                expr = ast.PartSelect(expr, first, second)
            else:
                self._expect("]")
                expr = ast.Index(expr, first)
        return expr

    def _parse_number(self, tok: Token) -> ast.Expr:
        text = tok.text
        if "." in text:
            return ast.RealNumber(text)
        try:
            return _parse_number_literal(text)
        except ValueError as exc:
            raise ParseError(str(exc), tok) from exc


_BASE_BITS = {"b": 1, "o": 3, "h": 4}
_HEX_DIGITS = "0123456789abcdef"


def _parse_number_literal(text: str) -> ast.Number:
    """Parse a Verilog integer literal into a :class:`Number` node.

    Handles plain decimals, and sized/unsized based literals with x/z/?
    digits.  Raises ValueError on malformed literals.
    """
    clean = text.replace("_", "")
    if "'" not in clean:
        # Plain unbased decimal literals are signed in Verilog-2001.
        return ast.Number(text, None, int(clean), 0, signed=True)
    size_part, rest = clean.split("'", 1)
    signed = False
    if rest and rest[0] in "sS":
        signed = True
        rest = rest[1:]
    if not rest:
        raise ValueError(f"malformed number literal {text!r}")
    base = rest[0].lower()
    digits = rest[1:].lower()
    width = int(size_part) if size_part else None
    if base == "d":
        if any(ch in "xz?" for ch in digits):
            # Decimal x/z literal: whole value is x or z.
            bit = digits[0] if digits[0] != "?" else "z"
            w = width or 32
            mask = (1 << w) - 1
            aval = mask if bit == "x" else 0
            return ast.Number(text, width, aval, mask, signed)
        value = int(digits or "0")
        if width is not None:
            value &= (1 << width) - 1
        return ast.Number(text, width, value, 0, signed)
    if base not in _BASE_BITS:
        raise ValueError(f"unknown base in {text!r}")
    bits_per = _BASE_BITS[base]
    aval = 0
    bval = 0
    for ch in digits:
        aval <<= bits_per
        bval <<= bits_per
        group_mask = (1 << bits_per) - 1
        if ch == "x":
            aval |= group_mask
            bval |= group_mask
        elif ch in "z?":
            bval |= group_mask
        else:
            if ch not in _HEX_DIGITS or int(ch, 16) > group_mask:
                raise ValueError(f"invalid digit {ch!r} in {text!r}")
            aval |= int(ch, 16)
    natural_width = bits_per * len(digits)
    if width is None:
        width_out = None
        eff = max(natural_width, 1)
    else:
        width_out = width
        eff = width
        if natural_width < eff and digits:
            # Left-extend x/z literals with the leading digit's state.
            lead = digits[0]
            ext_mask = ((1 << eff) - 1) ^ ((1 << natural_width) - 1)
            if lead == "x":
                aval |= ext_mask
                bval |= ext_mask
            elif lead in "z?":
                bval |= ext_mask
        mask = (1 << eff) - 1
        aval &= mask
        bval &= mask
    return ast.Number(text, width_out, aval, bval, signed)


def _clone(node: ast.Node | None) -> ast.Node | None:
    return node.clone() if node is not None else None


def parse(source: str, assign_ids: bool = True) -> ast.Source:
    """Parse Verilog source text into an AST.

    Args:
        source: Verilog source code (one or more modules).
        assign_ids: When True (default), assign preorder node ids.

    Returns:
        The parsed :class:`~repro.hdl.ast.Source` tree.
    """
    tree = Parser(tokenize(preprocess(source))).parse_source()
    if assign_ids:
        number_nodes(tree)
    return tree
