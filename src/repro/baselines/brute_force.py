"""Brute-force repair baseline (paper §5.1).

The comparison algorithm the paper describes: "a more straightforward
search algorithm applying edits at uniform to a circuit design" — no fault
localization, no fix localization, no fitness-guided selection.  It samples
single- and multi-edit patches uniformly over *all* AST nodes and checks
each candidate against the testbench, stopping at the first plausible
repair or when the budget runs out.
"""

from __future__ import annotations

import random
import time as time_mod
from dataclasses import dataclass

from ..hdl import ast
from ..core.config import RepairConfig
from ..core.patch import Edit, Patch
from ..core.repair import CirFixEngine, RepairProblem


@dataclass
class BruteForceOutcome:
    """Result of one brute-force run."""

    plausible: bool
    patch: Patch
    fitness: float
    candidates_tried: int
    simulations: int
    elapsed_seconds: float


class BruteForceRepair:
    """Uniform random edit search with no localization or fitness guidance."""

    def __init__(
        self,
        problem: RepairProblem,
        config: RepairConfig | None = None,
        seed: int = 0,
        max_edits: int = 2,
    ):
        self.problem = problem
        self.config = config or RepairConfig()
        self.rng = random.Random(seed)
        self.max_edits = max_edits
        # Reuse the engine purely as an evaluator (codegen → sim → fitness).
        self._engine = CirFixEngine(problem, self.config, seed)

    def _random_edit(self, tree: ast.Source) -> Edit | None:
        """A uniform GenProg-style edit: replace/insert/delete over all
        nodes.  Deliberately no repair templates and no localization — the
        paper's baseline applies "edits at uniform to a circuit design"."""
        nodes = [n for n in tree.walk() if n.node_id is not None]
        if not nodes:
            return None
        kind = self.rng.choice(("replace", "insert_after", "delete"))
        target = self.rng.choice(nodes)
        assert target.node_id is not None
        if kind == "delete":
            return Edit("delete", target.node_id)
        source = self.rng.choice(nodes)
        return Edit(kind, target.node_id, source.clone())

    def run(self) -> BruteForceOutcome:
        """Run the uniform random search until a repair or budget exhaustion."""
        start = time_mod.monotonic()
        deadline = start + self.config.max_wall_seconds
        best_fitness = self._engine.evaluate(Patch.empty()).fitness
        best_patch = Patch.empty()
        tried = 0
        while time_mod.monotonic() < deadline:
            if (
                self.config.max_fitness_evals is not None
                and self._engine.simulations >= self.config.max_fitness_evals
            ):
                break
            edits: list[Edit] = []
            tree = self.problem.design
            for _ in range(self.rng.randint(1, self.max_edits)):
                edit = self._random_edit(tree)
                if edit is not None:
                    edits.append(edit)
            if not edits:
                continue
            patch = Patch(edits)
            tried += 1
            evaluation = self._engine.evaluate(patch)
            if evaluation.fitness > best_fitness:
                best_fitness, best_patch = evaluation.fitness, patch
            if evaluation.is_plausible:
                return BruteForceOutcome(
                    True,
                    patch,
                    evaluation.fitness,
                    tried,
                    self._engine.simulations,
                    time_mod.monotonic() - start,
                )
        return BruteForceOutcome(
            False,
            best_patch,
            best_fitness,
            tried,
            self._engine.simulations,
            time_mod.monotonic() - start,
        )
