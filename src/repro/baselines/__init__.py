"""Baseline repair algorithms CirFix is compared against (paper §5.1)."""

from .brute_force import BruteForceOutcome, BruteForceRepair

__all__ = ["BruteForceRepair", "BruteForceOutcome"]
