"""Auto-grading: run a repair engine across minted scenarios.

The factory's ground-truth labels make repair quality *measurable
without inspection*: every minted scenario knows the golden design it
was corrupted from, so on top of the paper's plausible/correct grades
this harness adds the strongest one — **ground-truth match**, whether
the repaired design is structurally identical to the golden design.

Grades per scenario:

- ``plausible`` — the engine reached fitness 1.0 on the minting
  testbench (the paper's plausibility bar);
- ``correct`` — the repair also passes the held-out validation bench
  (benchsuite bases; fuzz bases have none, so correct == plausible);
- ``ground_truth_match`` — ``structurally_equal(repaired, golden)``:
  the engine recovered the exact pre-defect design, modulo node ids.

Determinism: grading inherits the package-wide backend contract — a
fixed (mint seed, engine, grading config, trial seeds) produces a
byte-identical :meth:`GradeReport.to_text` / :meth:`GradeReport.to_json`
on the serial and process backends (wall-clock never enters either).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Sequence

from ..core.config import RepairConfig
from ..core.engines import DEFAULT_ENGINE
from ..experiments.common import run_scenario
from ..hdl import parse
from ..hdl.ast import structurally_equal
from ..obs.events import MintedGradingCompleted, MintedScenarioGraded
from ..obs.observer import ObserverSet, RepairObserver
from .factory import MintedScenario

#: Default grading budget: small enough to grade dozens of minted
#: scenarios in CI, with a wall-clock bound generous enough that the
#: deterministic budgets (generations / fitness evals) always bind
#: first — the precondition for byte-identical cross-backend reports.
GRADE_CONFIG = RepairConfig(
    population_size=60,
    max_generations=3,
    max_wall_seconds=600.0,
    max_fitness_evals=300,
    minimize_budget=32,
)


@dataclass(frozen=True)
class GradedScenario:
    """One minted scenario's grades under one engine."""

    scenario_id: str
    source: str
    base: str
    mutator: str
    category: int
    faulty_fitness: float
    plausible: bool
    correct: bool
    ground_truth_match: bool
    fitness: float
    #: Unique candidate evaluations (the backend-independent counter).
    eval_sims: int
    generations: int
    edits: int


@dataclass
class GradeReport:
    """Outcome of grading one engine across a minted scenario set."""

    seed: int
    engine: str
    results: list[GradedScenario] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def plausible(self) -> int:
        return sum(r.plausible for r in self.results)

    @property
    def correct(self) -> int:
        return sum(r.correct for r in self.results)

    @property
    def ground_truth_matches(self) -> int:
        return sum(r.ground_truth_match for r in self.results)

    def by_mutator(self) -> dict[str, tuple[int, int, int, int]]:
        """mutator → (scenarios, plausible, correct, ground-truth)."""
        out: dict[str, list[int]] = {}
        for r in self.results:
            row = out.setdefault(r.mutator, [0, 0, 0, 0])
            row[0] += 1
            row[1] += r.plausible
            row[2] += r.correct
            row[3] += r.ground_truth_match
        return {k: tuple(v) for k, v in sorted(out.items())}  # type: ignore[misc]

    def to_text(self) -> str:
        """Byte-stable summary: no wall-clock, no backend echo."""
        n = len(self.results)
        lines = [
            "minted grading summary",
            f"  mint seed: {self.seed}  engine: {self.engine}  scenarios: {n}",
            f"  plausible: {self.plausible}/{n}  correct: {self.correct}/{n}"
            f"  ground-truth match: {self.ground_truth_matches}/{n}",
            "  by mutator:",
        ]
        for mutator, (total, plausible, correct, truth) in self.by_mutator().items():
            lines.append(
                f"    {mutator:20s} plausible {plausible}/{total}"
                f"  correct {correct}/{total}  ground-truth {truth}/{total}"
            )
        for r in self.results:
            grade = (
                "ground-truth" if r.ground_truth_match
                else "correct" if r.correct
                else "plausible" if r.plausible
                else "none"
            )
            lines.append(
                f"  {r.scenario_id}  {grade}  fitness={r.fitness:.6f}"
                f"  evals={r.eval_sims}"
            )
        return "\n".join(lines) + "\n"

    def to_json(self) -> str:
        """Byte-stable JSON payload (per-scenario grades, no wall-clock)."""
        return json.dumps(
            {
                "seed": self.seed,
                "engine": self.engine,
                "scenarios": len(self.results),
                "plausible": self.plausible,
                "correct": self.correct,
                "ground_truth_matches": self.ground_truth_matches,
                "by_mutator": {
                    mutator: {
                        "scenarios": total,
                        "plausible": plausible,
                        "correct": correct,
                        "ground_truth_matches": truth,
                    }
                    for mutator, (total, plausible, correct, truth)
                    in self.by_mutator().items()
                },
                "results": [
                    {
                        "scenario_id": r.scenario_id,
                        "source": r.source,
                        "base": r.base,
                        "mutator": r.mutator,
                        "category": r.category,
                        "faulty_fitness": r.faulty_fitness,
                        "plausible": r.plausible,
                        "correct": r.correct,
                        "ground_truth_match": r.ground_truth_match,
                        "fitness": r.fitness,
                        "eval_sims": r.eval_sims,
                        "generations": r.generations,
                        "edits": r.edits,
                    }
                    for r in self.results
                ],
            },
            indent=2,
            sort_keys=True,
        )


def ground_truth_match(repaired_text: str | None, golden_text: str) -> bool:
    """Did the engine recover the exact golden design (modulo node ids)?"""
    if repaired_text is None:
        return False
    try:
        return structurally_equal(parse(repaired_text), parse(golden_text))
    except Exception:
        return False


def grade_scenarios(
    minted: Sequence[MintedScenario],
    *,
    seed: int = 0,
    engine: str = DEFAULT_ENGINE,
    config: RepairConfig | None = None,
    seeds: tuple[int, ...] = (0,),
    observers: Sequence[RepairObserver] | None = None,
) -> GradeReport:
    """Grade ``engine`` on every minted scenario.

    ``config`` carries the evaluation backend choice (``workers`` /
    ``backend``) exactly as a repair run would; the report's non-timing
    content is identical for any backend.  ``seed`` is the mint seed,
    echoed into the report for provenance.
    """
    config = config or GRADE_CONFIG
    events = (
        observers if isinstance(observers, ObserverSet) else ObserverSet(observers)
    )
    started = time.monotonic()
    report = GradeReport(seed=seed, engine=engine)
    for scenario in minted:
        result = run_scenario(
            scenario.to_scenario(), config, events, seeds=seeds, engine=engine
        )
        truth = result.plausible and ground_truth_match(
            result.repaired_source, scenario.golden_text
        )
        graded = GradedScenario(
            scenario_id=scenario.scenario_id,
            source=scenario.source,
            base=scenario.base,
            mutator=scenario.mutator,
            category=scenario.category,
            faulty_fitness=scenario.faulty_fitness,
            plausible=result.plausible,
            correct=result.correct,
            ground_truth_match=truth,
            fitness=result.fitness,
            eval_sims=result.eval_sims,
            generations=result.generations,
            edits=result.edits,
        )
        report.results.append(graded)
        if events:
            events.emit(
                MintedScenarioGraded(
                    scenario_id=graded.scenario_id,
                    engine=engine,
                    mutator=graded.mutator,
                    category=graded.category,
                    plausible=graded.plausible,
                    correct=graded.correct,
                    ground_truth_match=graded.ground_truth_match,
                    fitness=graded.fitness,
                    eval_sims=graded.eval_sims,
                )
            )
    report.elapsed_seconds = time.monotonic() - started
    if events:
        events.emit(
            MintedGradingCompleted(
                seed=seed,
                engine=engine,
                scenarios=len(report.results),
                plausible=report.plausible,
                correct=report.correct,
                ground_truth_matches=report.ground_truth_matches,
                elapsed_seconds=report.elapsed_seconds,
            )
        )
    return report
