"""The scenario factory: mint ground-truth defect scenarios.

Turns :mod:`repro.fuzz.generator` programs and the benchsuite's golden
projects into an unlimited supply of ``(buggy, oracle)`` scenario pairs
with *known ground truth*: every minted scenario is a golden design
corrupted by exactly one semantic mutator from
:mod:`repro.mint.mutators`, so the golden design itself is a patch that
provably restores fitness 1.0.

Admission pipeline, per attempt (all seeded, bit-reproducible):

1. **Base selection** — a freshly generated fuzz program, or one of the
   small benchsuite projects.  The base is validated first: its golden
   design must simulate to a non-empty oracle trace and score
   self-fitness 1.0 (this is what certifies the ground-truth patch).
2. **Mutation** — one mutator applied at one rng-chosen site of the
   golden design AST.
3. **Observability check** — the mutant is re-simulated against the
   generated testbench; only defects with ``compiled`` and
   ``fitness < 1.0`` are admitted (the paper's validity criterion for
   seeded defects, §4.1.3).

Rejected fuzz mutants whose defect was *unobservable* are ddmin-shrunk
(:mod:`repro.fuzz.shrink`) to a minimal program that still hides the
same mutation — the reproducers make mutator blind spots debuggable.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from typing import Sequence

from ..benchsuite import PROJECT_DESCRIPTIONS, load_project
from ..benchsuite.scenario import Scenario
from ..core.backend import evaluate_design_text
from ..core.config import RepairConfig
from ..core.oracle import ensure_instrumented, generate_oracle
from ..fuzz.generator import GeneratedProgram, generate_program
from ..fuzz.oracles import FUZZ_EVAL_CONFIG
from ..fuzz.shrink import shrink_decisions
from ..hdl import ast, generate, parse
from ..instrument.trace import SimulationTrace
from ..obs.events import (
    MintRunCompleted,
    MintScenarioAdmitted,
    MintScenarioRejected,
)
from ..obs.observer import ObserverSet, RepairObserver
from .mutators import MUTATORS

#: Benchsuite projects small enough to mint against at interactive speed.
MINT_BENCH_PROJECTS: tuple[str, ...] = (
    "decoder_3_to_8",
    "counter",
    "flip_flop",
    "mux_4_1",
    "lshift_reg",
)

#: Rejection reasons, in the order the pipeline can produce them.
REJECT_REASONS: tuple[str, ...] = (
    "base_unusable",
    "no_sites",
    "mutate_refused",
    "uncompilable",
    "unobservable",
)

#: How many site picks one attempt tries before giving up on a mutator.
_SITE_TRIES = 5

#: How many (mutator, site) candidates one attempt simulates before the
#: attempt is rejected — many single-site mutations are behaviourally
#: silent (dead branch, masked bit), so an attempt keeps drawing until a
#: defect is *observable* or the budget runs out.
_OBSERVABILITY_TRIES = 8

#: Stride decorrelating per-attempt rng streams from the run seed.
_SEED_STRIDE = 1_000_003


@dataclass(frozen=True)
class MintConfig:
    """Parameters of one mint run (``repro mint``)."""

    seed: int = 0
    #: Mint *attempts*; the admitted count is lower (see REJECT_REASONS).
    count: int = 50
    #: Base suppliers to draw from: "fuzz" and/or "bench".
    sources: tuple[str, ...] = ("fuzz", "bench")
    bench_projects: tuple[str, ...] = MINT_BENCH_PROJECTS
    #: Percentage of attempts drawn from benchsuite projects (the rest
    #: come from the fuzz generator) when both sources are enabled.
    bench_percent: int = 20
    mutators: tuple[str, ...] = tuple(MUTATORS)
    #: ddmin-shrink unobservable fuzz mutants into minimal reproducers.
    shrink_rejected: bool = True
    shrink_budget: int = 128

    def validate(self) -> None:
        """Fail fast on unknown names and out-of-range knobs."""
        if self.count < 0:
            raise ValueError(f"count must be >= 0 (got {self.count})")
        if not 0 <= self.bench_percent <= 100:
            raise ValueError(
                f"bench_percent must be in [0, 100] (got {self.bench_percent})"
            )
        unknown = [s for s in self.sources if s not in ("fuzz", "bench")]
        if unknown or not self.sources:
            raise ValueError(
                f"sources must be a non-empty subset of ('fuzz', 'bench') "
                f"(got {self.sources!r})"
            )
        bad_mutators = [m for m in self.mutators if m not in MUTATORS]
        if bad_mutators or not self.mutators:
            raise ValueError(
                f"unknown mutators {bad_mutators!r} "
                f"(registered: {', '.join(MUTATORS)})"
            )
        bad_projects = [p for p in self.bench_projects if p not in PROJECT_DESCRIPTIONS]
        if bad_projects:
            raise ValueError(
                f"unknown bench projects {bad_projects!r} "
                f"(known: {', '.join(PROJECT_DESCRIPTIONS)})"
            )


@dataclass(frozen=True)
class MintedScenario:
    """One admitted scenario: a ground-truth-labeled (buggy, oracle) pair."""

    scenario_id: str
    #: Base supplier: "fuzz" or "bench".
    source: str
    #: Base identity: "seed:<n>" for fuzz programs, the project name for
    #: benchsuite bases.
    base: str
    mutator: str
    #: The Table-3 defect family label of the mutator.
    label: str
    category: int
    description: str
    faulty_text: str
    golden_text: str
    testbench_text: str
    #: Fitness of the faulty design against the golden oracle (< 1.0).
    faulty_fitness: float
    #: node_id of the mutated site in the golden design AST.
    site: int
    validate_text: str | None = None

    def to_scenario(self) -> Scenario:
        """The benchsuite adapter: run this through ``run_scenario``."""
        return Scenario.from_texts(
            self.scenario_id,
            golden_text=self.golden_text,
            testbench_text=self.testbench_text,
            faulty_text=self.faulty_text,
            description=self.description,
            category=self.category,
            project_name=self.base if self.source == "bench" else self.scenario_id,
            validate_text=self.validate_text,
        )

    def to_dict(self) -> dict:
        """JSON-ready mapping (inverse of :meth:`from_dict`)."""
        return {
            "scenario_id": self.scenario_id,
            "source": self.source,
            "base": self.base,
            "mutator": self.mutator,
            "label": self.label,
            "category": self.category,
            "description": self.description,
            "faulty_text": self.faulty_text,
            "golden_text": self.golden_text,
            "testbench_text": self.testbench_text,
            "faulty_fitness": self.faulty_fitness,
            "site": self.site,
            "validate_text": self.validate_text,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MintedScenario":
        names = {f for f in cls.__dataclass_fields__}  # noqa: C416 - set of names
        return cls(**{k: v for k, v in data.items() if k in names})


@dataclass(frozen=True)
class RejectedMutant:
    """One rejected mint attempt (diagnostic record)."""

    index: int
    source: str
    base: str
    mutator: str
    reason: str
    #: ddmin-shrunk generator decisions still reproducing the rejection
    #: (unobservable fuzz mutants only; replay with
    #: ``repro.fuzz.generator.replay_program``).
    shrunk_decisions: tuple[int, ...] | None = None


@dataclass
class MintReport:
    """Outcome of one mint run."""

    config: MintConfig
    admitted: list[MintedScenario] = field(default_factory=list)
    rejected: list[RejectedMutant] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def requested(self) -> int:
        return self.config.count

    def by_mutator(self) -> dict[str, int]:
        """Admitted-scenario counts keyed by mutator name, sorted by key."""
        return _counts(s.mutator for s in self.admitted)

    def by_label(self) -> dict[str, int]:
        """Admitted-scenario counts keyed by Table-3 family label."""
        return _counts(s.label for s in self.admitted)

    def by_source(self) -> dict[str, int]:
        """Admitted-scenario counts keyed by base source (fuzz/bench)."""
        return _counts(s.source for s in self.admitted)

    def by_reason(self) -> dict[str, int]:
        """Rejection counts keyed by admission-gate reason."""
        return _counts(r.reason for r in self.rejected)

    def to_text(self) -> str:
        """Byte-stable summary: no wall-clock, no host echo."""
        lines = [
            "mint summary",
            f"  seed: {self.config.seed}  requested: {self.requested}",
            f"  admitted: {len(self.admitted)}",
            "  by mutator: " + _format_counts(self.by_mutator()),
            "  by source: " + _format_counts(self.by_source()),
            f"  defect families: {len(self.by_label())}",
            f"  rejected: {len(self.rejected)} (" + _format_counts(self.by_reason()) + ")",
        ]
        for scenario in self.admitted:
            lines.append(
                f"  {scenario.scenario_id}  cat{scenario.category}"
                f"  fitness={scenario.faulty_fitness:.6f}  {scenario.description}"
            )
        shrunk = [r for r in self.rejected if r.shrunk_decisions is not None]
        if shrunk:
            lines.append("  shrunk reproducers:")
            lines.extend(
                f"    attempt {r.index} [{r.mutator}] "
                f"{len(r.shrunk_decisions or ())} decisions"
                for r in shrunk
            )
        return "\n".join(lines) + "\n"

    def to_json(self) -> str:
        """Byte-stable JSON payload (scenarios included, no wall-clock)."""
        return json.dumps(
            {
                "seed": self.config.seed,
                "requested": self.requested,
                "admitted": [s.to_dict() for s in self.admitted],
                "rejected": [
                    {
                        "index": r.index,
                        "source": r.source,
                        "base": r.base,
                        "mutator": r.mutator,
                        "reason": r.reason,
                        "shrunk_decisions": (
                            list(r.shrunk_decisions)
                            if r.shrunk_decisions is not None
                            else None
                        ),
                    }
                    for r in self.rejected
                ],
            },
            indent=2,
            sort_keys=True,
        )


def _counts(items) -> dict[str, int]:
    out: dict[str, int] = {}
    for item in items:
        out[item] = out.get(item, 0) + 1
    return dict(sorted(out.items()))


def _format_counts(counts: dict[str, int]) -> str:
    return " ".join(f"{k}={v}" for k, v in counts.items()) if counts else "-"


# ----------------------------------------------------------------------
# Base suppliers
# ----------------------------------------------------------------------


@dataclass
class _Base:
    """A validated golden base ready for mutation."""

    source: str
    name: str
    golden_text: str
    testbench_text: str
    golden_source: ast.Source
    testbench: ast.Source
    oracle: SimulationTrace
    eval_config: RepairConfig
    validate_text: str | None = None
    program: GeneratedProgram | None = None


#: Simulation bounds for validating benchsuite-based mutants (the five
#: MINT_BENCH_PROJECTS finish far below these).
_BENCH_EVAL_CONFIG = RepairConfig(max_sim_time=200_000, max_sim_steps=1_000_000)


def _build_base(
    source: str, name: str, golden_text: str, testbench_text: str,
    eval_config: RepairConfig, validate_text: str | None = None,
    program: GeneratedProgram | None = None,
) -> _Base | None:
    """Validate a golden (design, testbench) pair into a ``_Base``.

    Returns None when the base cannot anchor a ground-truth scenario:
    the oracle fails to generate, or the golden design itself does not
    score self-fitness 1.0 (which would make "golden restores 1.0" —
    the minted ground-truth guarantee — false).
    """
    try:
        golden = parse(golden_text)
        bench = ensure_instrumented(parse(testbench_text), golden)
        oracle = generate_oracle(
            golden, bench,
            max_sim_time=eval_config.max_sim_time,
            max_sim_steps=eval_config.max_sim_steps,
        )
    except Exception:
        return None
    self_check = evaluate_design_text(golden_text, bench, oracle, eval_config)
    if not self_check.compiled or self_check.fitness < 1.0:
        return None
    return _Base(
        source=source,
        name=name,
        golden_text=golden_text,
        testbench_text=testbench_text,
        golden_source=golden,
        testbench=bench,
        oracle=oracle,
        eval_config=eval_config,
        validate_text=validate_text,
        program=program,
    )


class _BaseSupplier:
    """Deterministic base selection with per-project caching."""

    def __init__(self, config: MintConfig):
        self.config = config
        self._bench_cache: dict[str, _Base | None] = {}

    def pick(self, index: int, rng: random.Random) -> tuple[str, str, "_Base | None"]:
        """(source, base key, validated base or None) for one attempt."""
        sources = self.config.sources
        use_bench = "bench" in sources and (
            "fuzz" not in sources
            or rng.randrange(100) < self.config.bench_percent
        )
        if use_bench and self.config.bench_projects:
            name = self.config.bench_projects[
                rng.randrange(len(self.config.bench_projects))
            ]
            return "bench", name, self._bench_base(name)
        program_seed = self.config.seed * _SEED_STRIDE + index
        return "fuzz", f"seed:{program_seed}", self._fuzz_base(program_seed)

    def _fuzz_base(self, program_seed: int) -> _Base | None:
        program = generate_program(program_seed)
        return _build_base(
            "fuzz", f"seed:{program_seed}",
            program.design_text, program.testbench_text,
            FUZZ_EVAL_CONFIG, program=program,
        )

    def _bench_base(self, name: str) -> _Base | None:
        if name not in self._bench_cache:
            project = load_project(name)
            self._bench_cache[name] = _build_base(
                "bench", name,
                project.design_text, project.testbench_text,
                _BENCH_EVAL_CONFIG, validate_text=project.validate_text,
            )
        base = self._bench_cache[name]
        if base is None:
            return None
        # Each attempt mutates its own clone of the cached golden AST, so
        # the cache entry itself is never rewritten.
        return base


# ----------------------------------------------------------------------
# The mint loop
# ----------------------------------------------------------------------


def _apply_mutator(
    base: _Base, mutator_name: str, rng: random.Random
) -> tuple[str, int, str] | None:
    """Try to mint one mutant; (buggy_text, site, description) or None."""
    mutator = MUTATORS[mutator_name]
    sites = mutator.sites(base.golden_source)
    if not sites:
        return None
    for _ in range(min(_SITE_TRIES, len(sites))):
        site = sites[rng.randrange(len(sites))]
        clone = base.golden_source.clone()
        assert isinstance(clone, ast.Source)
        description = mutator.apply(clone, site, rng)
        if description is None:
            continue
        buggy_text = generate(clone)
        if buggy_text != base.golden_text:
            return buggy_text, site, description
    return None


def _shrink_unobservable(
    base: _Base, mutator_name: str, variant_seed: int, budget: int
) -> tuple[int, ...] | None:
    """ddmin-shrink a fuzz program that hides a mutation (fitness 1.0).

    The predicate replays the (reduced) decision list, re-applies the
    same mutator with the same variant rng, and keeps the reduction only
    while the mutant still compiles *and* still scores fitness 1.0 —
    i.e. the defect stays unobservable on the smaller program.
    """
    if base.program is None:
        return None

    def still_unobservable(program: GeneratedProgram) -> bool:
        replayed = _build_base(
            "fuzz", base.name,
            program.design_text, program.testbench_text,
            base.eval_config, program=program,
        )
        if replayed is None:
            return False
        minted = _apply_mutator(replayed, mutator_name, random.Random(variant_seed))
        if minted is None:
            return False
        buggy_text, _, _ = minted
        result = evaluate_design_text(
            buggy_text, replayed.testbench, replayed.oracle, replayed.eval_config
        )
        return result.compiled and result.fitness >= 1.0

    shrunk = shrink_decisions(
        list(base.program.decisions), still_unobservable,
        max_tests=budget, seed=base.program.seed,
    )
    return tuple(shrunk.decisions)


def mint_scenarios(
    config: MintConfig,
    observers: Sequence[RepairObserver] | None = None,
) -> MintReport:
    """Run the factory: ``config.count`` seeded mint attempts.

    Deterministic for a fixed :class:`MintConfig`: the admitted scenario
    list (ids, texts, fitness values) and every rejection record are
    byte-identical across runs, platforms, and evaluation backends —
    minting never consults wall-clock or process state.
    """
    config.validate()
    events = (
        observers if isinstance(observers, ObserverSet) else ObserverSet(observers)
    )
    started = time.monotonic()
    report = MintReport(config=config)
    supplier = _BaseSupplier(config)

    for index in range(config.count):
        variant_seed = config.seed * _SEED_STRIDE + index
        rng = random.Random(variant_seed)
        source, base_key, base = supplier.pick(index, rng)
        if base is None:
            _reject(report, events, index, source, base_key, "", "base_unusable")
            continue

        # Cycle through the enabled mutators from an rng-chosen offset so
        # the mix stays even across attempts, and keep drawing
        # (mutator, site) candidates until a defect is observable or the
        # per-attempt budget runs out.
        order = list(config.mutators)
        offset = rng.randrange(len(order))
        scenario: MintedScenario | None = None
        last_reason = "no_sites"
        last_mutator = ""
        for step in range(_OBSERVABILITY_TRIES):
            mutator_name = order[(offset + step) % len(order)]
            if not MUTATORS[mutator_name].sites(base.golden_source):
                continue
            last_mutator = mutator_name
            if last_reason == "no_sites":
                last_reason = "mutate_refused"
            minted = _apply_mutator(base, mutator_name, rng)
            if minted is None:
                continue
            buggy_text, site, description = minted
            result = evaluate_design_text(
                buggy_text, base.testbench, base.oracle, base.eval_config
            )
            if not result.compiled:
                last_reason = "uncompilable"
                continue
            if result.fitness >= 1.0:
                last_reason = "unobservable"
                continue
            mutator = MUTATORS[mutator_name]
            scenario = MintedScenario(
                scenario_id=f"minted_{config.seed}_{index:03d}_{mutator_name}",
                source=source,
                base=base.name,
                mutator=mutator_name,
                label=mutator.label,
                category=mutator.category,
                description=f"{description} [{base.name}]",
                faulty_text=buggy_text,
                golden_text=base.golden_text,
                testbench_text=base.testbench_text,
                faulty_fitness=result.fitness,
                site=site,
                validate_text=base.validate_text,
            )
            break

        if scenario is None:
            shrunk = None
            if (
                last_reason == "unobservable"
                and config.shrink_rejected
                and source == "fuzz"
            ):
                shrunk = _shrink_unobservable(
                    base, last_mutator, variant_seed, config.shrink_budget
                )
            _reject(
                report, events, index, source, base_key, last_mutator,
                last_reason, shrunk,
            )
            continue

        report.admitted.append(scenario)
        if events:
            events.emit(
                MintScenarioAdmitted(
                    index=index,
                    scenario_id=scenario.scenario_id,
                    source=source,
                    mutator=scenario.mutator,
                    category=scenario.category,
                    faulty_fitness=scenario.faulty_fitness,
                )
            )

    report.elapsed_seconds = time.monotonic() - started
    if events:
        events.emit(
            MintRunCompleted(
                seed=config.seed,
                requested=config.count,
                admitted=len(report.admitted),
                rejected=len(report.rejected),
                elapsed_seconds=report.elapsed_seconds,
            )
        )
    return report


def _reject(
    report: MintReport,
    events: ObserverSet,
    index: int,
    source: str,
    base: str,
    mutator: str,
    reason: str,
    shrunk_decisions: tuple[int, ...] | None = None,
) -> None:
    report.rejected.append(
        RejectedMutant(
            index=index, source=source, base=base, mutator=mutator,
            reason=reason, shrunk_decisions=shrunk_decisions,
        )
    )
    if events:
        events.emit(
            MintScenarioRejected(
                index=index, source=source, mutator=mutator, reason=reason,
                shrunk=len(shrunk_decisions or ()),
            )
        )
