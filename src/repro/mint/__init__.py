"""repro.mint — the ground-truth scenario factory and grading harness.

The benchmark suite is frozen at the paper's 32 transplanted defects;
this package makes scenario supply unbounded.  It mints ``(buggy,
oracle)`` pairs by applying Table-3-style semantic mutators
(:mod:`~repro.mint.mutators`) to golden designs from the fuzz generator
and the benchsuite (:mod:`~repro.mint.factory`), admits only defects
that are *observable* under the generated testbench, and auto-grades
any registered repair engine against the minted set with
plausible / correct / ground-truth-match rates
(:mod:`~repro.mint.grading`).

CLI: ``python -m repro mint`` and ``python -m repro grade``; the
experiment driver is ``python -m repro.experiments minted``.  See
``docs/minting.md``.
"""

from .factory import (
    MINT_BENCH_PROJECTS,
    REJECT_REASONS,
    MintConfig,
    MintedScenario,
    MintReport,
    RejectedMutant,
    mint_scenarios,
)
from .grading import (
    GRADE_CONFIG,
    GradedScenario,
    GradeReport,
    grade_scenarios,
    ground_truth_match,
)
from .mutators import MUTATORS, MintMutator

__all__ = [
    "MINT_BENCH_PROJECTS",
    "REJECT_REASONS",
    "MUTATORS",
    "MintMutator",
    "MintConfig",
    "MintedScenario",
    "MintReport",
    "RejectedMutant",
    "mint_scenarios",
    "GRADE_CONFIG",
    "GradedScenario",
    "GradeReport",
    "grade_scenarios",
    "ground_truth_match",
]
