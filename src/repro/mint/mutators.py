"""Semantic defect mutators for the scenario factory (CirFix Table 3).

Each mutator models one defect family from the paper's Table 3 and
injects it as an AST rewrite over :mod:`repro.hdl` — the semantic
counterpart of the *textual* fault planting in :mod:`repro.fuzz.faults`
(which corrupts codegen to test the fuzz oracles).  Here the corruption
is the product: applied to a golden design it yields a buggy design
whose ground-truth patch is, by construction, the golden design itself.

The contract every mutator satisfies:

- ``sites(source)`` returns the ``node_id``\\ s where the mutator can
  apply, in deterministic preorder — same tree, same list.
- ``apply(source, site, rng)`` rewrites the (cloned) tree **in place**
  at one site and returns a human-readable defect description, or
  ``None`` when the rewrite would be a no-op at that site.  All
  randomness comes from ``rng``, so a seeded :class:`random.Random`
  replays the exact same defect.

Observability (the mutant must actually change externally visible
behaviour) is *not* this module's job: the factory re-simulates every
mutant against the generated testbench and only admits defects with
fitness < 1.0 (see :mod:`repro.mint.factory`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from ..hdl import ast

#: Assignment node types a defect can target.
_ASSIGNS = (ast.BlockingAssign, ast.NonBlockingAssign, ast.ContinuousAssign)

#: Declaration kinds that name a replaceable data signal (excludes
#: parameters, events, genvars: substituting those changes the program's
#: static semantics rather than misassigning a signal).
_SIGNAL_KINDS = ("input", "output", "inout", "wire", "reg", "integer")

#: Interchangeable binary-operator families for ``wrong_operator``.
_OP_FAMILIES: tuple[tuple[str, ...], ...] = (
    ("+", "-"),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("&", "|", "^"),
    ("&&", "||"),
    ("<<", ">>"),
)
_OP_TO_FAMILY: dict[str, tuple[str, ...]] = {
    op: family for family in _OP_FAMILIES for op in family
}


@dataclass(frozen=True)
class MintMutator:
    """One Table-3 defect family as an executable AST rewrite."""

    #: Registry key (also embedded in minted scenario ids).
    name: str
    #: The Table-3 defect family this mutator models.
    label: str
    #: Paper defect category: 1 = "easy", 2 = "hard" (§4.1.3).
    category: int
    sites: Callable[[ast.Source], list[int]] = field(repr=False)
    apply: Callable[[ast.Source, int, random.Random], str | None] = field(repr=False)


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


def _enclosing_module(source: ast.Source, node_id: int) -> ast.ModuleDef | None:
    """The module whose subtree contains ``node_id``, if any."""
    for module in source.modules:
        if module.find(node_id) is not None:
            return module
    return None


def _lhs_base_name(expr: ast.Expr) -> str | None:
    """The assigned signal's name, looking through index/part selects."""
    while isinstance(expr, (ast.Index, ast.PartSelect)):
        expr = expr.target
    return expr.name if isinstance(expr, ast.Identifier) else None


def _assign_sites(source: ast.Source) -> list[int]:
    """Assignments with an identifier-bearing right-hand side, preorder."""
    out: list[int] = []
    for node in source.walk():
        if isinstance(node, _ASSIGNS) and node.node_id is not None:
            if any(isinstance(n, ast.Identifier) for n in node.rhs.walk()):
                out.append(node.node_id)
    return out


# ----------------------------------------------------------------------
# negated condition (Table 3: "incorrect conditional / negated guard")
# ----------------------------------------------------------------------


def _negate_sites(source: ast.Source) -> list[int]:
    return [
        node.node_id
        for node in source.walk()
        if isinstance(node, (ast.If, ast.Ternary))
        and node.node_id is not None
        and node.cond is not None
    ]


def _negate_apply(
    source: ast.Source, site: int, rng: random.Random
) -> str | None:
    node = source.find(site)
    if not isinstance(node, (ast.If, ast.Ternary)):
        return None
    kind = "if statement" if isinstance(node, ast.If) else "ternary"
    cond = node.cond
    if isinstance(cond, ast.UnaryOp) and cond.op == "!":
        node.cond = cond.operand
        return f"removed the negation on the {kind} condition"
    node.cond = ast.UnaryOp("!", cond)
    return f"negated the {kind} condition"


# ----------------------------------------------------------------------
# off-by-one index / width (Table 3: "incorrect index / wrong signal width")
# ----------------------------------------------------------------------


def _off_by_one_sites(source: ast.Source) -> list[int]:
    out: list[int] = []
    for node in source.walk():
        targets: list[ast.Expr | None] = []
        if isinstance(node, ast.Index):
            targets.append(node.index)
        elif isinstance(node, ast.PartSelect):
            targets.extend((node.msb, node.lsb))
        elif isinstance(node, ast.Decl):
            targets.append(node.msb)
        for target in targets:
            # Only clean 0/1-valued literals: x/z planes (bval != 0) have
            # no well-defined neighbour, and synthesising one would not
            # read like a Table-3 index defect.
            if (
                isinstance(target, ast.Number)
                and target.bval == 0
                and target.node_id is not None
            ):
                out.append(target.node_id)
    return out


def _off_by_one_apply(
    source: ast.Source, site: int, rng: random.Random
) -> str | None:
    node = source.find(site)
    if not isinstance(node, ast.Number) or node.bval != 0:
        return None
    delta = 1 if node.aval == 0 else rng.choice((-1, 1))
    value = node.aval + delta
    if node.width is not None:
        value &= (1 << node.width) - 1
    if value == node.aval:
        return None
    replacement = ast.Number.from_int(value, node.width)
    if not source.replace(site, replacement):
        return None
    return f"off-by-one index/width: {node.text} became {replacement.text}"


# ----------------------------------------------------------------------
# wrong operator (Table 3: "incorrect assignment / operator defects")
# ----------------------------------------------------------------------


def _operator_sites(source: ast.Source) -> list[int]:
    return [
        node.node_id
        for node in source.walk()
        if isinstance(node, ast.BinaryOp)
        and node.node_id is not None
        and node.op in _OP_TO_FAMILY
    ]


def _operator_apply(
    source: ast.Source, site: int, rng: random.Random
) -> str | None:
    node = source.find(site)
    if not isinstance(node, ast.BinaryOp) or node.op not in _OP_TO_FAMILY:
        return None
    choices = [op for op in _OP_TO_FAMILY[node.op] if op != node.op]
    if not choices:
        return None
    old = node.op
    node.op = rng.choice(choices)
    return f"wrong operator: '{old}' became '{node.op}'"


# ----------------------------------------------------------------------
# dropped sensitivity edge (Table 3: "incorrect sensitivity list")
# ----------------------------------------------------------------------


def _sens_sites(source: ast.Source) -> list[int]:
    out: list[int] = []
    for node in source.walk():
        if (
            isinstance(node, ast.Always)
            and node.node_id is not None
            and node.senslist is not None
        ):
            items = node.senslist.items
            if len(items) >= 2:
                out.append(node.node_id)
            elif len(items) == 1 and items[0].edge in ("posedge", "negedge"):
                out.append(node.node_id)
    return out


def _sens_describe(item: ast.SensItem) -> str:
    signal = item.signal.name if isinstance(item.signal, ast.Identifier) else "*"
    return f"{item.edge} {signal}" if item.edge != "level" else signal


def _sens_apply(source: ast.Source, site: int, rng: random.Random) -> str | None:
    node = source.find(site)
    if not isinstance(node, ast.Always) or node.senslist is None:
        return None
    items = node.senslist.items
    if len(items) >= 2:
        dropped = items.pop(rng.randrange(len(items)))
        return f"dropped '{_sens_describe(dropped)}' from the sensitivity list"
    if len(items) == 1 and items[0].edge in ("posedge", "negedge"):
        item = items[0]
        old = item.edge
        item.edge = "negedge" if old == "posedge" else "posedge"
        return f"sensitivity edge flipped: {old} became {item.edge}"
    return None


# ----------------------------------------------------------------------
# misassigned signal (Table 3: "incorrect assignment to a wrong signal")
# ----------------------------------------------------------------------


def _misassign_apply(
    source: ast.Source, site: int, rng: random.Random
) -> str | None:
    node = source.find(site)
    if not isinstance(node, _ASSIGNS):
        return None
    module = _enclosing_module(source, site)
    if module is None:
        return None
    idents = [n for n in node.rhs.walk() if isinstance(n, ast.Identifier)]
    if not idents:
        return None
    target = idents[rng.randrange(len(idents))]
    lhs_name = _lhs_base_name(node.lhs)
    candidates = [
        decl.name
        for decl in module.decls()
        if decl.kind in _SIGNAL_KINDS
        and decl.name != target.name
        and decl.name != lhs_name
    ]
    if not candidates:
        return None
    old = target.name
    target.name = candidates[rng.randrange(len(candidates))]
    return f"misassigned signal: rhs reference '{old}' became '{target.name}'"


# ----------------------------------------------------------------------
# stuck constant (Table 3: "signal stuck at a constant value")
# ----------------------------------------------------------------------


def _stuck_apply(source: ast.Source, site: int, rng: random.Random) -> str | None:
    node = source.find(site)
    if not isinstance(node, _ASSIGNS):
        return None
    value = rng.choice((0, 1))
    if isinstance(node.rhs, ast.Number) and node.rhs.aval == value and node.rhs.bval == 0:
        return None
    name = _lhs_base_name(node.lhs) or "signal"
    node.rhs = ast.Number.from_int(value)
    return f"stuck constant: '{name}' driven with the constant {value}"


# ----------------------------------------------------------------------
# The catalog
# ----------------------------------------------------------------------

#: name → mutator, in the deterministic order the factory cycles through.
MUTATORS: dict[str, MintMutator] = {
    m.name: m
    for m in (
        MintMutator(
            "negate_condition", "negated conditional guard", 1,
            _negate_sites, _negate_apply,
        ),
        MintMutator(
            "off_by_one", "off-by-one index or width", 1,
            _off_by_one_sites, _off_by_one_apply,
        ),
        MintMutator(
            "wrong_operator", "wrong operator in expression", 1,
            _operator_sites, _operator_apply,
        ),
        MintMutator(
            "drop_sens_edge", "dropped or flipped sensitivity edge", 1,
            _sens_sites, _sens_apply,
        ),
        MintMutator(
            "misassigned_signal", "assignment reads the wrong signal", 2,
            _assign_sites, _misassign_apply,
        ),
        MintMutator(
            "stuck_constant", "signal stuck at a constant", 2,
            _assign_sites, _stuck_apply,
        ),
    )
}
