"""Command-line interface mirroring the original artifact's ``repair.py``.

The CirFix artifact is driven by a configuration file (``repair.conf``)
naming the faulty source, the testbench, the correctness information, and
the GP parameters.  This module reproduces that workflow::

    python -m repro repair --conf repair.conf
    python -m repro repair faulty.v testbench.v --golden golden.v
    python -m repro simulate design.v testbench.v
    python -m repro scenarios                     # list the benchmark suite

``repair.conf`` uses INI syntax:

.. code-block:: ini

    [project]
    source = faulty.v
    testbench = testbench.v
    ; one of the two oracle sources:
    golden = golden.v
    ; oracle = expected.csv

    [gp]
    population_size = 300
    max_generations = 8
    rt_threshold = 0.2
    mut_threshold = 0.7
    phi = 2.0
    seeds = 0,1,2
    max_wall_seconds = 600
    ; parallel candidate evaluation (see repro.core.backend):
    workers = 4
    backend = auto
"""

from __future__ import annotations

import argparse
import configparser
import sys
from pathlib import Path

from .benchsuite import DEFECTS
from .core.backend import BACKEND_NAMES
from .core.config import RepairConfig
from .core.oracle import ensure_instrumented, generate_oracle
from .core.repair import RepairProblem, repair
from .hdl import parse
from .instrument.trace import SimulationTrace
from .sim.simulator import Simulator

_GP_FLOAT_FIELDS = ("rt_threshold", "mut_threshold", "delete_threshold",
                    "insert_threshold", "elitism_fraction", "phi", "max_wall_seconds")
_GP_INT_FIELDS = ("population_size", "max_generations", "tournament_size",
                  "max_fitness_evals", "max_sim_time", "max_sim_steps", "minimize_budget",
                  "workers", "eval_chunk_size")
_GP_STR_FIELDS = ("backend",)


def _config_from_section(section: configparser.SectionProxy) -> tuple[RepairConfig, tuple[int, ...]]:
    overrides: dict[str, object] = {}
    for field in _GP_FLOAT_FIELDS:
        if field in section:
            overrides[field] = section.getfloat(field)
    for field in _GP_INT_FIELDS:
        if field in section:
            overrides[field] = section.getint(field)
    for field in _GP_STR_FIELDS:
        if field in section:
            overrides[field] = section.get(field)
    backend = overrides.get("backend")
    if backend is not None and backend not in BACKEND_NAMES:
        raise SystemExit(
            f"error: backend must be one of {', '.join(BACKEND_NAMES)} (got {backend!r})"
        )
    seeds = tuple(
        int(s) for s in section.get("seeds", "0,1,2").split(",") if s.strip()
    )
    return RepairConfig().scaled(**overrides), seeds


def _build_problem(
    source_path: Path,
    testbench_path: Path,
    golden_path: Path | None,
    oracle_path: Path | None,
) -> RepairProblem:
    faulty = parse(source_path.read_text())
    testbench = parse(testbench_path.read_text())
    if golden_path is not None:
        golden = parse(golden_path.read_text())
        bench = ensure_instrumented(testbench, golden)
        oracle = generate_oracle(golden, bench)
    elif oracle_path is not None:
        bench = ensure_instrumented(testbench, faulty)
        oracle = SimulationTrace.from_csv(oracle_path.read_text())
    else:
        raise SystemExit("error: provide either a golden design or an oracle CSV")
    return RepairProblem(faulty, bench, oracle, name=source_path.stem)


def cmd_repair(args: argparse.Namespace) -> int:
    """``repair`` subcommand: run CirFix on a defective design."""
    config = RepairConfig()
    seeds: tuple[int, ...] = tuple(args.seeds)
    if args.conf:
        ini = configparser.ConfigParser(inline_comment_prefixes=(";", "#"))
        ini.read(args.conf)
        project = ini["project"]
        source = Path(project["source"])
        testbench = Path(project["testbench"])
        golden = Path(project["golden"]) if "golden" in project else None
        oracle = Path(project["oracle"]) if "oracle" in project else None
        if ini.has_section("gp"):
            config, seeds = _config_from_section(ini["gp"])
    else:
        if not args.source or not args.testbench:
            raise SystemExit("error: provide SOURCE TESTBENCH or --conf FILE")
        source = Path(args.source)
        testbench = Path(args.testbench)
        golden = Path(args.golden) if args.golden else None
        oracle = Path(args.oracle) if args.oracle else None
    if args.budget is not None:
        config = config.scaled(max_wall_seconds=float(args.budget))
    if args.population is not None:
        config = config.scaled(population_size=args.population)
    if args.workers is not None:
        config = config.scaled(workers=max(1, args.workers))

    if args.log:
        import logging

        logging.basicConfig(level=logging.INFO, format="%(message)s")

    problem = _build_problem(source, testbench, golden, oracle)
    outcome = repair(problem, config, seeds)
    print(outcome.describe())
    if outcome.plausible and outcome.repaired_source is not None:
        print("repair patchlist:", outcome.patch.describe())
        out_path = Path(args.output) if args.output else source.with_suffix(".repaired.v")
        out_path.write_text(outcome.repaired_source)
        print(f"repaired design written to {out_path}")
        from .core.serialize import outcome_to_json

        report_path = out_path.with_suffix(".report.json")
        report_path.write_text(outcome_to_json(outcome, source.stem))
        print(f"repair report written to {report_path}")
        return 0
    print("no plausible repair found within the resource bounds")
    return 1


def cmd_simulate(args: argparse.Namespace) -> int:
    """``simulate`` subcommand: run a design under a testbench."""
    design = parse(Path(args.source).read_text())
    testbench = parse(Path(args.testbench).read_text())
    if args.record:
        testbench = ensure_instrumented(testbench, design)
    from .core.oracle import combine_sources

    sim = Simulator(combine_sources(design, testbench))
    result = sim.run(args.max_time)
    for line in result.output:
        print(line)
    if args.record and result.trace:
        print(SimulationTrace.from_records(result.trace).to_csv(), end="")
    print(
        f"-- {'finished' if result.finished else 'stopped'} at t={result.time}"
        f" ({result.steps_used} statements)",
        file=sys.stderr,
    )
    return 0 if result.finished else 2


def cmd_scenarios(_args: argparse.Namespace) -> int:
    """``scenarios`` subcommand: list the benchmark defect scenarios."""
    for defect in DEFECTS:
        print(
            f"{defect.scenario_id:20s} cat{defect.category}  "
            f"{defect.project:22s} {defect.description}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to a subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro", description="CirFix reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_repair = sub.add_parser("repair", help="repair a defective design")
    p_repair.add_argument("source", nargs="?", help="faulty design .v")
    p_repair.add_argument("testbench", nargs="?", help="testbench .v")
    p_repair.add_argument("--golden", help="previously-functioning design .v")
    p_repair.add_argument("--oracle", help="expected-behaviour CSV (Figure 2 shape)")
    p_repair.add_argument("--conf", help="repair.conf configuration file")
    p_repair.add_argument("--output", help="where to write the repaired design")
    p_repair.add_argument("--budget", type=float, help="wall-clock seconds per trial")
    p_repair.add_argument("--population", type=int, help="GP population size")
    p_repair.add_argument(
        "--workers", type=int,
        help="worker processes for candidate evaluation / parallel trials (default 1)",
    )
    p_repair.add_argument("--seeds", type=int, nargs="*", default=[0, 1, 2])
    p_repair.add_argument(
        "--log", action="store_true", help="print per-generation progress logs"
    )
    p_repair.set_defaults(func=cmd_repair)

    p_sim = sub.add_parser("simulate", help="run a design under a testbench")
    p_sim.add_argument("source")
    p_sim.add_argument("testbench")
    p_sim.add_argument("--record", action="store_true", help="instrument and dump the trace CSV")
    p_sim.add_argument("--max-time", type=int, default=1_000_000)
    p_sim.set_defaults(func=cmd_simulate)

    p_list = sub.add_parser("scenarios", help="list the 32 benchmark defect scenarios")
    p_list.set_defaults(func=cmd_scenarios)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. piped into `head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
