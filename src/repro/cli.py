"""Command-line interface mirroring the original artifact's ``repair.py``.

The CirFix artifact is driven by a configuration file (``repair.conf``)
naming the faulty source, the testbench, the correctness information, and
the GP parameters.  This module reproduces that workflow::

    python -m repro repair --conf repair.conf
    python -m repro repair faulty.v testbench.v --golden golden.v
    python -m repro repair faulty.v testbench.v --golden golden.v --trace run.jsonl
    python -m repro repair faulty.v testbench.v --golden golden.v --engine synth
    python -m repro engines                       # registered repair engines
    python -m repro simulate design.v testbench.v
    python -m repro lint design.v                 # static analysis (L0xx rules)
    python -m repro scenarios                     # list the benchmark suite
    python -m repro report run.jsonl              # summarise a telemetry trace
    python -m repro serve --socket /tmp/repro.sock --cache-dir ~/.cache/repro
    python -m repro submit --socket /tmp/repro.sock counter_reset --seeds 0
    python -m repro jobs --socket /tmp/repro.sock # the daemon's job table

``repair.conf`` uses INI syntax:

.. code-block:: ini

    [project]
    source = faulty.v
    testbench = testbench.v
    ; one of the two oracle sources:
    golden = golden.v
    ; oracle = expected.csv

    [gp]
    population_size = 300
    max_generations = 8
    rt_threshold = 0.2
    mut_threshold = 0.7
    phi = 2.0
    seeds = 0,1,2
    max_wall_seconds = 600
    ; parallel candidate evaluation (see repro.core.backend):
    workers = 4
    backend = auto

The ``[gp]`` section accepts every :class:`repro.core.config.RepairConfig`
field; unknown keys are rejected with the offending key named.  CLI flags
(``--budget``, ``--population``, ``--workers``, ``--backend``) are applied
on top of the file.
"""

from __future__ import annotations

import argparse
import configparser
import sys
from pathlib import Path

from .api import build_problem, simulate
from .benchsuite import DEFECTS
from .core.config import BACKEND_NAMES, SIM_ENGINE_NAMES, ConfigError, RepairConfig
from .core.engines import DEFAULT_ENGINE, engine_descriptions, engine_names, get_engine
from .instrument.trace import SimulationTrace


def cmd_repair(args: argparse.Namespace) -> int:
    """``repair`` subcommand: run CirFix on a defective design."""
    config = RepairConfig()
    seeds: tuple[int, ...] = tuple(args.seeds)
    if args.conf:
        ini = configparser.ConfigParser(inline_comment_prefixes=(";", "#"))
        if not ini.read(args.conf):
            raise SystemExit(f"error: cannot read config file {args.conf}")
        if "project" not in ini:
            raise SystemExit(f"error: {args.conf} has no [project] section")
        project = ini["project"]
        source = Path(project["source"])
        testbench = Path(project["testbench"])
        golden = Path(project["golden"]) if "golden" in project else None
        oracle = Path(project["oracle"]) if "oracle" in project else None
        config, file_seeds = RepairConfig.from_file(args.conf)
        if file_seeds is not None:
            seeds = file_seeds
    else:
        if not args.source or not args.testbench:
            raise SystemExit("error: provide SOURCE TESTBENCH or --conf FILE")
        source = Path(args.source)
        testbench = Path(args.testbench)
        golden = Path(args.golden) if args.golden else None
        oracle = Path(args.oracle) if args.oracle else None
    config = RepairConfig.from_cli_args(args, base=config)

    if args.log:
        import logging

        logging.basicConfig(level=logging.INFO, format="%(message)s")

    try:
        problem = build_problem(source, testbench, golden=golden, oracle=oracle)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")

    observers = []
    trace_observer = None
    if args.trace:
        from .obs import JsonlTraceObserver

        trace_observer = JsonlTraceObserver(args.trace)
        observers.append(trace_observer)
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    runner = get_engine(args.engine)
    try:
        outcome = runner(problem, config, seeds, observers=observers)
    finally:
        if profiler is not None:
            profiler.disable()
        if trace_observer is not None:
            trace_observer.close()
            print(f"telemetry trace written to {args.trace}", file=sys.stderr)
    if profiler is not None:
        _report_profile(profiler, args)
    print(outcome.describe())
    if outcome.plausible and outcome.repaired_source is not None:
        print("repair patchlist:", outcome.patch.describe())
        out_path = Path(args.output) if args.output else source.with_suffix(".repaired.v")
        out_path.write_text(outcome.repaired_source)
        print(f"repaired design written to {out_path}")
        from .core.serialize import outcome_to_json

        report_path = out_path.with_suffix(".report.json")
        report_path.write_text(outcome_to_json(outcome, source.stem))
        print(f"repair report written to {report_path}")
        return 0
    print("no plausible repair found within the resource bounds")
    return 1


#: Rows of the cumulative-time profile printed to stdout by ``--profile``.
_PROFILE_TOP_N = 25


def _report_profile(profiler, args: argparse.Namespace) -> None:
    """Print the ``--profile`` summary (and write ``profile.txt``).

    Stdout gets the top :data:`_PROFILE_TOP_N` functions by cumulative
    time — enough to see where a repair run's wall-clock went.  When a
    telemetry trace is being written (``--trace``), the full unabridged
    statistics land in ``profile.txt`` next to it.

    Note: with ``--workers``/pool evaluation the profile covers only the
    engine's process; candidate simulations running in pool workers show
    up as pipe waits, so profile serial runs to see the simulator itself.
    """
    import io
    import pstats

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(_PROFILE_TOP_N)
    print(stream.getvalue(), end="")
    if args.trace:
        out_path = Path(args.trace).with_name("profile.txt")
        full = io.StringIO()
        pstats.Stats(profiler, stream=full).sort_stats("cumulative").print_stats()
        out_path.write_text(full.getvalue())
        print(f"full profile written to {out_path}", file=sys.stderr)


def cmd_simulate(args: argparse.Namespace) -> int:
    """``simulate`` subcommand: run a design under a testbench."""
    result = simulate(
        Path(args.source).read_text(),
        Path(args.testbench).read_text(),
        record=args.record,
        max_time=args.max_time,
    )
    for line in result.output:
        print(line)
    if args.record and result.trace:
        print(SimulationTrace.from_records(result.trace).to_csv(), end="")
    print(
        f"-- {'finished' if result.finished else 'stopped'} at t={result.time}"
        f" ({result.steps_used} statements, {result.events_executed} events)",
        file=sys.stderr,
    )
    return 0 if result.finished else 2


def cmd_engines(_args: argparse.Namespace) -> int:
    """``engines`` subcommand: list registered repair engines.

    One line per engine — name plus its registry description; the
    default engine is starred.  Exactly these names are valid for
    ``--engine`` on ``repair``, ``grade``, and ``submit``.
    """
    for name, description in sorted(engine_descriptions().items()):
        marker = "*" if name == DEFAULT_ENGINE else " "
        print(f"{marker} {name:8s} {description}")
    return 0


def cmd_scenarios(_args: argparse.Namespace) -> int:
    """``scenarios`` subcommand: list the benchmark defect scenarios."""
    for defect in DEFECTS:
        print(
            f"{defect.scenario_id:20s} cat{defect.category}  "
            f"{defect.project:22s} {defect.description}"
        )
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """``fuzz`` subcommand: run the differential fuzzing harness."""
    from .fuzz import FuzzConfig, run_fuzz

    config = FuzzConfig(
        seed=args.seed,
        count=args.count,
        backend=args.backend,
        workers=args.workers,
        cross_backend_every=args.cross_backend_every,
        shrink=args.shrink,
        corpus_dir=Path(args.corpus_dir) if args.corpus_dir else None,
        inject_fault=args.inject_fault,
        check_logic=not args.no_logic,
    )
    observers = []
    trace_observer = None
    if args.trace:
        from .obs import JsonlTraceObserver

        trace_observer = JsonlTraceObserver(args.trace)
        observers.append(trace_observer)
    try:
        report = run_fuzz(config, observers=observers)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    finally:
        if trace_observer is not None:
            trace_observer.close()
            print(f"telemetry trace written to {args.trace}", file=sys.stderr)
    print(report.to_text(), end="")
    return 0 if report.ok else 1


def cmd_mint(args: argparse.Namespace) -> int:
    """``mint`` subcommand: mint ground-truth defect scenarios."""
    from .mint import MUTATORS, MintConfig, mint_scenarios

    config = MintConfig(
        seed=args.seed,
        count=args.count,
        sources=tuple(args.sources.split(",")) if args.sources else ("fuzz", "bench"),
        bench_percent=args.bench_percent,
        mutators=(
            tuple(args.mutators.split(",")) if args.mutators else tuple(MUTATORS)
        ),
        shrink_rejected=args.shrink,
        shrink_budget=args.shrink_budget,
    )
    observers = []
    trace_observer = None
    if args.trace:
        from .obs import JsonlTraceObserver

        trace_observer = JsonlTraceObserver(args.trace)
        observers.append(trace_observer)
    try:
        report = mint_scenarios(config, observers=observers)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    finally:
        if trace_observer is not None:
            trace_observer.close()
            print(f"telemetry trace written to {args.trace}", file=sys.stderr)
    if args.out:
        Path(args.out).write_text(report.to_json())
        print(f"minted scenarios written to {args.out}", file=sys.stderr)
    print(report.to_text(), end="")
    return 0 if report.admitted else 1


def cmd_grade(args: argparse.Namespace) -> int:
    """``grade`` subcommand: auto-grade a repair engine on minted scenarios.

    Re-mints the scenario set deterministically from ``--seed/--count``
    (no files to pass around), then runs the engine on every admitted
    scenario.  The summary is byte-identical across evaluation backends
    for a fixed seed, so CI can ``cmp`` serial vs process output.
    """
    from .core.engines import engine_names
    from .mint import GRADE_CONFIG, MintConfig, grade_scenarios, mint_scenarios

    if args.engine not in engine_names():
        raise SystemExit(
            f"error: unknown engine {args.engine!r} "
            f"(registered: {', '.join(engine_names())})"
        )
    mint_config = MintConfig(
        seed=args.seed,
        count=args.count,
        sources=tuple(args.sources.split(",")) if args.sources else ("fuzz", "bench"),
        bench_percent=args.bench_percent,
        shrink_rejected=False,
    )
    observers = []
    trace_observer = None
    if args.trace:
        from .obs import JsonlTraceObserver

        trace_observer = JsonlTraceObserver(args.trace)
        observers.append(trace_observer)
    try:
        minted = mint_scenarios(mint_config).admitted
        if args.max_scenarios is not None:
            minted = minted[: args.max_scenarios]
        config = GRADE_CONFIG
        if args.workers is not None or args.backend is not None:
            config = config.scaled(
                workers=args.workers if args.workers is not None else config.workers,
                backend=args.backend if args.backend is not None else config.backend,
            )
        report = grade_scenarios(
            minted,
            seed=args.seed,
            engine=args.engine,
            config=config,
            seeds=tuple(args.seeds),
            observers=observers,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    finally:
        if trace_observer is not None:
            trace_observer.close()
            print(f"telemetry trace written to {args.trace}", file=sys.stderr)
    if args.out:
        Path(args.out).write_text(report.to_text())
        print(f"grading summary written to {args.out}", file=sys.stderr)
    if args.json_out:
        Path(args.json_out).write_text(report.to_json())
        print(f"grading JSON written to {args.json_out}", file=sys.stderr)
    print(report.to_text(), end="")
    return 0 if minted else 1


def cmd_lint(args: argparse.Namespace) -> int:
    """``lint`` subcommand: static analysis over Verilog sources.

    Exit codes are CI-friendly: 0 = clean, 1 = findings reported,
    2 = a file failed to lex/parse (no lint answer).
    """
    import json as json_mod

    from .hdl import LexError, ParseError
    from .lint import lint_text, resolve_rules

    try:
        rules = resolve_rules(args.rules)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    reports = {}
    for path in args.files:
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise SystemExit(f"error: {exc}")
        try:
            reports[path] = lint_text(text, rules)
        except (ParseError, LexError) as exc:
            print(f"{path}: parse error: {exc}", file=sys.stderr)
            return 2
    if args.json:
        if len(reports) == 1:
            print(next(iter(reports.values())).to_json())
        else:
            print(
                json_mod.dumps(
                    {
                        "files": {
                            path: json_mod.loads(report.to_json())
                            for path, report in reports.items()
                        }
                    },
                    indent=2,
                )
            )
    else:
        for path, report in reports.items():
            if len(reports) > 1:
                print(f"== {path} ==")
            print(report.to_text(), end="")
    return 0 if all(report.ok for report in reports.values()) else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """``serve`` subcommand: run the repair-as-a-service daemon.

    The daemon listens on a Unix socket, executes submitted jobs on the
    configured backends, and — with ``--cache-dir`` — shares a
    persistent evaluation cache across every job and restart.  See
    ``docs/service.md``.
    """
    import asyncio

    from .service import RepairDaemon

    config = RepairConfig()
    if args.conf:
        config, _ = RepairConfig.from_file(args.conf)
    config = RepairConfig.from_cli_args(args, base=config)
    daemon = RepairDaemon(
        args.socket,
        base_config=config,
        max_jobs=args.max_jobs,
        tenant_quota=args.tenant_quota,
        journal_dir=args.journal_dir,
        recover=args.recover,
        max_queue_depth=args.max_queue_depth,
    )

    async def _main() -> None:
        """Start the server, announce readiness, serve until shutdown."""
        ready = asyncio.Event()
        task = asyncio.ensure_future(daemon.serve(ready))
        await ready.wait()
        print(f"repro service listening on {args.socket}", file=sys.stderr)
        await task

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        # Normally unreachable: the daemon installs a SIGINT handler
        # that drains gracefully.  A second Ctrl-C can still land here.
        print("interrupted; daemon stopped", file=sys.stderr)
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """``submit`` subcommand: send one repair job to a running daemon.

    Mirrors ``repair``'s exit codes (0 = plausible repair, 1 = none
    found, 2 = the job failed or was cancelled) and prints the same
    outcome report JSON on stdout, so ``submit`` output is directly
    comparable with a local run.
    """
    import json as json_mod

    from .service import RepairRequest, ServiceClient, ServiceError

    overrides: dict[str, object] = {}
    for item in args.config or []:
        if "=" not in item:
            raise SystemExit(f"error: --config expects key=value (got {item!r})")
        key, value = item.split("=", 1)
        overrides[key.strip()] = value.strip()
    if args.scenario:
        request = RepairRequest(
            scenario=args.scenario,
            config=overrides,
            seeds=tuple(args.seeds),
            engine=args.engine,
            tenant=args.tenant,
        )
    else:
        if not args.source or not args.testbench:
            raise SystemExit("error: provide a SCENARIO id or --source/--testbench")
        request = RepairRequest(
            design=Path(args.source).read_text(),
            testbench=Path(args.testbench).read_text(),
            golden=Path(args.golden).read_text() if args.golden else "",
            oracle_csv=Path(args.oracle).read_text() if args.oracle else "",
            config=overrides,
            seeds=tuple(args.seeds),
            engine=args.engine,
            tenant=args.tenant,
        )
    on_event = None
    if args.stream:

        def on_event(event) -> None:
            """Echo one streamed telemetry event as NDJSON on stderr."""
            print(json_mod.dumps(event.to_dict()), file=sys.stderr)

    client = ServiceClient(args.socket, timeout=args.timeout)
    try:
        status, response = client.submit(
            request,
            wait=not args.no_wait,
            stream=args.stream,
            on_event=on_event,
            retries=args.retries,
        )
    except (ServiceError, OSError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    if response is None:
        print(status.to_json())
        return 0
    if response.status != "done":
        print(response.to_json())
        print(f"job {response.status}: {response.error}", file=sys.stderr)
        return 2
    print(response.outcome_json)
    cache = response.cache
    print(
        f"job {status.job_id}: plausible={response.plausible} "
        f"fitness={response.fitness:.6f} "
        f"cache hit rate {cache.get('hit_rate', 0.0):.0%} "
        f"({cache.get('store_hits', 0)} hits / {cache.get('store_misses', 0)} misses)",
        file=sys.stderr,
    )
    return 0 if response.plausible else 1


def cmd_jobs(args: argparse.Namespace) -> int:
    """``jobs`` subcommand: print a running daemon's job table."""
    import json as json_mod

    from .service import ServiceClient, ServiceError

    client = ServiceClient(args.socket, timeout=args.timeout)
    try:
        rows = client.jobs()
    except (ServiceError, OSError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    if args.json:
        print(json_mod.dumps([row.to_dict() for row in rows], indent=2))
        return 0
    for row in rows:
        line = (
            f"{row.job_id:24s} {row.state:10s} {row.tenant:12s} "
            f"{row.scenario:20s} x{row.submissions}"
        )
        if row.error:
            line += f"  {row.error}"
        print(line)
    if not rows:
        print("no jobs", file=sys.stderr)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """``report`` subcommand: summarise a ``run.jsonl`` telemetry trace."""
    from .obs.report import report_text

    try:
        print(report_text(args.trace))
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to a subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro", description="CirFix reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_repair = sub.add_parser("repair", help="repair a defective design")
    p_repair.add_argument("source", nargs="?", help="faulty design .v")
    p_repair.add_argument("testbench", nargs="?", help="testbench .v")
    p_repair.add_argument("--golden", help="previously-functioning design .v")
    p_repair.add_argument("--oracle", help="expected-behaviour CSV (Figure 2 shape)")
    p_repair.add_argument("--conf", help="repair.conf configuration file")
    p_repair.add_argument("--output", help="where to write the repaired design")
    p_repair.add_argument(
        "--engine", choices=engine_names(), default=DEFAULT_ENGINE,
        help="registered repair engine: 'cirfix' (GP search), 'synth' "
        "(template synthesis), or 'race' (both, winner returned) "
        f"(default: {DEFAULT_ENGINE}; see `python -m repro engines`)",
    )
    p_repair.add_argument("--budget", type=float, help="wall-clock seconds per trial")
    p_repair.add_argument("--population", type=int, help="GP population size")
    p_repair.add_argument(
        "--workers", type=int,
        help="worker processes for candidate evaluation / parallel trials (default 1)",
    )
    p_repair.add_argument(
        "--backend", choices=BACKEND_NAMES,
        help="candidate-evaluation backend (default: auto)",
    )
    p_repair.add_argument(
        "--sim-engine", dest="sim_engine", choices=SIM_ENGINE_NAMES,
        help="candidate simulation engine: 'interp' (tree-walking) or "
        "'compiled' (AOT closure compiler; bit-identical, faster)",
    )
    p_repair.add_argument(
        "--profile", action="store_true",
        help="profile the run under cProfile; prints the top cumulative "
        "functions, and with --trace also writes profile.txt next to it",
    )
    p_repair.add_argument("--seeds", type=int, nargs="*", default=[0, 1, 2])
    p_repair.add_argument(
        "--trace", help="write a repro.obs JSONL telemetry trace to this path"
    )
    p_repair.add_argument(
        "--eval-deadline", dest="eval_deadline_seconds", type=float, metavar="SECONDS",
        help="per-candidate wall-clock deadline enforced by the supervised "
        "pool (0 disables; default 600)",
    )
    p_repair.add_argument(
        "--worker-mem-mb", dest="worker_mem_mb", type=int, metavar="MIB",
        help="per-worker address-space cap in MiB (RLIMIT_AS; 0 = no cap)",
    )
    p_repair.add_argument(
        "--lint-gate", dest="lint_gate", action="store_true", default=None,
        help="reject candidates that add lint violations before simulating them",
    )
    p_repair.add_argument(
        "--lint-gate-rules", dest="lint_gate_rules", metavar="SPEC",
        help="comma-separated rule codes/slugs the gate compares "
        "(default: multi-driver,inferred-latch,comb-loop; 'all' for every rule)",
    )
    p_repair.add_argument(
        "--cache-dir", dest="cache_dir", metavar="DIR",
        help="persistent sharded evaluation cache directory (shared across "
        "runs and with the service daemon; empty = memory-only)",
    )
    p_repair.add_argument(
        "--cache-max-mb", dest="cache_max_mb", type=int, metavar="MIB",
        help="LRU byte budget of the persistent cache in MiB (0 = unbounded)",
    )
    p_repair.add_argument(
        "--log", action="store_true", help="print per-generation progress logs"
    )
    p_repair.set_defaults(func=cmd_repair)

    p_sim = sub.add_parser("simulate", help="run a design under a testbench")
    p_sim.add_argument("source")
    p_sim.add_argument("testbench")
    p_sim.add_argument("--record", action="store_true", help="instrument and dump the trace CSV")
    p_sim.add_argument("--max-time", type=int, default=1_000_000)
    p_sim.set_defaults(func=cmd_simulate)

    p_list = sub.add_parser("scenarios", help="list the 32 benchmark defect scenarios")
    p_list.set_defaults(func=cmd_scenarios)

    p_engines = sub.add_parser(
        "engines", help="list registered repair engines (* marks the default)"
    )
    p_engines.set_defaults(func=cmd_engines)

    p_fuzz = sub.add_parser(
        "fuzz", help="fuzz the parser/simulator/templates with differential oracles"
    )
    p_fuzz.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    p_fuzz.add_argument(
        "--count", type=int, default=25, help="number of programs (default 25)"
    )
    p_fuzz.add_argument(
        "--backend", choices=("serial", "process"), default="serial",
        help="evaluation path for the self-fitness oracle (default: serial)",
    )
    p_fuzz.add_argument("--workers", type=int, default=2)
    p_fuzz.add_argument(
        "--cross-backend-every", type=int, default=10, metavar="N",
        help="serial-vs-process differential on every Nth program (0 disables)",
    )
    p_fuzz.add_argument(
        "--no-shrink", dest="shrink", action="store_false",
        help="keep full failing programs instead of delta-reducing them",
    )
    p_fuzz.add_argument(
        "--corpus-dir", help="write shrunk reproducers here (tests/fuzz/corpus)"
    )
    p_fuzz.add_argument(
        "--inject-fault", help="plant a known codegen fault (mutation smoke)"
    )
    p_fuzz.add_argument(
        "--no-logic", action="store_true",
        help="skip the once-per-run 4-state logic property sweep",
    )
    p_fuzz.add_argument(
        "--trace", help="write a repro.obs JSONL telemetry trace to this path"
    )
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_mint = sub.add_parser(
        "mint", help="mint ground-truth defect scenarios from golden designs"
    )
    p_mint.add_argument("--seed", type=int, default=0, help="mint seed (default 0)")
    p_mint.add_argument(
        "--count", type=int, default=50, help="mint attempts (default 50)"
    )
    p_mint.add_argument(
        "--sources", metavar="LIST",
        help="comma-separated base suppliers: fuzz,bench (default both)",
    )
    p_mint.add_argument(
        "--bench-percent", type=int, default=20, metavar="PCT",
        help="percentage of attempts drawn from benchsuite bases (default 20)",
    )
    p_mint.add_argument(
        "--mutators", metavar="LIST",
        help="comma-separated mutator names to enable (default: all)",
    )
    p_mint.add_argument(
        "--no-shrink", dest="shrink", action="store_false",
        help="skip ddmin-shrinking unobservable fuzz mutants",
    )
    p_mint.add_argument(
        "--shrink-budget", type=int, default=128, metavar="N",
        help="max replays per shrink (default 128)",
    )
    p_mint.add_argument(
        "--out", help="write the minted scenario set (JSON) to this path"
    )
    p_mint.add_argument(
        "--trace", help="write a repro.obs JSONL telemetry trace to this path"
    )
    p_mint.set_defaults(func=cmd_mint)

    p_grade = sub.add_parser(
        "grade", help="auto-grade a repair engine on minted scenarios"
    )
    p_grade.add_argument("--seed", type=int, default=0, help="mint seed (default 0)")
    p_grade.add_argument(
        "--count", type=int, default=10, help="mint attempts to grade (default 10)"
    )
    p_grade.add_argument(
        "--max-scenarios", type=int, metavar="N",
        help="grade at most the first N admitted scenarios",
    )
    p_grade.add_argument(
        "--sources", metavar="LIST",
        help="comma-separated base suppliers: fuzz,bench (default both)",
    )
    p_grade.add_argument(
        "--bench-percent", type=int, default=20, metavar="PCT",
        help="percentage of attempts drawn from benchsuite bases (default 20)",
    )
    p_grade.add_argument(
        "--engine", choices=engine_names(), default=DEFAULT_ENGINE,
        help=f"registered repair engine to grade (default: {DEFAULT_ENGINE})",
    )
    p_grade.add_argument(
        "--backend", choices=("serial", "process"),
        help="candidate-evaluation backend (default: grading config's)",
    )
    p_grade.add_argument(
        "--workers", type=int, help="evaluation workers for --backend process"
    )
    p_grade.add_argument(
        "--seeds", type=int, nargs="+", default=[0], metavar="SEED",
        help="repair trial seeds per scenario (default: 0)",
    )
    p_grade.add_argument(
        "--out", help="write the byte-stable text summary to this path"
    )
    p_grade.add_argument(
        "--json-out", help="write the JSON grading payload to this path"
    )
    p_grade.add_argument(
        "--trace", help="write a repro.obs JSONL telemetry trace to this path"
    )
    p_grade.set_defaults(func=cmd_grade)

    p_lint = sub.add_parser("lint", help="static analysis over Verilog sources")
    p_lint.add_argument("files", nargs="+", help="Verilog source files to lint")
    p_lint.add_argument(
        "--json", action="store_true", help="machine-readable report on stdout"
    )
    p_lint.add_argument(
        "--rules", metavar="SPEC",
        help="comma-separated rule codes/slugs to run (default: all)",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_report = sub.add_parser("report", help="summarise a telemetry trace (run.jsonl)")
    p_report.add_argument("trace", help="JSONL trace written by --trace or the experiments")
    p_report.set_defaults(func=cmd_report)

    p_serve = sub.add_parser("serve", help="run the repair-as-a-service daemon")
    p_serve.add_argument(
        "--socket", required=True, help="Unix socket path to listen on"
    )
    p_serve.add_argument("--conf", help="repair.conf providing the base [gp] config")
    p_serve.add_argument(
        "--max-jobs", dest="max_jobs", type=int, default=2,
        help="repair jobs executing concurrently (default 2)",
    )
    p_serve.add_argument(
        "--tenant-quota", dest="tenant_quota", type=int, default=2,
        help="max concurrently running jobs per tenant (default 2)",
    )
    p_serve.add_argument(
        "--cache-dir", dest="cache_dir", metavar="DIR",
        help="persistent sharded evaluation cache shared by all jobs",
    )
    p_serve.add_argument(
        "--cache-max-mb", dest="cache_max_mb", type=int, metavar="MIB",
        help="LRU byte budget of the persistent cache in MiB (0 = unbounded)",
    )
    p_serve.add_argument(
        "--journal-dir", dest="journal_dir", metavar="DIR",
        help="durable job journal for crash recovery (admissions, "
        "completions, and engine checkpoints are write-ahead logged)",
    )
    p_serve.add_argument(
        "--recover", action="store_true",
        help="replay the journal on startup and re-admit unfinished jobs "
        "(requires --journal-dir)",
    )
    p_serve.add_argument(
        "--max-queue-depth", dest="max_queue_depth", type=int, default=0,
        help="shed new submissions with a typed 'overloaded' error once "
        "this many jobs are queued (0 = unbounded, the default)",
    )
    p_serve.add_argument(
        "--workers", type=int,
        help="worker processes per job's evaluation backend",
    )
    p_serve.add_argument(
        "--backend", choices=BACKEND_NAMES,
        help="candidate-evaluation backend for jobs (default: auto)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser("submit", help="submit a repair job to a daemon")
    p_submit.add_argument("scenario", nargs="?", help="benchmark scenario id")
    p_submit.add_argument("--socket", required=True, help="the daemon's Unix socket")
    p_submit.add_argument("--source", help="faulty design .v (instead of a scenario)")
    p_submit.add_argument("--testbench", help="testbench .v (with --source)")
    p_submit.add_argument("--golden", help="previously-functioning design .v")
    p_submit.add_argument("--oracle", help="expected-behaviour CSV (Figure 2 shape)")
    p_submit.add_argument("--seeds", type=int, nargs="*", default=[0, 1, 2])
    p_submit.add_argument(
        "--engine", choices=engine_names(), default=DEFAULT_ENGINE,
        help="registered repair engine the daemon should run "
        f"(default: {DEFAULT_ENGINE}; see `python -m repro engines`)",
    )
    p_submit.add_argument(
        "--tenant", default="default", help="fair-share scheduling bucket"
    )
    p_submit.add_argument(
        "--config", action="append", metavar="KEY=VALUE",
        help="config override applied on the server (repeatable)",
    )
    p_submit.add_argument(
        "--stream", action="store_true",
        help="stream the run's telemetry events to stderr as NDJSON",
    )
    p_submit.add_argument(
        "--no-wait", dest="no_wait", action="store_true",
        help="return right after admission instead of waiting for the result",
    )
    p_submit.add_argument(
        "--timeout", type=float, default=None,
        help="socket timeout in seconds (default: wait forever)",
    )
    p_submit.add_argument(
        "--retries", type=int, default=0,
        help="resubmit up to N times on unavailable/overloaded/interrupted "
        "errors with capped exponential backoff (safe: the daemon dedups "
        "identical requests, so a retry joins rather than duplicates)",
    )
    p_submit.set_defaults(func=cmd_submit)

    p_jobs = sub.add_parser("jobs", help="list a running daemon's jobs")
    p_jobs.add_argument("--socket", required=True, help="the daemon's Unix socket")
    p_jobs.add_argument(
        "--json", action="store_true", help="machine-readable table on stdout"
    )
    p_jobs.add_argument(
        "--timeout", type=float, default=10.0,
        help="socket timeout in seconds (default 10)",
    )
    p_jobs.set_defaults(func=cmd_jobs)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigError as exc:
        raise SystemExit(f"error: {exc}")
    except BrokenPipeError:  # e.g. piped into `head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
