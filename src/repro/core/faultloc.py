"""Dataflow-based fault localization (paper §3.1, Algorithm 2).

Starting from the set of output wires/registers whose simulated values
mismatch the oracle, a context-insensitive fixed-point analysis implicates
AST nodes:

- **Impl-Data** — an assignment whose left-hand side names a mismatched
  identifier;
- **Impl-Ctrl** — a conditional statement whose condition reads a
  mismatched identifier.

Every implicated node and all of its children join the fault localization
set; child identifiers not yet in the mismatch set are added (**Add-Child**)
and the analysis repeats until the mismatch set is stable.  The result is a
*uniformly-ranked set* of node ids (not a ranked list — the paper argues
parallel HDL structure makes uniform ranking appropriate).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl import ast
from ..hdl.dataflow import condition_expr, expr_names, lhs_names


@dataclass
class FaultLocalization:
    """Result of the fixed-point analysis."""

    #: Implicated node ids (uniformly ranked).
    nodes: set[int] = field(default_factory=set)
    #: Final mismatch identifier set after the fixed point.
    mismatch: set[str] = field(default_factory=set)
    #: Number of fixed-point iterations performed.
    iterations: int = 0

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)


_ASSIGNMENT_TYPES = (ast.BlockingAssign, ast.NonBlockingAssign, ast.ContinuousAssign)
_CONDITIONAL_TYPES = (ast.If, ast.Case, ast.While, ast.Ternary, ast.For)


# The name-level queries are shared with repro.lint and live in
# repro.hdl.dataflow; the aliases keep this module's call sites (and any
# external users of the historical private names) unchanged.
def _lhs_names(node: ast.Node) -> set[str]:
    """Identifier names written by an assignment's LHS (through selects
    and concatenations)."""
    return lhs_names(node.lhs)  # type: ignore[attr-defined]


_condition_expr = condition_expr
_expr_names = expr_names


def _implicated(node: ast.Node, mismatch: set[str]) -> bool:
    """The paper's ``implicated(node, mismatch)`` predicate.

    Impl-Ctrl matches the paper's motivating-example walkthrough: "the
    entire if-statement wrapping this assignment gets implicated" — i.e. a
    conditional statement is implicated when *any* identifier in the whole
    statement (guard or body) is in the mismatch set.
    """
    if isinstance(node, _ASSIGNMENT_TYPES):
        if _lhs_names(node) & mismatch:  # Impl-Data
            return True
    if isinstance(node, _CONDITIONAL_TYPES):
        for sub in node.walk():
            if isinstance(sub, ast.Identifier) and sub.name in mismatch:  # Impl-Ctrl
                return True
    return False


def localize_faults(
    design: ast.Node,
    initial_mismatch: set[str],
    max_iterations: int = 64,
) -> FaultLocalization:
    """Run Algorithm 2 on the design AST.

    Args:
        design: The (possibly already-patched) design AST — typically the
            :class:`~repro.hdl.ast.Source` restricted to design modules.
        initial_mismatch: Output identifiers with mismatched values, i.e.
            ``get_output_mismatch(O, S)`` from
            :func:`repro.instrument.trace.output_mismatch`.
        max_iterations: Safety bound on the fixed point (the mismatch set
            is monotone, so the loop terminates anyway).

    Returns:
        The fault localization set plus the saturated mismatch set.
    """
    result = FaultLocalization(mismatch=set())
    frontier = set(initial_mismatch)
    nodes = list(design.walk())
    while frontier - result.mismatch and result.iterations < max_iterations:
        result.iterations += 1
        result.mismatch |= frontier
        new_names: set[str] = set()
        for node in nodes:
            if node.node_id is None or not _implicated(node, result.mismatch):
                continue
            result.nodes.add(node.node_id)
            for child in node.walk():
                if child.node_id is not None:
                    result.nodes.add(child.node_id)
                if isinstance(child, ast.Identifier) and child.name not in result.mismatch:
                    new_names.add(child.name)  # Add-Child
        frontier = new_names
    return result


def all_statement_ids(design: ast.Node) -> set[int]:
    """Fallback localization: every statement node (used when a parent
    variant cannot be simulated at all)."""
    return {
        node.node_id
        for node in design.walk()
        if node.node_id is not None
        and isinstance(node, (ast.Stmt, ast.ContinuousAssign, ast.Always))
    }
