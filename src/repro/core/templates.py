"""Repair templates (paper §3.3, Table 1).

Nine pre-identified fix patterns across four defect categories:

=================  ==============================================
Category           Templates
=================  ==============================================
Conditionals       ``negate_conditional``
Sensitivity lists  ``sens_negedge``, ``sens_posedge``,
                   ``sens_any_change``, ``sens_level``
Assignments        ``blocking_to_nonblocking``,
                   ``nonblocking_to_blocking``
Numeric            ``increment_by_one``, ``decrement_by_one``
=================  ==============================================

A template is applied to a target node (chosen from the fault localization
set); :func:`applicable_templates` reports which templates fit which node,
and :func:`apply_template` performs the rewrite in place.
"""

from __future__ import annotations

from ..hdl import ast
from ..hdl.node_ids import number_nodes

#: All template names, grouped by the paper's defect categories.
TEMPLATES_BY_CATEGORY: dict[str, tuple[str, ...]] = {
    "conditionals": ("negate_conditional",),
    "sensitivity": ("sens_negedge", "sens_posedge", "sens_any_change", "sens_level"),
    "assignments": ("blocking_to_nonblocking", "nonblocking_to_blocking"),
    "numeric": ("increment_by_one", "decrement_by_one"),
}

ALL_TEMPLATES: tuple[str, ...] = tuple(
    name for group in TEMPLATES_BY_CATEGORY.values() for name in group
)


def applicable_templates(node: ast.Node) -> list[str]:
    """Templates that can rewrite ``node``."""
    names: list[str] = []
    if isinstance(node, (ast.If, ast.While)):
        names.append("negate_conditional")
    if isinstance(node, ast.Always) and node.senslist is not None:
        names.extend(TEMPLATES_BY_CATEGORY["sensitivity"])
    if isinstance(node, ast.SensItem):
        names.extend(("sens_negedge", "sens_posedge", "sens_level"))
    if isinstance(node, ast.BlockingAssign):
        names.append("blocking_to_nonblocking")
    if isinstance(node, ast.NonBlockingAssign):
        names.append("nonblocking_to_blocking")
    if isinstance(node, (ast.Number, ast.Identifier)):
        names.extend(("increment_by_one", "decrement_by_one"))
    return names


def apply_template(name: str, tree: ast.Source, target_id: int, fresh_start: int) -> bool:
    """Apply template ``name`` to node ``target_id`` inside ``tree``.

    Returns True when the rewrite happened (False for stale targets or an
    inapplicable template — both no-ops, per the patch conventions).
    Fresh nodes are numbered from ``fresh_start``.
    """
    target = tree.find(target_id)
    if target is None:
        return False
    if name not in applicable_templates(target):
        # Extension templates (paper future work) share the edit kind so a
        # patchlist stays uniform; they live in templates_ext.
        from .templates_ext import EXTENDED_TEMPLATES, apply_extended

        if name in EXTENDED_TEMPLATES:
            return apply_extended(name, tree, target_id, fresh_start)
        return False
    if name == "negate_conditional":
        assert isinstance(target, (ast.If, ast.While))
        negated = ast.UnaryOp("!", target.cond)
        negated.node_id = fresh_start  # the wrapped condition keeps its ids
        target.cond = negated
        return True
    if name.startswith("sens_"):
        return _apply_sensitivity(name, tree, target, fresh_start)
    if name == "blocking_to_nonblocking":
        assert isinstance(target, ast.BlockingAssign)
        replacement = ast.NonBlockingAssign(target.lhs, target.rhs, target.delay)
        replacement.node_id = fresh_start
        return tree.replace(target_id, replacement)
    if name == "nonblocking_to_blocking":
        assert isinstance(target, ast.NonBlockingAssign)
        replacement = ast.BlockingAssign(target.lhs, target.rhs, target.delay)
        replacement.node_id = fresh_start
        return tree.replace(target_id, replacement)
    if name in ("increment_by_one", "decrement_by_one"):
        return _apply_numeric(name, tree, target, fresh_start)
    return False


def _apply_sensitivity(
    name: str, tree: ast.Source, target: ast.Node, fresh_start: int
) -> bool:
    """Rewrite a sensitivity list (on an Always block or a single item)."""
    if isinstance(target, ast.SensItem):
        if target.signal is None:
            return False
        if name == "sens_negedge":
            target.edge = "negedge"
        elif name == "sens_posedge":
            target.edge = "posedge"
        elif name == "sens_level":
            target.edge = "level"
        else:
            return False
        return True
    assert isinstance(target, ast.Always) and target.senslist is not None
    items = target.senslist.items
    if name == "sens_any_change":
        # Trigger on any change to a variable within the block: @(*).
        new_item = ast.SensItem("all", None)
        number_nodes(new_item, fresh_start)
        target.senslist.items = [new_item]
        return True
    if not items:
        return False
    first = items[0]
    if first.signal is None:
        return False
    if name == "sens_negedge":
        first.edge = "negedge"
    elif name == "sens_posedge":
        first.edge = "posedge"
    elif name == "sens_level":
        first.edge = "level"
    else:
        return False
    return True


def _apply_numeric(name: str, tree: ast.Source, target: ast.Node, fresh_start: int) -> bool:
    delta = 1 if name == "increment_by_one" else -1
    if isinstance(target, ast.Number):
        # Adjust the literal itself (off-by-one style numeric errors).
        if target.bval != 0:
            return False
        width = target.width
        eff_width = width if width is not None else 32
        new_value = (target.aval + delta) & ((1 << eff_width) - 1)
        if width is not None:
            replacement = ast.Number(f"{width}'d{new_value}", width, new_value, 0)
        else:
            replacement = ast.Number(str(new_value), None, new_value, 0)
        replacement.node_id = fresh_start
        return tree.replace(target.node_id or -1, replacement)
    if isinstance(target, ast.Identifier):
        if _is_lvalue_head(tree, target):
            # Wrapping the head of an assignment target would emit
            # ``(a + 1) = rhs;`` which no longer parses — refuse (no-op).
            return False
        op = "+" if delta == 1 else "-"
        wrapped = ast.BinaryOp(op, ast.Identifier(target.name), ast.Number("1", None, 1, 0))
        number_nodes(wrapped, fresh_start)
        return tree.replace(target.node_id or -1, wrapped)
    return False


def _is_lvalue_head(tree: ast.Source, target: ast.Identifier) -> bool:
    """True when ``target`` names the variable being assigned.

    That is, it is reachable from an assignment's ``lhs`` slot through
    ``Index``/``PartSelect`` target links only.  Identifiers inside a
    concatenation lvalue or an index expression are fine — a rewritten
    ``{a, b[(i + 1)]} = rhs;`` still parses.
    """
    if target.node_id is None:
        return False
    parents = tree.parent_map()
    node: ast.Node = target
    while True:
        parent = parents.get(node.node_id or -1)
        if parent is None:
            return False
        if isinstance(
            parent, (ast.BlockingAssign, ast.NonBlockingAssign, ast.ContinuousAssign)
        ):
            return parent.lhs is node
        if isinstance(parent, (ast.Index, ast.PartSelect)) and parent.target is node:
            node = parent
            continue
        return False
