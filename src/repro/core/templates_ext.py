"""Extended repair templates (the paper's future-work direction).

Section 5.2 observes CirFix fails on defect classes its nine templates
cannot express — most explicitly the reed_solomon_decoder register-width
defect: "none of its operators or repair templates are capable of
increasing the number of bits allocated to the integer 500.  We note that
while adding more repair templates can help in such cases ...".

This module implements four such extension templates, disabled by default
(``RepairConfig.extended_templates``) so the core reproduction stays
faithful to the paper's template set:

=====================  ======================================================
Template               Rewrite
=====================  ======================================================
``swap_if_branches``   Exchange the then/else branches of an if-statement
``widen_register``     Double the width of a reg/wire declaration
``zero_assignment``    Duplicate an assignment with its RHS forced to zero
                       (targets the missing-reset defect class)
``negate_equality``    Flip ``==`` ↔ ``!=`` (and ``<`` ↔ ``>=``, etc.) in a
                       comparison
=====================  ======================================================
"""

from __future__ import annotations

from ..hdl import ast
from ..hdl.node_ids import number_nodes

EXTENDED_TEMPLATES: tuple[str, ...] = (
    "swap_if_branches",
    "widen_register",
    "zero_assignment",
    "negate_equality",
)

_COMPARISON_FLIP = {"==": "!=", "!=": "==", "<": ">=", ">=": "<", ">": "<=", "<=": ">"}


def applicable_extended(node: ast.Node) -> list[str]:
    """Extended templates that can rewrite ``node``."""
    names: list[str] = []
    if isinstance(node, ast.If) and node.else_stmt is not None:
        names.append("swap_if_branches")
    if isinstance(node, ast.Decl) and node.kind in ("reg", "wire") and node.msb is not None:
        names.append("widen_register")
    if isinstance(node, (ast.BlockingAssign, ast.NonBlockingAssign)):
        names.append("zero_assignment")
    if isinstance(node, ast.BinaryOp) and node.op in _COMPARISON_FLIP:
        names.append("negate_equality")
    return names


def extra_candidates(tree: ast.Source, fault_ids: set[int]) -> list[tuple[int, str]]:
    """Extension targets beyond the fault set itself.

    Declarations are never implicated by Algorithm 2 (they are neither
    assignments nor conditionals), so ``widen_register`` targets the
    declarations of identifiers *mentioned inside* implicated nodes.
    """
    fault_names: set[str] = set()
    for node in tree.walk():
        if node.node_id in fault_ids:
            for sub in node.walk():
                if isinstance(sub, ast.Identifier):
                    fault_names.add(sub.name)
    candidates: list[tuple[int, str]] = []
    for node in tree.walk():
        if (
            isinstance(node, ast.Decl)
            and node.name in fault_names
            and node.node_id is not None
            and "widen_register" in applicable_extended(node)
        ):
            candidates.append((node.node_id, "widen_register"))
    return candidates


def apply_extended(name: str, tree: ast.Source, target_id: int, fresh_start: int) -> bool:
    """Apply extended template ``name`` to ``target_id``; no-op when stale
    or inapplicable (same conventions as the core templates)."""
    target = tree.find(target_id)
    if target is None or name not in applicable_extended(target):
        return False
    if name == "swap_if_branches":
        assert isinstance(target, ast.If)
        target.then_stmt, target.else_stmt = target.else_stmt, target.then_stmt
        return True
    if name == "widen_register":
        assert isinstance(target, ast.Decl)
        return _widen(target, tree, fresh_start)
    if name == "zero_assignment":
        return _zero_assignment(target, tree, fresh_start)
    if name == "negate_equality":
        assert isinstance(target, ast.BinaryOp)
        target.op = _COMPARISON_FLIP[target.op]
        return True
    return False


def _widen(decl: ast.Decl, tree: ast.Source, fresh_start: int) -> bool:
    if not isinstance(decl.msb, ast.Number) or decl.msb.bval:
        return False
    old_width = decl.msb.aval + 1
    new_msb_value = old_width * 2 - 1
    new_msb = ast.Number(str(new_msb_value), None, new_msb_value, 0, signed=True)
    new_msb.node_id = fresh_start
    decl.msb = new_msb
    return True


def _zero_assignment(target: ast.Node, tree: ast.Source, fresh_start: int) -> bool:
    assert isinstance(target, (ast.BlockingAssign, ast.NonBlockingAssign))
    zero = ast.Number("0", None, 0, 0, signed=True)
    duplicate = type(target)(target.lhs.clone(), zero, None)
    number_nodes(duplicate, fresh_start)
    return tree.insert_after(target.node_id or -1, duplicate)
