"""Repair patch representation.

Following the paper (§3), each program variant is "a repair patch describing
a sequence of abstract syntax tree edits parameterized by unique node
numbers".  A :class:`Patch` is an ordered list of :class:`Edit` operations
applied to a pristine copy of the faulty design AST.

Stability rules that make genetic search work:

- Applying a patch never renumbers existing nodes — an edit created against
  one variant remains meaningful for its descendants.
- Nodes introduced by an edit (insertions, replacements) are numbered from a
  fresh-id pool above every id the base tree uses, deterministically per
  edit position, so two applications of the same patch produce identical
  trees.
- An edit whose target id no longer exists (deleted by an earlier edit, or
  inherited from the other crossover parent) is *stale* and silently skipped
  — the standard GenProg-family convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl import ast
from ..hdl.node_ids import max_node_id, number_nodes

#: Gap between fresh-id blocks so edits cannot collide.
_ID_BLOCK = 10_000


@dataclass(frozen=True)
class Edit:
    """One AST edit.

    ``kind`` is ``replace``, ``insert_after``, ``delete``, or ``template``.
    ``target_id`` addresses a node in the tree being edited.  ``payload``
    is the replacement/inserted subtree (already cloned, ids irrelevant —
    they are reassigned on application).  ``template`` names the repair
    template for ``kind='template'`` edits (applied via
    :mod:`repro.core.templates`).
    """

    kind: str
    target_id: int
    payload: ast.Node | None = None
    template: str | None = None

    def describe(self) -> str:
        """Short human-readable form, e.g. ``template[sens_posedge]@19``."""
        if self.kind == "template":
            return f"template[{self.template}]@{self.target_id}"
        return f"{self.kind}@{self.target_id}"


@dataclass
class Patch:
    """An ordered sequence of edits over a base design AST."""

    edits: list[Edit] = field(default_factory=list)

    @staticmethod
    def empty() -> "Patch":
        return Patch([])

    def extended(self, edit: Edit) -> "Patch":
        """A new patch with ``edit`` appended (patches are value-like)."""
        return Patch(self.edits + [edit])

    def __len__(self) -> int:
        return len(self.edits)

    def describe(self) -> str:
        """Human-readable edit list (``<original>`` for the empty patch)."""
        return "; ".join(e.describe() for e in self.edits) or "<original>"

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def apply(self, base: ast.Source) -> ast.Source:
        """Apply all edits to a clone of ``base`` and return it.

        Stale edits are skipped.  Raises nothing: a patch always yields a
        tree (whose code may still fail to parse/elaborate downstream).
        """
        from .templates import apply_template  # local import to avoid cycle

        tree = base.clone()
        base_max = max_node_id(base)
        for position, edit in enumerate(self.edits):
            fresh_start = base_max + (position + 1) * _ID_BLOCK
            target = tree.find(edit.target_id)
            if target is None:
                continue  # stale edit
            if edit.kind == "delete":
                _delete_node(tree, edit.target_id)
            elif edit.kind == "replace":
                if edit.payload is None:
                    continue
                replacement = edit.payload.clone()
                number_nodes(replacement, fresh_start)
                tree.replace(edit.target_id, replacement)
            elif edit.kind == "insert_after":
                if edit.payload is None:
                    continue
                inserted = edit.payload.clone()
                number_nodes(inserted, fresh_start)
                tree.insert_after(edit.target_id, inserted)
            elif edit.kind == "template":
                if edit.template is None:
                    continue
                apply_template(edit.template, tree, edit.target_id, fresh_start)
            else:
                raise ValueError(f"unknown edit kind {edit.kind!r}")
        return tree

    def subset(self, keep: list[int]) -> "Patch":
        """Patch with only the edits at the given indices (for ddmin)."""
        return Patch([self.edits[i] for i in keep])


def _delete_node(tree: ast.Source, target_id: int) -> None:
    """Delete a node: statements become null statements (the paper's
    "replaces it with an empty node"); list members are removed outright
    when a null statement is not meaningful there."""
    target = tree.find(target_id)
    if target is None:
        return
    if isinstance(target, ast.Stmt):
        replacement = ast.NullStmt()
        replacement.node_id = None
        tree.replace(target_id, replacement)
    else:
        tree.replace(target_id, None)
