"""Repair minimization via delta debugging (paper §3.7).

After the GP loop finds a plausible repair, extraneous edits (those not
needed to keep the fitness at 1.0) are removed by computing a *one-minimal*
subset of the patch's edit list with the ddmin algorithm — polynomial-time,
following the norm set by APR for software.

The same reduction also powers the fuzz harness (:mod:`repro.fuzz.shrink`),
which delta-reduces a generator decision trace instead of a patch edit
list, so the core loop lives in the generic :func:`ddmin`.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from .patch import Patch

T = TypeVar("T")


def ddmin(
    items: Sequence[T],
    still_failing: Callable[[list[T]], bool],
    max_tests: int = 512,
) -> list[T]:
    """One-minimal subsequence of ``items`` that still satisfies the oracle.

    ``still_failing`` receives a candidate subsequence (original order
    preserved) and reports whether it still exhibits the property of
    interest — plausibility for patch minimization, "still violates the
    same oracle" for fuzz shrinking.  The full sequence is assumed to
    satisfy it; the empty sequence is never proposed.

    Runs the classic ddmin reduction followed by a greedy single-drop
    sweep, both sharing the ``max_tests`` budget.  With budget to spare
    the result is 1-minimal; otherwise it is the best reduction found.
    """
    current = list(items)
    if not current:
        return current
    tests = 0

    def check(keep: list[T]) -> bool:
        nonlocal tests
        tests += 1
        return still_failing(keep)

    granularity = 2
    while len(current) >= 2 and tests < max_tests:
        chunk = max(1, len(current) // granularity)
        subsets = [current[i : i + chunk] for i in range(0, len(current), chunk)]
        reduced = False
        # Try each subset alone.
        for subset in subsets:
            if tests >= max_tests:
                break
            if check(subset):
                current = subset
                granularity = 2
                reduced = True
                break
        if reduced:
            continue
        # Try each complement.
        if len(subsets) > 2:
            for subset in subsets:
                if tests >= max_tests:
                    break
                complement = [i for i in current if i not in subset]
                if complement and check(complement):
                    current = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if reduced:
            continue
        if granularity >= len(current):
            break
        granularity = min(len(current), granularity * 2)
    # ddmin guarantees 1-minimality only at full granularity; do one last
    # greedy sweep to be safe within budget.
    changed = True
    while changed and tests < max_tests:
        changed = False
        for drop in range(len(current)):
            keep = current[:drop] + current[drop + 1 :]
            if keep and check(keep):
                current = keep
                changed = True
                break
    return current


def minimize_patch(
    patch: Patch,
    is_plausible: Callable[[Patch], bool],
    max_tests: int = 512,
) -> Patch:
    """Return a one-minimal sub-patch that is still plausible.

    Args:
        patch: A plausible repair (``is_plausible(patch)`` must hold).
        is_plausible: Oracle — typically "fitness == 1.0 under the
            instrumented testbench".
        max_tests: Budget on oracle invocations (simulations are the
            dominant cost; the paper reports >90% of wall-clock time goes
            to fitness evaluations).

    Returns:
        A patch whose edit list is a subset of the input's, from which no
        single edit can be removed without losing plausibility (when the
        budget suffices; otherwise the best reduction found so far).
    """
    indices = list(range(len(patch.edits)))
    if not indices:
        return patch
    kept = ddmin(indices, lambda keep: is_plausible(patch.subset(keep)), max_tests)
    return patch.subset(kept)
