"""The CirFix repair engine (paper §3, Algorithm 1).

Genetic-programming search over repair patches:

1. seed a population of empty patches (copies of the faulty design);
2. each reproduction step selects a parent by tournament, re-runs fault
   localization on *that parent's* own simulation trace (the paper
   re-localizes per variant to support dependent multi-edit repairs), and
   produces children via a repair template (probability ``rtThreshold``),
   mutation (``mutThreshold``), or single-point crossover;
3. stop when a candidate reaches fitness 1.0 (plausible repair) or
   resources run out; minimize the winning patch with delta debugging.

Every candidate evaluation regenerates Verilog source from the patched AST,
reparses the design, splices in the pre-parsed testbench, elaborates, and
simulates — mirroring the original pipeline (PyVerilog codegen → VCS
simulation), with our own frontend and simulator standing in for both.

The engine runs **generate-then-evaluate-batch**: each generation's
children are produced first (selection uses the previous generation's
already-known fitnesses, preserving Algorithm 1), then the whole batch is
scored through an :class:`~repro.core.backend.EvaluationBackend` — serially
by default, or on a persistent process pool with ``config.workers > 1``.
Work is assigned in child-index order so outcomes are seed-deterministic
regardless of backend (see ``docs/repair_engine.md``).

The engine-neutral machinery (candidate evaluation, lint gate, batched
backend scoring, localization, minimization, outcome assembly) lives in
:mod:`repro.core.harness`; this module holds only the GP search loop.
``Evaluation``, ``RepairOutcome``, ``RepairProblem``, and
``adaptive_chunk_size`` are re-exported here for compatibility.
"""

from __future__ import annotations

import contextlib
import hashlib
import logging
import random
import time as time_mod
from typing import Any, Callable, Sequence

from ..hdl import generate
from ..obs.events import PlausiblePatchFound, TrialStarted
from ..obs.observer import ObserverSet, RepairObserver
from .backend import BACKEND_NAMES, EvaluationBackend, make_backend
from .config import RepairConfig
from .harness import (  # noqa: F401  (re-exported for compatibility)
    EngineHarness,
    Evaluation,
    RepairOutcome,
    RepairProblem,
    adaptive_chunk_size,
)
from .operators import apply_fix_pattern, crossover, mutate
from .patch import Patch
from .selection import elite, tournament_select

#: Engine progress log (the artifact's ``repair_logs``): enable with
#: ``logging.getLogger("repro.repair").setLevel(logging.INFO)``.
logger = logging.getLogger("repro.repair")


class CirFixEngine(EngineHarness):
    """Runs Algorithm 1 for one defect scenario and one random seed.

    Candidate batches are scored through an
    :class:`~repro.core.backend.EvaluationBackend`; pass one to share a
    worker pool across trials, or leave it ``None`` to let the engine
    build (and own) the backend selected by ``config``.
    """

    engine_name = "cirfix"

    def __init__(
        self,
        problem: RepairProblem,
        config: RepairConfig | None = None,
        seed: int = 0,
        backend: EvaluationBackend | None = None,
        observers: Sequence[RepairObserver] | None = None,
        cancel: Callable[[], bool] | None = None,
        checkpoint: "Callable[[dict[str, Any]], None] | None" = None,
    ):
        super().__init__(
            problem, config, seed, backend=backend, observers=observers,
            cancel=cancel, checkpoint=checkpoint,
        )
        self.rng = random.Random(seed)
        #: How often each reproduction path ran (diagnostics).
        self.operator_stats = {"template": 0, "mutation": 0, "crossover": 0}

    def _rng_digest(self) -> str:
        """Stable digest of the GP random stream's current position."""
        return hashlib.sha256(
            repr(self.rng.getstate()).encode()
        ).hexdigest()[:16]

    # ------------------------------------------------------------------
    # Main loop (Algorithm 1)
    # ------------------------------------------------------------------

    def _run(self) -> RepairOutcome:
        config = self.config
        start = time_mod.monotonic()
        deadline = start + config.max_wall_seconds
        if self.events:
            self.events.emit(
                TrialStarted(
                    scenario=self.problem.name,
                    seed=self.seed,
                    backend=config.backend,
                    workers=config.workers,
                    population_size=config.population_size,
                    max_generations=config.max_generations,
                )
            )

        out_of_budget = self._budget_probe(deadline)

        original = Patch.empty()
        original_eval = self.evaluate(original)
        original._fitness = original_eval.fitness  # type: ignore[attr-defined]
        history = [original_eval.fitness]
        logger.info(
            "[%s seed=%d] start: fitness=%.4f popsize=%d",
            self.problem.name, self.seed, original_eval.fitness, config.population_size,
        )
        if original_eval.is_plausible:
            # Nothing to repair (shouldn't happen for real defect scenarios).
            return self._finish(original, original_eval, 0, start, history)

        def fitness_of(patch: Patch) -> float:
            # Memoised on the patch object itself (ids are recycled by the
            # allocator, so an id-keyed dict would alias dead patches).
            cached = getattr(patch, "_fitness", None)
            if cached is None:
                cached = self.evaluate(patch).fitness
                patch._fitness = cached  # type: ignore[attr-defined]
            return cached

        best_patch, best_fitness = original, original_eval.fitness
        generations = 0
        winner: Patch | None = None

        # seed_popn (Algorithm 1 line 1): the original plus single-edit
        # variants localized against the original's own fault set — the
        # GenProg-family convention, which keeps generation 0 diverse.
        # Children are generated first, then the whole batch is scored
        # through the backend in child-index order.
        population: list[Patch] = [original]
        seed_variant = self.variant_tree(original)
        seed_faults = self.fault_localization(original, seed_variant)
        seedlings: list[Patch] = []
        while len(population) + len(seedlings) < config.population_size and not out_of_budget():
            if self.rng.random() <= config.rt_threshold:
                self.operator_stats["template"] += 1
                seedling = apply_fix_pattern(
                    original, seed_variant, seed_faults, self.rng,
                    extended=config.extended_templates,
                )
            else:
                self.operator_stats["mutation"] += 1
                seedling = mutate(
                    original,
                    seed_variant,
                    seed_faults,
                    self.rng,
                    config.delete_threshold,
                    config.insert_threshold,
                )
            seedlings.append(seedling)
        population.extend(seedlings)
        for seedling, evaluation in zip(
            seedlings, self._evaluate_generation(seedlings, out_of_budget)
        ):
            if evaluation is None:
                continue  # early stop: budget exhausted or winner already seen
            seedling._fitness = evaluation.fitness  # type: ignore[attr-defined]
            if evaluation.fitness > best_fitness:
                best_fitness, best_patch = evaluation.fitness, seedling
            if evaluation.fitness >= 1.0:
                winner = seedling
                break
        history.append(best_fitness)
        if self.events:
            self.events.emit(self._generation_event(0, population, best_fitness))
        self._save_checkpoint(0, best_fitness)

        while generations < config.max_generations and winner is None and not out_of_budget():
            generations += 1
            children: list[Patch] = elite(
                population, fitness_of, config.elitism_fraction
            )
            # Generate the full generation first: tournament selection and
            # re-localization only consult the previous population's known
            # fitnesses, so deferring evaluation preserves Algorithm 1.
            offspring: list[Patch] = []
            while len(children) + len(offspring) < config.population_size and not out_of_budget():
                parent = tournament_select(
                    population, fitness_of, self.rng, config.tournament_size
                )
                variant = self.variant_tree(parent)
                fault_ids = self.fault_localization(parent, variant)
                if self.rng.random() <= config.rt_threshold:
                    self.operator_stats["template"] += 1
                    child = apply_fix_pattern(
                        parent, variant, fault_ids, self.rng,
                        extended=config.extended_templates,
                    )
                    new_children = [child]
                elif self.rng.random() <= config.mut_threshold:
                    self.operator_stats["mutation"] += 1
                    child = mutate(
                        parent,
                        variant,
                        fault_ids,
                        self.rng,
                        config.delete_threshold,
                        config.insert_threshold,
                    )
                    new_children = [child]
                else:
                    self.operator_stats["crossover"] += 1
                    parent2 = tournament_select(
                        population, fitness_of, self.rng, config.tournament_size
                    )
                    child1, child2 = crossover(parent, parent2, self.rng)
                    new_children = [child1, child2]
                offspring.extend(new_children)
            children.extend(offspring)
            for child, evaluation in zip(
                offspring, self._evaluate_generation(offspring, out_of_budget)
            ):
                if evaluation is None:
                    continue  # early stop: budget exhausted or winner already seen
                child._fitness = evaluation.fitness  # type: ignore[attr-defined]
                if evaluation.fitness > best_fitness:
                    best_fitness, best_patch = evaluation.fitness, child
                if evaluation.fitness >= 1.0:
                    winner = child
                    break
            population = children or population
            history.append(best_fitness)
            if self.events:
                self.events.emit(
                    self._generation_event(generations, population, best_fitness)
                )
            self._save_checkpoint(generations, best_fitness)
            logger.info(
                "[%s seed=%d] gen %d: best=%.4f sims=%d best_patch=%s",
                self.problem.name, self.seed, generations, best_fitness,
                self.simulations, best_patch.describe()[:80],
            )

        final_patch = winner if winner is not None else best_patch
        final_eval = self.evaluate(final_patch)
        if winner is not None:
            if self.events:
                self.events.emit(
                    PlausiblePatchFound(
                        generation=generations,
                        fitness=final_eval.fitness,
                        edits=len(final_patch),
                    )
                )
            logger.info(
                "[%s seed=%d] plausible repair found (%d edits); minimizing",
                self.problem.name, self.seed, len(final_patch),
            )
            final_patch = self._minimize(final_patch)
            final_eval = self.evaluate(final_patch)
            logger.info(
                "[%s seed=%d] minimized to %d edits: %s",
                self.problem.name, self.seed, len(final_patch), final_patch.describe(),
            )
        return self._finish(final_patch, final_eval, generations, start, history)


def repair(
    problem: RepairProblem,
    config: RepairConfig | None = None,
    seeds: tuple[int, ...] = (0,),
    backend: EvaluationBackend | None = None,
    observers: Sequence[RepairObserver] | None = None,
    cancel: Callable[[], bool] | None = None,
    checkpoint: "Callable[[dict[str, Any]], None] | None" = None,
) -> RepairOutcome:
    """Run independent trials (paper: 5 per scenario) and return the first
    plausible outcome, or the best-fitness outcome if none succeeds.

    With ``config.workers > 1`` and several seeds, the trials themselves
    fan out over a process pool (each trial evaluating serially inside its
    worker); with a single seed the one trial parallelises its candidate
    evaluations instead.  Either way the outcome is the one the serial
    sweep would have returned: the lowest plausible seed wins, falling
    back to the earliest best-fitness trial.

    ``observers`` (repro.obs) see the full event stream of every trial
    run in this process.  With observers attached, multi-seed runs stay
    in-process sharing one evaluation backend — candidate evaluations
    still fan out over the pool, but trials are not shipped to workers
    (observers are generally not picklable, and a complete trace beats a
    marginally faster sweep when telemetry was requested).

    ``cancel`` is a cooperative cancellation probe (the service daemon
    passes one): trials poll it alongside their budget checks, a
    cancelled sweep stops after the current chunk, and later seeds are
    never started.  Like observers, a cancel probe keeps multi-seed runs
    in-process (closures do not cross the trial pool's pickle boundary).

    ``checkpoint`` (repair-as-a-service crash recovery) receives the
    deterministic cursor snapshot at every generation boundary; like
    observers and cancel probes it keeps multi-seed sweeps in-process —
    snapshots carry the trial's seed, so a sweep journals whichever
    trial is currently running.
    """
    config = config or RepairConfig()
    events = observers if isinstance(observers, ObserverSet) else ObserverSet(observers)
    if config.backend not in BACKEND_NAMES:
        # Fail in the caller's process, not inside a pickled trial worker.
        raise ValueError(
            f"unknown evaluation backend {config.backend!r}; "
            f"valid backends: {', '.join(BACKEND_NAMES)}"
        )
    workers = max(1, config.workers)
    if (
        backend is None and workers > 1 and len(seeds) > 1
        and not events and cancel is None and checkpoint is None
    ):
        outcome = _repair_parallel_trials(problem, config, seeds, workers)
        if outcome is not None:
            return outcome
        # Pool unavailable on this host: fall through to the serial sweep.
    scope: contextlib.AbstractContextManager
    if backend is None:
        backend = make_backend(problem, config)
        scope = backend  # backends are context managers; exit closes
    else:
        scope = contextlib.nullcontext()  # caller owns the backend
    with scope:
        best: RepairOutcome | None = None
        for seed in seeds:
            if best is not None and cancel is not None and cancel():
                break  # cancelled between trials: stop the sweep early
            outcome = CirFixEngine(
                problem, config, seed, backend=backend, observers=events,
                cancel=cancel, checkpoint=checkpoint,
            ).run()
            if outcome.plausible:
                return outcome
            if best is None or outcome.fitness > best.fitness:
                best = outcome
        assert best is not None
        return best


def _trial_payload(problem: RepairProblem, config: RepairConfig, seed: int) -> tuple:
    """Pickle-friendly description of one trial (texts, not ASTs)."""
    return (
        generate(problem.design),
        problem.testbench_text,
        problem.oracle,
        problem.name,
        config,
        seed,
    )


def _run_trial(payload: tuple) -> RepairOutcome:
    """Worker-side entry: rebuild the problem from texts and run one trial."""
    design_text, testbench_text, oracle, name, config, seed = payload
    problem = RepairProblem.from_text(design_text, testbench_text, oracle, name)
    return CirFixEngine(problem, config, seed).run()


def _repair_parallel_trials(
    problem: RepairProblem,
    config: RepairConfig,
    seeds: tuple[int, ...],
    workers: int,
) -> RepairOutcome | None:
    """Fan independent trials out over a process pool.

    Trials are consumed in seed order, so the returned outcome matches the
    serial sweep exactly; trailing trials are terminated as soon as an
    earlier seed produces a plausible repair.  Returns ``None`` when the
    host cannot start worker processes (caller falls back to serial).
    """
    from .backend import _mp_context  # single source of truth for the context

    trial_config = config.scaled(workers=1)
    payloads = [_trial_payload(problem, trial_config, seed) for seed in seeds]
    try:
        pool = _mp_context().Pool(processes=min(workers, len(seeds)))
    except (OSError, ValueError, ImportError) as exc:
        logger.warning("trial pool unavailable (%s); running trials serially", exc)
        return None
    best: RepairOutcome | None = None
    try:
        for outcome in pool.imap(_run_trial, payloads):
            if outcome.plausible:
                return outcome
            if best is None or outcome.fitness > best.fitness:
                best = outcome
    finally:
        pool.terminate()
        pool.join()
    assert best is not None
    return best
