"""The CirFix repair engine (paper §3, Algorithm 1).

Genetic-programming search over repair patches:

1. seed a population of empty patches (copies of the faulty design);
2. each reproduction step selects a parent by tournament, re-runs fault
   localization on *that parent's* own simulation trace (the paper
   re-localizes per variant to support dependent multi-edit repairs), and
   produces children via a repair template (probability ``rtThreshold``),
   mutation (``mutThreshold``), or single-point crossover;
3. stop when a candidate reaches fitness 1.0 (plausible repair) or
   resources run out; minimize the winning patch with delta debugging.

Every candidate evaluation regenerates Verilog source from the patched AST,
reparses the design, splices in the pre-parsed testbench, elaborates, and
simulates — mirroring the original pipeline (PyVerilog codegen → VCS
simulation), with our own frontend and simulator standing in for both.

The engine runs **generate-then-evaluate-batch**: each generation's
children are produced first (selection uses the previous generation's
already-known fitnesses, preserving Algorithm 1), then the whole batch is
scored through an :class:`~repro.core.backend.EvaluationBackend` — serially
by default, or on a persistent process pool with ``config.workers > 1``.
Work is assigned in child-index order so outcomes are seed-deterministic
regardless of backend (see ``docs/repair_engine.md``).
"""

from __future__ import annotations

import contextlib
import logging
import random
import time as time_mod
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..hdl import ast, generate, parse
from ..instrument.trace import SimulationTrace, output_mismatch
from ..lint.engine import lint_tree, new_violations
from ..lint.rules import resolve_rules
from ..obs.events import (
    BackendChunkCompleted,
    BackendChunkDispatched,
    CandidateEvaluated,
    CandidatePruned,
    CandidateTimedOut,
    ChunkRetried,
    GenerationCompleted,
    PhaseCompleted,
    PlausiblePatchFound,
    TrialCompleted,
    TrialStarted,
    WorkerCrashed,
)
from ..obs.observer import ObserverSet, RepairObserver
from .backend import (
    BACKEND_NAMES,
    CandidateResult,
    EvaluationBackend,
    evaluate_design_text,
    make_backend,
)
from .config import RepairConfig
from .faultloc import all_statement_ids, localize_faults
from .fitness import FitnessBreakdown
from .minimize import minimize_patch
from .operators import apply_fix_pattern, crossover, mutate
from .patch import Patch
from .selection import elite, tournament_select

#: Engine progress log (the artifact's ``repair_logs``): enable with
#: ``logging.getLogger("repro.repair").setLevel(logging.INFO)``.
logger = logging.getLogger("repro.repair")


@dataclass
class Evaluation:
    """Result of evaluating one candidate design.

    The per-engine cache keeps fitness/compile status for every candidate
    but holds full traces only in a small LRU — traces of long-running
    benchmarks are large, and only tournament-selected parents need theirs
    again (for re-localization).
    """

    fitness: float
    breakdown: FitnessBreakdown | None
    trace: SimulationTrace | None
    compiled: bool
    source_text: str

    @property
    def is_plausible(self) -> bool:
        return self.fitness >= 1.0

    def light_copy(self) -> "Evaluation":
        """The cacheable version without the trace payload."""
        return Evaluation(self.fitness, self.breakdown, None, self.compiled, self.source_text)


@dataclass
class RepairOutcome:
    """Result of one CirFix trial."""

    plausible: bool
    patch: Patch
    fitness: float
    repaired_source: str | None
    generations: int
    fitness_evals: int
    simulations: int
    elapsed_seconds: float
    best_fitness_history: list[float] = field(default_factory=list)
    seed: int = 0
    #: Unique candidate evaluations — the deterministic budget counter
    #: (identical across backends, unlike ``simulations``).
    eval_sims: int = 0
    #: Unique candidates the lint gate rejected before simulation
    #: (0 when ``config.lint_gate`` is off).
    pruned: int = 0
    #: Candidates the supervised pool quarantined after exhausting their
    #: retries (0 on healthy runs and on the serial backend).
    quarantined: int = 0

    def describe(self) -> str:
        """One-line summary for logs and CLI output."""
        status = "PLAUSIBLE" if self.plausible else "no repair"
        return (
            f"{status}: fitness={self.fitness:.3f} edits={len(self.patch)} "
            f"gens={self.generations} sims={self.simulations} "
            f"t={self.elapsed_seconds:.1f}s"
        )


class RepairProblem:
    """A defect scenario packaged for the engine.

    Attributes:
        design: Faulty design AST (the modules CirFix may edit).
        testbench: Instrumented testbench AST (never edited).
        oracle: Expected-behaviour trace from the golden design.
    """

    def __init__(
        self,
        design: ast.Source,
        testbench: ast.Source,
        oracle: SimulationTrace,
        name: str = "scenario",
    ):
        self.design = design
        self.testbench = testbench
        self.oracle = oracle
        self.name = name
        self.testbench_text = generate(testbench)

    @staticmethod
    def from_text(
        faulty_design: str,
        testbench: str,
        oracle: SimulationTrace,
        name: str = "scenario",
    ) -> "RepairProblem":
        return RepairProblem(parse(faulty_design), parse(testbench), oracle, name)


def adaptive_chunk_size(batch: int, eval_chunk_size: int) -> int:
    """The chunk size to dispatch a ``batch`` of pending candidates with.

    ``eval_chunk_size`` is the *granularity floor*, not a fixed size: a
    batch that is not an exact multiple would otherwise end in a runt
    chunk (e.g. 25 pending at size 8 → 8+8+8+1), paying a full dispatch
    round-trip — and, on the pool backend, idling most workers — for a
    single candidate.  Instead the batch is split into
    ``batch // eval_chunk_size`` near-equal chunks (25 → 9+9+7).

    Deterministic in the batch size and configuration alone — NEVER the
    worker count or backend — so the chunk schedule (and with it the
    event sequence and early-stop points) stays bit-identical across
    backends, preserving the engine's determinism guarantee.
    """
    base = max(1, eval_chunk_size)
    if batch <= base:
        return base
    chunks = max(1, batch // base)
    return -(-batch // chunks)


class CirFixEngine:
    """Runs Algorithm 1 for one defect scenario and one random seed.

    Candidate batches are scored through an
    :class:`~repro.core.backend.EvaluationBackend`; pass one to share a
    worker pool across trials, or leave it ``None`` to let the engine
    build (and own) the backend selected by ``config``.
    """

    def __init__(
        self,
        problem: RepairProblem,
        config: RepairConfig | None = None,
        seed: int = 0,
        backend: EvaluationBackend | None = None,
        observers: Sequence[RepairObserver] | None = None,
        cancel: Callable[[], bool] | None = None,
    ):
        self.problem = problem
        self.config = config or RepairConfig()
        self.seed = seed
        self.rng = random.Random(seed)
        #: Cooperative cancellation probe (repair-as-a-service): checked
        #: wherever the budget is, so a cancelled trial stops at the next
        #: chunk boundary and returns its best-so-far outcome.  None (the
        #: default) keeps every cancellation branch dead.
        self._cancel = cancel
        #: Telemetry fan-out (repro.obs).  Falsy when no observers are
        #: attached, so every emit site costs one branch on unobserved
        #: runs; observers only ever read already-computed values, which
        #: is what keeps outcomes bit-identical with or without them.
        self.events = (
            observers
            if isinstance(observers, ObserverSet)
            else ObserverSet(observers)
        )
        self._backend = backend
        self._owns_backend = False
        self._cache: dict[str, Evaluation] = {}
        self._trace_cache: OrderedDict[str, SimulationTrace] = OrderedDict()
        self._trace_cache_limit = 48
        self.simulations = 0
        self.fitness_evals = 0
        #: Deterministic count of unique candidate evaluations.  Unlike
        #: ``simulations`` it excludes trace-refresh re-simulations (whose
        #: number depends on the backend's trace availability), so budget
        #: decisions keyed on it are identical under every backend.
        self.eval_sims = 0
        #: Compile statistics for the fix-localization ablation (§3.6).
        self.mutants_generated = 0
        self.mutants_compile_failed = 0
        #: How often each reproduction path ran (diagnostics).
        self.operator_stats = {"template": 0, "mutation": 0, "crossover": 0}
        #: Wall-clock seconds spent inside candidate evaluation (codegen +
        #: parse + simulate + fitness) — the paper reports >90% of repair
        #: time goes to fitness evaluations.
        self.evaluation_seconds = 0.0
        #: Per-phase wall-clock (repro.obs): ``parse`` is the frontend
        #: sub-span of ``evaluation``; ``localization`` and
        #: ``minimization`` exclude the evaluations they trigger, so the
        #: three top-level phases partition the trial's accounted time.
        self.phase_seconds: dict[str, float] = {
            "parse": 0.0,
            "localization": 0.0,
            "evaluation": 0.0,
            "minimization": 0.0,
        }
        #: Monotonic id for backend chunk events.
        self._chunk_counter = 0
        #: Lint gate (docs/lint.md): with ``config.lint_gate`` on, a
        #: candidate whose lint profile adds findings under these rules
        #: over the buggy baseline is rejected before simulation.  The
        #: empty tuple (gate off) keeps every gate branch dead, so
        #: outcomes are bit-identical to the ungated engine.
        self._gate_rules = (
            resolve_rules(self.config.lint_gate_rules)
            if self.config.lint_gate
            else ()
        )
        self._gate_rules_spec = ",".join(rule.code for rule in self._gate_rules)
        self._gate_baseline: dict[str, int] | None = None
        #: Unique candidates the gate rejected / per-rule breakdown.
        self.candidates_pruned = 0
        self.pruned_by_rule: dict[str, int] = {}
        #: Candidates the supervised pool quarantined / per-kind breakdown
        #: (see ``docs/repair_engine.md``, "Fault tolerance").
        self.candidates_quarantined = 0
        self.quarantined_by_kind: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Candidate evaluation
    # ------------------------------------------------------------------

    def variant_tree(self, patch: Patch) -> ast.Source:
        """The faulty design with ``patch`` applied (ids stable)."""
        return patch.apply(self.problem.design)

    def evaluate(self, patch: Patch) -> Evaluation:
        """Codegen → parse → simulate → fitness, with memoisation."""
        self.fitness_evals += 1
        try:
            tree = self.variant_tree(patch)
            design_text = generate(tree)
        except Exception:
            return Evaluation(0.0, None, None, False, "")
        cached = self._cache.get(design_text)
        if cached is not None:
            if cached.trace is None and design_text in self._trace_cache:
                self._trace_cache.move_to_end(design_text)
                return Evaluation(
                    cached.fitness,
                    cached.breakdown,
                    self._trace_cache[design_text],
                    cached.compiled,
                    cached.source_text,
                )
            return cached
        if self._gate_rules:
            added = self._gate_added(tree)
            if added:
                return self._prune(design_text, added)
        self.eval_sims += 1
        result = self._score_text(design_text)
        if self.events:
            self._emit_candidate(result)
        evaluation = Evaluation(
            result.fitness, result.breakdown, result.trace, result.compiled, design_text
        )
        self._admit(design_text, evaluation)
        return evaluation

    # ------------------------------------------------------------------
    # Lint gate (docs/lint.md)
    # ------------------------------------------------------------------

    def _gate_baseline_profile(self) -> dict[str, int]:
        """Gated-rule lint profile of the buggy design (computed once)."""
        if self._gate_baseline is None:
            self._gate_baseline = lint_tree(
                self.problem.design, self._gate_rules
            ).profile()
        return self._gate_baseline

    def _gate_added(self, tree: ast.Source) -> dict[str, int]:
        """Gated violations ``tree`` adds over the baseline (empty = pass).

        Lint failures never block evaluation: a candidate the analyser
        cannot process goes to the simulator like any other, so the gate
        can only ever skip work, not change which designs are reachable.
        """
        try:
            profile = lint_tree(tree, self._gate_rules).profile()
        except Exception:
            return {}
        return new_violations(profile, self._gate_baseline_profile())

    def _prune(self, design_text: str, added: dict[str, int]) -> Evaluation:
        """Reject one unique candidate before simulation.

        The pruned evaluation (fitness 0, no trace) is cached like any
        other, so duplicates of a pruned design are ordinary cache hits;
        ``eval_sims`` never ticks — pruning is free simulation budget.
        """
        self.candidates_pruned += 1
        for code in added:
            self.pruned_by_rule[code] = self.pruned_by_rule.get(code, 0) + 1
        if self.events:
            self.events.emit(
                CandidatePruned(
                    new_violations=dict(added), rules=self._gate_rules_spec
                )
            )
        evaluation = Evaluation(0.0, None, None, False, design_text)
        self._admit(design_text, evaluation)
        return evaluation

    def _admit(self, design_text: str, evaluation: Evaluation) -> None:
        """Record an evaluation in the fitness cache and the trace LRU."""
        self._cache[design_text] = evaluation.light_copy()
        if evaluation.trace is not None:
            self._trace_cache[design_text] = evaluation.trace
            while len(self._trace_cache) > self._trace_cache_limit:
                self._trace_cache.popitem(last=False)

    def _score_text(self, design_text: str) -> CandidateResult:
        """Run the evaluation pipeline in-process, updating counters."""
        started = time_mod.monotonic()
        self.simulations += 1
        self.mutants_generated += 1
        result = evaluate_design_text(
            design_text, self.problem.testbench, self.problem.oracle, self.config
        )
        if not result.compiled:
            self.mutants_compile_failed += 1
        elapsed = time_mod.monotonic() - started
        self.evaluation_seconds += elapsed
        self.phase_seconds["evaluation"] += elapsed
        self.phase_seconds["parse"] += result.parse_seconds
        return result

    def _evaluate_source(self, design_text: str) -> Evaluation:
        """In-process evaluation without telemetry emission.

        Used for backend-dependent re-simulations (trace refresh in
        :meth:`fault_localization`): those must stay invisible to
        observers so the event sequence is identical on every backend.
        """
        result = self._score_text(design_text)
        return Evaluation(
            result.fitness, result.breakdown, result.trace, result.compiled, design_text
        )

    def _emit_candidate(self, result: CandidateResult) -> None:
        """Emit the CandidateEvaluated event for one unique evaluation."""
        self.events.emit(
            CandidateEvaluated(
                fitness=result.fitness,
                compiled=result.compiled,
                wall_seconds=result.eval_seconds,
                sim_events=result.sim_events,
                sim_steps=result.sim_steps,
            )
        )

    # ------------------------------------------------------------------
    # Batched evaluation (generate-then-evaluate)
    # ------------------------------------------------------------------

    def _ensure_backend(self) -> EvaluationBackend:
        """The engine's backend, building (and owning) one on first use."""
        if self._backend is None:
            self._backend = make_backend(self.problem, self.config)
            self._owns_backend = True
        return self._backend

    def _release_backend(self) -> None:
        """Close the backend if this engine created it."""
        if self._owns_backend and self._backend is not None:
            self._backend.close()
            self._backend = None
            self._owns_backend = False

    def _evaluate_generation(self, patches, out_of_budget) -> list[Evaluation | None]:
        """Score a whole generation's patches through the backend.

        Returns evaluations aligned with ``patches``.  Unique uncached
        design texts are submitted in first-occurrence (child-index) order
        in near-equal chunks sized by :func:`adaptive_chunk_size` (with
        ``config.eval_chunk_size`` as the granularity floor); between chunks
        the engine checks the budget and whether a plausible candidate has
        already appeared, and stops early if so.  Entries that were never
        evaluated because of an early stop are ``None`` — callers only see
        them when the search is about to terminate anyway.  The chunk
        schedule is independent of the backend and worker count, which is
        what makes outcomes bit-identical across backends.
        """
        results: list[Evaluation | None] = [None] * len(patches)
        pending: list[str] = []
        indices_for_text: dict[str, list[int]] = {}
        for i, patch in enumerate(patches):
            self.fitness_evals += 1
            try:
                tree = self.variant_tree(patch)
                text = generate(tree)
            except Exception:
                results[i] = Evaluation(0.0, None, None, False, "")
                continue
            cached = self._cache.get(text)
            if cached is not None:
                results[i] = cached
                continue
            if self._gate_rules:
                added = self._gate_added(tree)
                if added:
                    # Pruned engine-side before chunking, so the prune
                    # schedule (and its events) is backend-independent.
                    results[i] = self._prune(text, added)
                    continue
            slots = indices_for_text.setdefault(text, [])
            if not slots:
                pending.append(text)
            slots.append(i)
        backend = self._ensure_backend()
        chunk_size = adaptive_chunk_size(len(pending), self.config.eval_chunk_size)
        found_winner = False
        for start in range(0, len(pending), chunk_size):
            if found_winner or out_of_budget():
                break
            chunk = pending[start : start + chunk_size]
            chunk_id = self._chunk_counter
            self._chunk_counter += 1
            if self.events:
                self.events.emit(
                    BackendChunkDispatched(
                        chunk=chunk_id, size=len(chunk), chunk_size=chunk_size
                    )
                )
            started = time_mod.monotonic()
            chunk_results = backend.evaluate_batch(chunk)
            chunk_seconds = time_mod.monotonic() - started
            self.evaluation_seconds += chunk_seconds
            self.phase_seconds["evaluation"] += chunk_seconds
            if self.events:
                self.events.emit(
                    BackendChunkCompleted(
                        chunk=chunk_id, size=len(chunk), wall_seconds=chunk_seconds
                    )
                )
            self._note_incidents(chunk_id, backend)
            for text, result in zip(chunk, chunk_results):
                self.simulations += 1
                self.eval_sims += 1
                self.mutants_generated += 1
                if result.failure is not None:
                    # Quarantined by the supervisor — not a compile
                    # verdict, so keep it out of the compile-failure
                    # ablation statistics.
                    self.candidates_quarantined += 1
                    self.quarantined_by_kind[result.failure.kind] = (
                        self.quarantined_by_kind.get(result.failure.kind, 0) + 1
                    )
                elif not result.compiled:
                    self.mutants_compile_failed += 1
                self.phase_seconds["parse"] += result.parse_seconds
                if self.events:
                    self._emit_candidate(result)
                evaluation = Evaluation(
                    result.fitness, result.breakdown, result.trace, result.compiled, text
                )
                self._admit(text, evaluation)
                for index in indices_for_text[text]:
                    results[index] = evaluation
                if evaluation.fitness >= 1.0:
                    found_winner = True
        return results

    def _note_incidents(self, chunk_id: int, backend: EvaluationBackend) -> None:
        """Drain supervision incidents for one chunk into events.

        Healthy runs never have incidents, so this is a no-op on the
        deterministic schedule — golden event sequences are untouched.
        Quarantine *counters* are tallied from the results themselves
        (which also covers externally-owned backends); this method only
        produces the per-incident telemetry.
        """
        take = getattr(backend, "take_incidents", None)
        if take is None:
            return
        incidents = take()
        if not incidents or not self.events:
            return
        requeued = 0
        for incident in incidents:
            if not incident.quarantined:
                requeued += 1
            if incident.kind == "timeout":
                self.events.emit(
                    CandidateTimedOut(
                        deadline_seconds=self.config.eval_deadline_seconds,
                        attempt=incident.attempt,
                        quarantined=incident.quarantined,
                    )
                )
            else:
                self.events.emit(
                    WorkerCrashed(
                        kind=incident.kind,
                        exitcode=incident.exitcode,
                        attempt=incident.attempt,
                        quarantined=incident.quarantined,
                    )
                )
        if requeued:
            self.events.emit(ChunkRetried(chunk=chunk_id, requeued=requeued))

    # ------------------------------------------------------------------
    # Fault localization per parent (paper: re-localize per reproduction)
    # ------------------------------------------------------------------

    def fault_localization(self, patch: Patch, variant: ast.Source) -> set[int]:
        """Algorithm 2 against this parent's own simulation trace.

        The ``localization`` phase timer excludes the candidate
        evaluations this triggers (those are ``evaluation`` time).
        """
        started = time_mod.monotonic()
        eval_before = self.evaluation_seconds
        try:
            return self._fault_localization(patch, variant)
        finally:
            self.phase_seconds["localization"] += (
                time_mod.monotonic() - started
            ) - (self.evaluation_seconds - eval_before)

    def _fault_localization(self, patch: Patch, variant: ast.Source) -> set[int]:
        evaluation = self.evaluate(patch)
        if evaluation.compiled and evaluation.trace is None:
            # Trace evicted from the LRU: re-simulate this parent once.
            evaluation = self._evaluate_source(evaluation.source_text)
            if evaluation.trace is not None:
                self._trace_cache[evaluation.source_text] = evaluation.trace
        if evaluation.trace is None or not evaluation.compiled:
            return all_statement_ids(variant)
        mismatch = output_mismatch(self.problem.oracle, evaluation.trace)
        if not mismatch:
            return all_statement_ids(variant)
        localized = localize_faults(variant, mismatch)
        if not localized.nodes:
            return all_statement_ids(variant)
        return localized.nodes

    # ------------------------------------------------------------------
    # Main loop (Algorithm 1)
    # ------------------------------------------------------------------

    def run(self) -> RepairOutcome:
        """Run Algorithm 1 to completion and return the outcome."""
        try:
            return self._run()
        finally:
            self._release_backend()

    def _generation_event(self, generation: int, population: list[Patch],
                          best_fitness: float) -> GenerationCompleted:
        """Build the GenerationCompleted event from known fitnesses."""
        fitnesses = [
            f for f in (getattr(p, "_fitness", None) for p in population)
            if f is not None
        ]
        return GenerationCompleted(
            generation=generation,
            population=len(population),
            best_fitness=best_fitness,
            fitness_min=min(fitnesses, default=0.0),
            fitness_mean=(sum(fitnesses) / len(fitnesses)) if fitnesses else 0.0,
            fitness_max=max(fitnesses, default=0.0),
            eval_sims=self.eval_sims,
            operator_stats=dict(self.operator_stats),
        )

    def _run(self) -> RepairOutcome:
        config = self.config
        start = time_mod.monotonic()
        deadline = start + config.max_wall_seconds
        if self.events:
            self.events.emit(
                TrialStarted(
                    scenario=self.problem.name,
                    seed=self.seed,
                    backend=config.backend,
                    workers=config.workers,
                    population_size=config.population_size,
                    max_generations=config.max_generations,
                )
            )

        def out_of_budget() -> bool:
            if self._cancel is not None and self._cancel():
                return True
            if time_mod.monotonic() > deadline:
                return True
            if (
                config.max_fitness_evals is not None
                and self.eval_sims >= config.max_fitness_evals
            ):
                return True
            return False

        original = Patch.empty()
        original_eval = self.evaluate(original)
        original._fitness = original_eval.fitness  # type: ignore[attr-defined]
        history = [original_eval.fitness]
        logger.info(
            "[%s seed=%d] start: fitness=%.4f popsize=%d",
            self.problem.name, self.seed, original_eval.fitness, config.population_size,
        )
        if original_eval.is_plausible:
            # Nothing to repair (shouldn't happen for real defect scenarios).
            return self._finish(original, original_eval, 0, start, history)

        def fitness_of(patch: Patch) -> float:
            # Memoised on the patch object itself (ids are recycled by the
            # allocator, so an id-keyed dict would alias dead patches).
            cached = getattr(patch, "_fitness", None)
            if cached is None:
                cached = self.evaluate(patch).fitness
                patch._fitness = cached  # type: ignore[attr-defined]
            return cached

        best_patch, best_fitness = original, original_eval.fitness
        generations = 0
        winner: Patch | None = None

        # seed_popn (Algorithm 1 line 1): the original plus single-edit
        # variants localized against the original's own fault set — the
        # GenProg-family convention, which keeps generation 0 diverse.
        # Children are generated first, then the whole batch is scored
        # through the backend in child-index order.
        population: list[Patch] = [original]
        seed_variant = self.variant_tree(original)
        seed_faults = self.fault_localization(original, seed_variant)
        seedlings: list[Patch] = []
        while len(population) + len(seedlings) < config.population_size and not out_of_budget():
            if self.rng.random() <= config.rt_threshold:
                self.operator_stats["template"] += 1
                seedling = apply_fix_pattern(
                    original, seed_variant, seed_faults, self.rng,
                    extended=config.extended_templates,
                )
            else:
                self.operator_stats["mutation"] += 1
                seedling = mutate(
                    original,
                    seed_variant,
                    seed_faults,
                    self.rng,
                    config.delete_threshold,
                    config.insert_threshold,
                )
            seedlings.append(seedling)
        population.extend(seedlings)
        for seedling, evaluation in zip(
            seedlings, self._evaluate_generation(seedlings, out_of_budget)
        ):
            if evaluation is None:
                continue  # early stop: budget exhausted or winner already seen
            seedling._fitness = evaluation.fitness  # type: ignore[attr-defined]
            if evaluation.fitness > best_fitness:
                best_fitness, best_patch = evaluation.fitness, seedling
            if evaluation.fitness >= 1.0:
                winner = seedling
                break
        history.append(best_fitness)
        if self.events:
            self.events.emit(self._generation_event(0, population, best_fitness))

        while generations < config.max_generations and winner is None and not out_of_budget():
            generations += 1
            children: list[Patch] = elite(
                population, fitness_of, config.elitism_fraction
            )
            # Generate the full generation first: tournament selection and
            # re-localization only consult the previous population's known
            # fitnesses, so deferring evaluation preserves Algorithm 1.
            offspring: list[Patch] = []
            while len(children) + len(offspring) < config.population_size and not out_of_budget():
                parent = tournament_select(
                    population, fitness_of, self.rng, config.tournament_size
                )
                variant = self.variant_tree(parent)
                fault_ids = self.fault_localization(parent, variant)
                if self.rng.random() <= config.rt_threshold:
                    self.operator_stats["template"] += 1
                    child = apply_fix_pattern(
                        parent, variant, fault_ids, self.rng,
                        extended=config.extended_templates,
                    )
                    new_children = [child]
                elif self.rng.random() <= config.mut_threshold:
                    self.operator_stats["mutation"] += 1
                    child = mutate(
                        parent,
                        variant,
                        fault_ids,
                        self.rng,
                        config.delete_threshold,
                        config.insert_threshold,
                    )
                    new_children = [child]
                else:
                    self.operator_stats["crossover"] += 1
                    parent2 = tournament_select(
                        population, fitness_of, self.rng, config.tournament_size
                    )
                    child1, child2 = crossover(parent, parent2, self.rng)
                    new_children = [child1, child2]
                offspring.extend(new_children)
            children.extend(offspring)
            for child, evaluation in zip(
                offspring, self._evaluate_generation(offspring, out_of_budget)
            ):
                if evaluation is None:
                    continue  # early stop: budget exhausted or winner already seen
                child._fitness = evaluation.fitness  # type: ignore[attr-defined]
                if evaluation.fitness > best_fitness:
                    best_fitness, best_patch = evaluation.fitness, child
                if evaluation.fitness >= 1.0:
                    winner = child
                    break
            population = children or population
            history.append(best_fitness)
            if self.events:
                self.events.emit(
                    self._generation_event(generations, population, best_fitness)
                )
            logger.info(
                "[%s seed=%d] gen %d: best=%.4f sims=%d best_patch=%s",
                self.problem.name, self.seed, generations, best_fitness,
                self.simulations, best_patch.describe()[:80],
            )

        final_patch = winner if winner is not None else best_patch
        final_eval = self.evaluate(final_patch)
        if winner is not None:
            if self.events:
                self.events.emit(
                    PlausiblePatchFound(
                        generation=generations,
                        fitness=final_eval.fitness,
                        edits=len(final_patch),
                    )
                )
            logger.info(
                "[%s seed=%d] plausible repair found (%d edits); minimizing",
                self.problem.name, self.seed, len(final_patch),
            )
            final_patch = self._minimize(final_patch)
            final_eval = self.evaluate(final_patch)
            logger.info(
                "[%s seed=%d] minimized to %d edits: %s",
                self.problem.name, self.seed, len(final_patch), final_patch.describe(),
            )
        return self._finish(final_patch, final_eval, generations, start, history)

    def _minimize(self, patch: Patch) -> Patch:
        def is_plausible(candidate: Patch) -> bool:
            return self.evaluate(candidate).is_plausible

        started = time_mod.monotonic()
        eval_before = self.evaluation_seconds
        try:
            return minimize_patch(patch, is_plausible, self.config.minimize_budget)
        finally:
            # Like localization, the phase excludes its own evaluations.
            self.phase_seconds["minimization"] += (
                time_mod.monotonic() - started
            ) - (self.evaluation_seconds - eval_before)

    def _finish(
        self,
        patch: Patch,
        evaluation: Evaluation,
        generations: int,
        start: float,
        history: list[float],
    ) -> RepairOutcome:
        outcome = RepairOutcome(
            plausible=evaluation.is_plausible,
            patch=patch,
            fitness=evaluation.fitness,
            repaired_source=evaluation.source_text if evaluation.is_plausible else None,
            generations=generations,
            fitness_evals=self.fitness_evals,
            simulations=self.simulations,
            elapsed_seconds=time_mod.monotonic() - start,
            best_fitness_history=history,
            seed=self.seed,
            eval_sims=self.eval_sims,
            pruned=self.candidates_pruned,
            quarantined=self.candidates_quarantined,
        )
        if self.events:
            # Fixed emission order (all four phases, then the trial
            # summary) keeps the event-type sequence deterministic.
            for phase in ("parse", "localization", "evaluation", "minimization"):
                self.events.emit(
                    PhaseCompleted(phase=phase, seconds=self.phase_seconds[phase])
                )
            self.events.emit(
                TrialCompleted(
                    plausible=outcome.plausible,
                    fitness=outcome.fitness,
                    generations=outcome.generations,
                    eval_sims=outcome.eval_sims,
                    fitness_evals=outcome.fitness_evals,
                    simulations=outcome.simulations,
                    edits=len(outcome.patch),
                    elapsed_seconds=outcome.elapsed_seconds,
                    pruned=outcome.pruned,
                    quarantined=outcome.quarantined,
                )
            )
        return outcome


def repair(
    problem: RepairProblem,
    config: RepairConfig | None = None,
    seeds: tuple[int, ...] = (0,),
    backend: EvaluationBackend | None = None,
    observers: Sequence[RepairObserver] | None = None,
    cancel: Callable[[], bool] | None = None,
) -> RepairOutcome:
    """Run independent trials (paper: 5 per scenario) and return the first
    plausible outcome, or the best-fitness outcome if none succeeds.

    With ``config.workers > 1`` and several seeds, the trials themselves
    fan out over a process pool (each trial evaluating serially inside its
    worker); with a single seed the one trial parallelises its candidate
    evaluations instead.  Either way the outcome is the one the serial
    sweep would have returned: the lowest plausible seed wins, falling
    back to the earliest best-fitness trial.

    ``observers`` (repro.obs) see the full event stream of every trial
    run in this process.  With observers attached, multi-seed runs stay
    in-process sharing one evaluation backend — candidate evaluations
    still fan out over the pool, but trials are not shipped to workers
    (observers are generally not picklable, and a complete trace beats a
    marginally faster sweep when telemetry was requested).

    ``cancel`` is a cooperative cancellation probe (the service daemon
    passes one): trials poll it alongside their budget checks, a
    cancelled sweep stops after the current chunk, and later seeds are
    never started.  Like observers, a cancel probe keeps multi-seed runs
    in-process (closures do not cross the trial pool's pickle boundary).
    """
    config = config or RepairConfig()
    events = observers if isinstance(observers, ObserverSet) else ObserverSet(observers)
    if config.backend not in BACKEND_NAMES:
        # Fail in the caller's process, not inside a pickled trial worker.
        raise ValueError(
            f"unknown evaluation backend {config.backend!r}; "
            f"valid backends: {', '.join(BACKEND_NAMES)}"
        )
    workers = max(1, config.workers)
    if backend is None and workers > 1 and len(seeds) > 1 and not events and cancel is None:
        outcome = _repair_parallel_trials(problem, config, seeds, workers)
        if outcome is not None:
            return outcome
        # Pool unavailable on this host: fall through to the serial sweep.
    scope: contextlib.AbstractContextManager
    if backend is None:
        backend = make_backend(problem, config)
        scope = backend  # backends are context managers; exit closes
    else:
        scope = contextlib.nullcontext()  # caller owns the backend
    with scope:
        best: RepairOutcome | None = None
        for seed in seeds:
            if best is not None and cancel is not None and cancel():
                break  # cancelled between trials: stop the sweep early
            outcome = CirFixEngine(
                problem, config, seed, backend=backend, observers=events,
                cancel=cancel,
            ).run()
            if outcome.plausible:
                return outcome
            if best is None or outcome.fitness > best.fitness:
                best = outcome
        assert best is not None
        return best


def _trial_payload(problem: RepairProblem, config: RepairConfig, seed: int) -> tuple:
    """Pickle-friendly description of one trial (texts, not ASTs)."""
    return (
        generate(problem.design),
        problem.testbench_text,
        problem.oracle,
        problem.name,
        config,
        seed,
    )


def _run_trial(payload: tuple) -> RepairOutcome:
    """Worker-side entry: rebuild the problem from texts and run one trial."""
    design_text, testbench_text, oracle, name, config, seed = payload
    problem = RepairProblem.from_text(design_text, testbench_text, oracle, name)
    return CirFixEngine(problem, config, seed).run()


def _repair_parallel_trials(
    problem: RepairProblem,
    config: RepairConfig,
    seeds: tuple[int, ...],
    workers: int,
) -> RepairOutcome | None:
    """Fan independent trials out over a process pool.

    Trials are consumed in seed order, so the returned outcome matches the
    serial sweep exactly; trailing trials are terminated as soon as an
    earlier seed produces a plausible repair.  Returns ``None`` when the
    host cannot start worker processes (caller falls back to serial).
    """
    from .backend import _mp_context  # single source of truth for the context

    trial_config = config.scaled(workers=1)
    payloads = [_trial_payload(problem, trial_config, seed) for seed in seeds]
    try:
        pool = _mp_context().Pool(processes=min(workers, len(seeds)))
    except (OSError, ValueError, ImportError) as exc:
        logger.warning("trial pool unavailable (%s); running trials serially", exc)
        return None
    best: RepairOutcome | None = None
    try:
        for outcome in pool.imap(_run_trial, payloads):
            if outcome.plausible:
                return outcome
            if best is None or outcome.fitness > best.fitness:
                best = outcome
    finally:
        pool.terminate()
        pool.join()
    assert best is not None
    return best
