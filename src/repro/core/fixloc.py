"""Fix localization (paper §3.6).

Fault localization says *where* to edit; fix localization restricts *what*
code may be inserted or substituted there, cutting the fraction of mutants
that fail to compile (the paper reports 35% → 10%).

Rules implemented:

- **Insert sources** — only statement-typed nodes (IEEE 1364 Annex A.6.4)
  drawn from the design itself may be inserted, and only after statements
  that already sit inside ``initial``/``always`` blocks (Annex A.6.2).
- **Replace compatibility** — a node may be replaced by a node of the same
  type, or by one whose type shares the same immediate parent type in the
  Verilog grammar (statements with statements, expressions with
  expressions, module items with module items).
"""

from __future__ import annotations

from ..hdl import ast

#: Statement classes eligible as insertion material (Annex A.6.4 subset).
_INSERTABLE_STATEMENTS = (
    ast.BlockingAssign,
    ast.NonBlockingAssign,
    ast.If,
    ast.Case,
    ast.Block,
    ast.For,
    ast.While,
    ast.RepeatStmt,
    ast.Wait,
    ast.SysTaskCall,
    ast.TaskCall,
    ast.EventTrigger,
)

#: Grammar families for the "same immediate parent type" replacement rule.
_FAMILIES: tuple[tuple[type, ...], ...] = (
    (ast.Stmt,),
    (ast.Expr,),
    (ast.ContinuousAssign, ast.Always, ast.Initial, ast.Instance),
    (ast.SensItem,),
    (ast.CaseItem,),
)


def is_statement(node: ast.Node) -> bool:
    """True when the node is a procedural statement."""
    return isinstance(node, ast.Stmt)


def insertion_sources(design: ast.Node) -> list[ast.Node]:
    """Statements from the design usable as insertion material."""
    return [
        node
        for node in design.walk()
        if isinstance(node, _INSERTABLE_STATEMENTS) and node.node_id is not None
    ]


def insertion_anchors(design: ast.Node) -> list[ast.Node]:
    """Statements inside initial/always blocks, usable as insert-after
    anchors (an inserted statement lands in the anchor's enclosing list)."""
    anchors: list[ast.Node] = []
    for item in design.walk():
        if isinstance(item, (ast.Always, ast.Initial)):
            for node in item.walk():
                if (
                    isinstance(node, ast.Stmt)
                    and not isinstance(node, ast.Block)
                    and node.node_id is not None
                    and _in_statement_list(item, node)
                ):
                    anchors.append(node)
    return anchors


def _in_statement_list(root: ast.Node, node: ast.Node) -> bool:
    """True when ``node`` is a direct member of some block's statement list
    (so ``insert_after`` has a list to splice into)."""
    for candidate in root.walk():
        if isinstance(candidate, ast.Block) and any(s is node for s in candidate.stmts):
            return True
    return False


def compatible_replacement(target: ast.Node, source: ast.Node) -> bool:
    """May ``source`` replace ``target`` under the fix localization rules?"""
    if type(target) is type(source):
        return True
    for family in _FAMILIES:
        target_in = isinstance(target, family)
        source_in = isinstance(source, family)
        if target_in and source_in:
            # Same grammar family: allowed, except lvalue-breaking swaps
            # (an expression replacing an assignment LHS must remain an
            # lvalue; checked by the operator before emitting the edit).
            return True
        if target_in != source_in:
            continue
    return False


def replacement_sources(design: ast.Node, target: ast.Node) -> list[ast.Node]:
    """All design nodes that may replace ``target``."""
    return [
        node
        for node in design.walk()
        if node is not target
        and node.node_id is not None
        and compatible_replacement(target, node)
    ]


def is_lvalue_expr(node: ast.Node) -> bool:
    """Expressions that remain legal assignment targets."""
    if isinstance(node, ast.Identifier):
        return True
    if isinstance(node, (ast.Index, ast.PartSelect)):
        return is_lvalue_expr(node.target)
    if isinstance(node, ast.Concat):
        return all(is_lvalue_expr(p) for p in node.parts)
    return False


def deletable_targets(design: ast.Node, fault_ids: set[int]) -> list[ast.Node]:
    """Statements in the fault space that can be deleted safely."""
    return [
        node
        for node in design.walk()
        if node.node_id in fault_ids
        and isinstance(node, ast.Stmt)
        and not isinstance(node, ast.Block)
    ]
