"""The repair-engine registry (ROADMAP item 3 groundwork).

``repro.api`` and the service daemon are *engine-neutral*: every repair
entry point takes ``engine: str = "cirfix"`` and resolves it here, so a
second repair engine (e.g. the rtl-repair-style template synthesiser in
:mod:`repro.synth`) plugs in by registering a runner — no facade, CLI,
or protocol change required.

A runner is a callable with the signature::

    runner(problem, config, seeds, *,
           backend=None, observers=None, cancel=None,
           checkpoint=None) -> RepairOutcome

mirroring :func:`repro.core.repair.repair` (which is the built-in
``"cirfix"`` runner).  Runners must honour the package-wide contracts:
same seed → bit-identical outcome; observers never influence the search;
``cancel`` polled cooperatively; ``checkpoint`` (a callable receiving
the engine's deterministic cursor snapshot at each search boundary, see
:meth:`repro.core.harness.EngineHarness._save_checkpoint`) never
influences the search either — it only records progress for
crash recovery.

Built-ins (registered lazily to avoid import cycles):

- ``cirfix`` — genetic-programming search (paper Algorithm 1);
- ``synth`` — template enumeration + brute-force literal solving
  (:mod:`repro.synth`, rtl-repair style);
- ``race`` — runs both engines and returns the winner
  (:mod:`repro.synth.race`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.observer import RepairObserver
    from .backend import EvaluationBackend
    from .config import RepairConfig
    from .repair import RepairOutcome, RepairProblem

#: The engine every entry point defaults to.
DEFAULT_ENGINE = "cirfix"


class EngineRunner(Protocol):
    """The callable contract a registered repair engine satisfies."""

    def __call__(
        self,
        problem: "RepairProblem",
        config: "RepairConfig | None" = None,
        seeds: tuple[int, ...] = (0,),
        backend: "EvaluationBackend | None" = None,
        observers: "Sequence[RepairObserver] | None" = None,
        cancel: Callable[[], bool] | None = None,
        checkpoint: "Callable[[dict], None] | None" = None,
    ) -> "RepairOutcome":
        """Run trials on ``problem`` and return the chosen outcome."""
        ...  # pragma: no cover - protocol


_REGISTRY: dict[str, EngineRunner] = {}
_DESCRIPTIONS: dict[str, str] = {}


def register_engine(name: str, runner: EngineRunner, description: str = "") -> None:
    """Register (or replace) the runner behind an engine name.

    ``description`` is the one-line summary ``repro engines`` prints;
    re-registration (latest wins) replaces both runner and description.
    """
    if not name or not name.replace("_", "").replace("-", "").isalnum():
        raise ValueError(f"bad engine name {name!r}")
    _REGISTRY[name] = runner
    _DESCRIPTIONS[name] = description


def engine_names() -> tuple[str, ...]:
    """The registered engine names, sorted (for messages and --help)."""
    _ensure_builtin()
    return tuple(sorted(_REGISTRY))


def engine_descriptions() -> dict[str, str]:
    """name → one-line description for every registered engine, sorted."""
    _ensure_builtin()
    return {name: _DESCRIPTIONS.get(name, "") for name in sorted(_REGISTRY)}


def get_engine(name: str) -> EngineRunner:
    """Resolve an engine name to its runner; raises ``ValueError``."""
    _ensure_builtin()
    runner = _REGISTRY.get(name)
    if runner is None:
        raise ValueError(
            f"unknown repair engine {name!r} "
            f"(registered: {', '.join(sorted(_REGISTRY))})"
        )
    return runner


def _ensure_builtin() -> None:
    """Lazily register the built-in runners (avoids a hard cycle)."""
    if DEFAULT_ENGINE not in _REGISTRY:
        from .repair import repair

        register_engine(
            DEFAULT_ENGINE,
            repair,
            "genetic-programming search over repair patches (paper Algorithm 1)",
        )
    if "synth" not in _REGISTRY:
        from ..synth.engine import synth_repair

        register_engine(
            "synth",
            synth_repair,
            "template enumeration solved against the testbench trace (rtl-repair style)",
        )
    if "race" not in _REGISTRY:
        from ..synth.race import race_repair

        register_engine(
            "race",
            race_repair,
            "runs cirfix and synth on the same scenario and returns the winner",
        )
