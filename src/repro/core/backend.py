"""Candidate-evaluation backends for the repair engine.

The paper reports that >90% of repair wall-clock goes to fitness
evaluations (candidate simulations), and evaluations within a generation
are independent.  This module factors the evaluation pipeline
(parse → splice testbench → elaborate → simulate → fitness) out of the
engine and puts an :class:`EvaluationBackend` interface in front of it:

- :class:`SerialBackend` evaluates candidates inline in the engine's
  process — the paper's original behaviour and the default;
- :class:`ProcessPoolBackend` keeps a persistent pool of **supervised**
  worker processes: each worker parses the instrumented testbench and
  loads the oracle **once** at initialisation, then scores candidate
  design texts one task at a time, returning compact
  ``(fitness, breakdown, compiled, summary)`` results (full traces never
  cross the process boundary).

Both backends run the identical pipeline on the identical inputs, so a
batch submitted in child-index order produces identical results either
way — the engine's determinism guarantee does not depend on the backend
(see ``docs/repair_engine.md``).

Two orthogonal fast paths (``docs/simulation.md``):

- ``config.sim_engine = "compiled"`` swaps the tree-walking simulator
  for :class:`repro.sim.CompiledSimulator` and skips the testbench
  splice entirely — the testbench modules are appended uncloned and
  their compiled process templates are shared across every candidate
  scored in the same process (:func:`_testbench_compile_state`);
- :class:`EvalCache` memoises whole results by candidate source hash,
  so cross-trial repeats (multi-seed experiments share one backend)
  replay the recorded result instead of re-simulating.

Fault tolerance
---------------

The engine's never-raises contract ("the search must survive arbitrary
mutants") extends to the pool: a pathological candidate that hangs,
hard-exits, or exhausts a worker's memory must cost *one population
slot*, never the run.  The supervised pool therefore

- dispatches **per task** and tracks each in-flight candidate against a
  wall-clock deadline (:attr:`~repro.core.config.RepairConfig.eval_deadline_seconds`);
- detects worker death (closed pipe / process sentinel), classifies it
  (``crash`` vs ``oom``), respawns the worker, and requeues the affected
  candidate with a bounded retry count
  (:attr:`~repro.core.config.RepairConfig.eval_max_retries`);
- after the retries are spent, **quarantines** the candidate as a
  deterministic :class:`EvalFailure` result (fitness 0.0,
  ``compiled=False``, kind ``timeout`` / ``crash`` / ``oom``);
- sandboxes workers at init: a bounded recursion limit plus an optional
  ``RLIMIT_AS`` address-space cap
  (:attr:`~repro.core.config.RepairConfig.worker_mem_mb`).

Supervision incidents are buffered on the backend and drained by the
engine (:meth:`ProcessPoolBackend.take_incidents`), which turns them
into ``repro.obs`` events.  With no faults and deadlines unhit the
supervised pool returns bit-identical results in bit-identical order to
the old blocking ``pool.map`` — and emits nothing new.

Chaos testing
-------------

``REPRO_EVAL_CHAOS`` (or :func:`repro.fuzz.faults.plant_eval_chaos`)
installs a *test-only* chaos plan mapping dispatch ordinals to planted
faults (``hang`` / ``exit`` / ``balloon``), so the recovery machinery is
exercised by deliberately planted degenerate mutants — see
``docs/fuzzing.md`` and ``tests/core/test_fault_tolerance.py``.
"""

from __future__ import annotations

import hashlib
import json
import logging
import math
import multiprocessing
import multiprocessing.connection
import os
import sys
import time
from collections import OrderedDict, deque
from pathlib import Path
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence

from ..cache import PersistentEvalCache
from ..hdl import ParseError, ast, generate, parse
from ..hdl.lexer import LexError
from ..hdl.node_ids import max_node_id, number_nodes
from ..instrument.trace import SimulationTrace, output_mismatch
from ..lint.rules import resolve_rules
from ..sim.compile import CompiledSimulator
from ..sim.elaborate import ElaborationError
from ..sim.simulator import Simulator
from .config import BACKEND_NAMES, RepairConfig
from .fitness import FitnessBreakdown, evaluate_fitness

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (repair → backend)
    from .repair import RepairProblem

logger = logging.getLogger("repro.repair")


# ----------------------------------------------------------------------
# Result types
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TraceSummary:
    """Compact description of a candidate's simulation trace.

    Pool workers return this instead of the full trace: it is enough for
    engine diagnostics and keeps per-task result payloads small.  A parent
    whose full trace is needed again (fault re-localization) is
    re-simulated in the engine's process.
    """

    #: Number of recorded trace rows (``$cirfix_record`` samples).
    rows: int
    #: Number of distinct recorded variables.
    recorded_vars: int
    #: Output wires that ever differ from the oracle, sorted.
    mismatched_vars: tuple[str, ...]


@dataclass(frozen=True)
class EvalFailure:
    """Why a candidate was quarantined by the supervised pool.

    A quarantined candidate scores a deterministic failure (fitness 0.0,
    ``compiled=False``) after exhausting its retries, so one poison
    mutant costs one population slot instead of wedging the run.
    """

    #: ``"timeout"`` (deadline exceeded), ``"crash"`` (worker died or
    #: raised), or ``"oom"`` (memory exhaustion — worker ``MemoryError``
    #: under the ``RLIMIT_AS`` sandbox, or a SIGKILL'd worker).
    kind: str
    #: How many dispatch attempts were made before quarantining.
    attempts: int


@dataclass(frozen=True)
class SupervisionIncident:
    """One supervision event observed by the pool (for telemetry).

    Buffered on the backend and drained by the engine via
    :meth:`ProcessPoolBackend.take_incidents`; the engine converts them
    into ``candidate_timed_out`` / ``worker_crashed`` / ``chunk_retried``
    events so observers see the fault-tolerance machinery at work.
    """

    #: ``"timeout"``, ``"crash"``, or ``"oom"`` (see :class:`EvalFailure`).
    kind: str
    #: 1-based dispatch attempt that failed.
    attempt: int
    #: True when the failure exhausted the retry budget (the candidate
    #: was quarantined); False when the candidate was requeued.
    quarantined: bool
    #: Worker exit code when the worker died (negative = killed by
    #: signal); None for worker-reported failures and timeouts.
    exitcode: int | None = None


@dataclass
class CandidateResult:
    """What a backend reports for one candidate design text.

    ``trace`` is populated only when the evaluation ran in the calling
    process (:class:`SerialBackend`); pool workers drop it and keep just
    the :class:`TraceSummary`.  The trailing stats fields are the
    telemetry payload (repro.obs): measured where the evaluation actually
    ran, so pool workers batch them back with the chunk results instead
    of emitting events across the process boundary.  ``failure`` is set
    only for candidates the supervised pool quarantined.
    """

    fitness: float
    breakdown: FitnessBreakdown | None
    compiled: bool
    trace: SimulationTrace | None
    summary: TraceSummary | None
    #: Wall-clock of the whole evaluation (codegen output → fitness).
    eval_seconds: float = 0.0
    #: Wall-clock of the frontend span (parse + splice + elaborate).
    parse_seconds: float = 0.0
    #: Wall-clock of the simulate + fitness span.
    sim_seconds: float = 0.0
    #: Scheduler callbacks the candidate's simulation executed.
    sim_events: int = 0
    #: Statements the candidate's simulation executed.
    sim_steps: int = 0
    #: Set when the supervised pool quarantined this candidate.
    failure: EvalFailure | None = None

    def without_trace(self) -> "CandidateResult":
        """A copy safe to ship across a process boundary (no trace)."""
        return CandidateResult(
            self.fitness,
            self.breakdown,
            self.compiled,
            None,
            self.summary,
            eval_seconds=self.eval_seconds,
            parse_seconds=self.parse_seconds,
            sim_seconds=self.sim_seconds,
            sim_events=self.sim_events,
            sim_steps=self.sim_steps,
            failure=self.failure,
        )


def _quarantine_result(kind: str, attempts: int) -> CandidateResult:
    """The deterministic result a quarantined candidate scores."""
    return CandidateResult(
        0.0, None, False, None, None, failure=EvalFailure(kind, attempts)
    )


# ----------------------------------------------------------------------
# The evaluation pipeline (shared by every backend)
# ----------------------------------------------------------------------


def splice_testbench(design: ast.Source, testbench: ast.Source) -> ast.Source:
    """Combine a freshly parsed design with cloned testbench modules.

    Candidate evaluation used to re-parse ``design_text + testbench_text``
    for every candidate even though the testbench never changes.  Instead
    the pre-parsed testbench module ASTs are cloned and spliced after the
    design's modules; clones are renumbered above the design's ids so the
    combined tree keeps unique node ids.  Cloning is measurably cheaper
    than re-lexing/re-parsing the testbench text.
    """
    clones = [module.clone() for module in testbench.modules]
    next_id = max_node_id(design) + 1
    for module in clones:
        next_id = number_nodes(module, next_id)
    return ast.Source(list(design.modules) + clones)


#: Cap on retained per-testbench compile caches (LRU).  Each entry pins
#: one testbench tree plus the compiled process templates for its
#: modules; a worker or engine process only ever cycles through a
#: handful of distinct testbenches, so a small cap is plenty.
_TB_STATE_CAP = 8

#: ``id(testbench)`` → ``(testbench, shared template cache, module ids)``.
#: The stored testbench reference both validates the ``id()`` key (no
#: stale hit after garbage collection reuses an address) and keeps the
#: tree alive so its module ids stay unique for the entry's lifetime.
_TB_COMPILE_STATE: OrderedDict[int, tuple[ast.Source, dict, frozenset[int]]] = (
    OrderedDict()
)


def _testbench_compile_state(testbench: ast.Source) -> tuple[dict, frozenset[int]]:
    """Shared compile state for one testbench tree (compiled engine).

    The compiled engine skips :func:`splice_testbench` — the testbench
    module objects are appended to every candidate's combined tree
    as-is, so their compiled process templates can be built once per
    process and reused for every candidate evaluated against the same
    testbench (the dominant cost of compilation amortises to zero).
    """
    key = id(testbench)
    entry = _TB_COMPILE_STATE.get(key)
    if entry is not None and entry[0] is testbench:
        _TB_COMPILE_STATE.move_to_end(key)
        return entry[1], entry[2]
    shared_cache: dict = {}
    module_ids = frozenset(id(module) for module in testbench.modules)
    _TB_COMPILE_STATE[key] = (testbench, shared_cache, module_ids)
    while len(_TB_COMPILE_STATE) > _TB_STATE_CAP:
        _TB_COMPILE_STATE.popitem(last=False)
    return shared_cache, module_ids


def evaluate_design_text(
    design_text: str,
    testbench: ast.Source,
    oracle: SimulationTrace,
    config: RepairConfig,
) -> CandidateResult:
    """Score one candidate design: parse → splice → simulate → fitness.

    Never raises: a candidate that fails to parse or elaborate scores 0.0
    with ``compiled=False``; one that crashes at runtime — anywhere in
    the simulate / trace-decode / fitness span — scores 0.0 with
    ``compiled=True`` (the search must survive arbitrary mutants).

    Each result carries its telemetry stats (phase wall-clock and the
    simulator's event-loop counters) measured in the process that ran
    the pipeline — serial callers and pool workers report identically.
    """
    started = time.perf_counter()
    try:
        design = parse(design_text)
        if config.sim_engine == "compiled":
            # The compiled engine never mutates the combined tree, so the
            # testbench modules ride along uncloned: no clone, no node-id
            # renumbering, and their compiled templates are shared across
            # every candidate scored against this testbench.
            combined = ast.Source(list(design.modules) + list(testbench.modules))
            shared_cache, shared_ids = _testbench_compile_state(testbench)
            sim: Simulator = CompiledSimulator(
                combined,
                max_steps=config.max_sim_steps,
                shared_cache=shared_cache,
                shared_module_ids=shared_ids,
            )
        else:
            combined = splice_testbench(design, testbench)
            sim = Simulator(combined, max_steps=config.max_sim_steps)
    except (ParseError, LexError, ElaborationError, RecursionError, MemoryError):
        elapsed = time.perf_counter() - started
        return CandidateResult(
            0.0, None, False, None, None,
            eval_seconds=elapsed, parse_seconds=elapsed,
        )
    parse_seconds = time.perf_counter() - started
    try:
        result = sim.run(config.max_sim_time)
    except Exception:
        # Any uncontained runtime failure (width-cap violations from a
        # monitor callback, pathological recursion, ...) scores zero.
        elapsed = time.perf_counter() - started
        return CandidateResult(
            0.0, None, True, None, None,
            eval_seconds=elapsed,
            parse_seconds=parse_seconds,
            sim_seconds=elapsed - parse_seconds,
            sim_events=sim.scheduler.events_executed,
            sim_steps=sim.steps_used,
        )
    try:
        trace = SimulationTrace.from_records(result.trace)
        breakdown = evaluate_fitness(trace, oracle, config.phi)
        summary = TraceSummary(
            rows=len(trace),
            recorded_vars=len(trace.variables()),
            mismatched_vars=tuple(sorted(output_mismatch(oracle, trace))),
        )
    except Exception:
        # Trace decoding / fitness scoring can blow up on degenerate
        # recorded values (or run out of memory on a pathological trace);
        # that too is the candidate's fault, never the engine's problem.
        elapsed = time.perf_counter() - started
        return CandidateResult(
            0.0, None, True, None, None,
            eval_seconds=elapsed,
            parse_seconds=parse_seconds,
            sim_seconds=elapsed - parse_seconds,
            sim_events=result.events_executed,
            sim_steps=result.steps_used,
        )
    elapsed = time.perf_counter() - started
    return CandidateResult(
        breakdown.fitness, breakdown, True, trace, summary,
        eval_seconds=elapsed,
        parse_seconds=parse_seconds,
        sim_seconds=elapsed - parse_seconds,
        sim_events=result.events_executed,
        sim_steps=result.steps_used,
    )


# ----------------------------------------------------------------------
# Content-addressed evaluation cache (cross-generation / cross-trial)
# ----------------------------------------------------------------------

#: Version tag of persisted evaluation payloads; bump whenever the
#: encoded field set changes so stale entries decode as misses.
EVAL_PAYLOAD_VERSION = 1


def eval_context_digest(
    testbench_text: str, oracle: SimulationTrace, config: RepairConfig
) -> str:
    """Digest of everything outcome-relevant *besides* the candidate text.

    The persistent cache tier is shared across jobs, configs, and daemon
    restarts, so its keys must cover the full input of one candidate
    evaluation — two evaluations whose results could legally differ must
    never alias.  The audited ingredient list (see ``docs/service.md``):

    - the instrumented **testbench** text and the **oracle** trace (the
      other two pipeline inputs besides the candidate);
    - ``phi`` (fitness weighting), ``max_sim_time`` / ``max_sim_steps``
      (simulation budgets — a budget change can turn a completed
      simulation into a truncated one);
    - ``sim_engine`` — the engines are bit-identical by contract, but
      keying them apart means a parity bug can never hide behind a warm
      cache;
    - the ``eval_deadline_seconds`` **bucket** (minutes granularity, 0 =
      off) and ``worker_mem_mb`` — a tighter deadline or memory sandbox
      can contain-fail a candidate that a looser one completes;
    - the **lint-gate ruleset** (resolved to canonical rule codes; empty
      when the gate is off) — gate configuration is search-schedule
      state, included so a gated corpus is auditable separately.

    Deliberately excluded: GP schedule knobs (population, generations,
    thresholds, seeds, chunk size, worker count) — they decide *which*
    candidates get evaluated, never what one evaluation returns.
    """
    deadline = config.eval_deadline_seconds
    context = {
        "testbench_sha": hashlib.sha256(testbench_text.encode("utf-8")).hexdigest(),
        "oracle_sha": hashlib.sha256(oracle.to_csv().encode("utf-8")).hexdigest(),
        "phi": config.phi,
        "max_sim_time": config.max_sim_time,
        "max_sim_steps": config.max_sim_steps,
        "sim_engine": config.sim_engine,
        "deadline_bucket": 0 if deadline <= 0 else math.ceil(deadline / 60.0),
        "worker_mem_mb": config.worker_mem_mb,
        "lint_gate": (
            [rule.code for rule in resolve_rules(config.lint_gate_rules)]
            if config.lint_gate
            else []
        ),
    }
    blob = json.dumps(context, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def encode_eval_payload(result: CandidateResult) -> dict:
    """Encode one result as the JSON payload the disk tier persists.

    The payload is a faithful round-trip of every :class:`CandidateResult`
    field except ``failure`` (quarantined results are never cached) —
    including the recorded telemetry stats, so replayed hits produce the
    same event stream the original computation did, and the full trace as
    CSV when the result carries one (serial evaluations), so a serial
    replay can skip the localization re-simulation exactly like the
    original run did.
    """
    breakdown = None
    if result.breakdown is not None:
        b = result.breakdown
        breakdown = {
            "fitness": b.fitness,
            "raw_sum": b.raw_sum,
            "total": b.total,
            "matches": b.matches,
            "mismatches": b.mismatches,
            "xz_positions": b.xz_positions,
        }
    summary = None
    if result.summary is not None:
        s = result.summary
        summary = {
            "rows": s.rows,
            "recorded_vars": s.recorded_vars,
            "mismatched_vars": list(s.mismatched_vars),
        }
    return {
        "version": EVAL_PAYLOAD_VERSION,
        "fitness": result.fitness,
        "compiled": result.compiled,
        "breakdown": breakdown,
        "summary": summary,
        "trace_csv": result.trace.to_csv() if result.trace is not None else None,
        "eval_seconds": result.eval_seconds,
        "parse_seconds": result.parse_seconds,
        "sim_seconds": result.sim_seconds,
        "sim_events": result.sim_events,
        "sim_steps": result.sim_steps,
    }


def decode_eval_payload(payload: dict) -> CandidateResult | None:
    """Decode a persisted payload back into a :class:`CandidateResult`.

    Returns None for payloads of a different version or with missing /
    malformed fields — the caller treats that as a cache miss (the disk
    tier is corruption-tolerant end to end).
    """
    try:
        if payload.get("version") != EVAL_PAYLOAD_VERSION:
            return None
        breakdown = (
            FitnessBreakdown(**payload["breakdown"])
            if payload["breakdown"] is not None
            else None
        )
        summary = None
        if payload["summary"] is not None:
            s = payload["summary"]
            summary = TraceSummary(
                rows=int(s["rows"]),
                recorded_vars=int(s["recorded_vars"]),
                mismatched_vars=tuple(s["mismatched_vars"]),
            )
        trace = (
            SimulationTrace.from_csv(payload["trace_csv"])
            if payload["trace_csv"] is not None
            else None
        )
        return CandidateResult(
            float(payload["fitness"]),
            breakdown,
            bool(payload["compiled"]),
            trace,
            summary,
            eval_seconds=float(payload["eval_seconds"]),
            parse_seconds=float(payload["parse_seconds"]),
            sim_seconds=float(payload["sim_seconds"]),
            sim_events=int(payload["sim_events"]),
            sim_steps=int(payload["sim_steps"]),
        )
    except (KeyError, TypeError, ValueError):
        return None


def open_eval_store(config: RepairConfig) -> PersistentEvalCache | None:
    """The persistent cache tier selected by ``config``, or None.

    ``config.cache_dir`` empty disables the tier.  Opening goes through
    :meth:`PersistentEvalCache.open`, so every backend in the process
    pointed at the same directory shares one instance (one LRU order,
    one set of statistics — the service daemon relies on this).  An
    unusable directory degrades to no disk tier rather than failing the
    run.
    """
    if not config.cache_dir:
        return None
    try:
        return PersistentEvalCache.open(config.cache_dir, config.cache_max_mb << 20)
    except OSError as exc:
        logger.warning(
            "persistent eval cache unavailable at %s (%s); continuing without it",
            config.cache_dir, exc,
        )
        return None


class EvalCache:
    """LRU cache of :class:`CandidateResult` keyed by candidate source hash.

    The engine already deduplicates within one trial (its per-trial
    fitness memo), so by the time a repeated design text reaches the
    backend it is a *cross-trial* repeat: multi-seed experiments share
    one backend, and every trial re-scores the seed design plus the
    common early mutants.  The cache replays the recorded result —
    including the telemetry fields (``eval_seconds`` / ``sim_events`` /
    ``sim_steps``) measured when the candidate was first evaluated — so
    observers see a byte-identical event sequence whether a result was
    computed or replayed.

    Quarantined results (``failure is not None``) are never stored: a
    timeout or crash under one pool's deadline is not a property of the
    candidate text alone, and a retry must re-evaluate.

    Persistent tier
    ---------------

    With a ``store`` attached (:class:`repro.cache.PersistentEvalCache`,
    opened via :func:`open_eval_store`), a memory miss falls through to
    disk: entries are keyed by the candidate hash *combined with*
    ``context`` (:func:`eval_context_digest`), so results computed under
    one testbench/oracle/config can never alias another's.  Disk hits
    are promoted into the memory tier and counted in ``store_hits``.

    ``keep_traces`` encodes the backend's trace contract: serial
    backends (True) demand trace-bearing entries — a trace-less disk
    entry is a *miss*, because replaying it would change the run's
    localization re-simulation count — while pool backends (False) strip
    traces from disk hits, exactly as their own compute path would.
    Either way, replay is bit-identical to what that backend computes.
    """

    __slots__ = (
        "capacity", "hits", "misses", "store_hits", "keep_traces",
        "_entries", "_store", "_context",
    )

    def __init__(
        self,
        capacity: int,
        store: PersistentEvalCache | None = None,
        context: str = "",
        keep_traces: bool = True,
    ):
        #: Maximum retained results; 0 disables the cache entirely
        #: (both tiers).
        self.capacity = max(0, int(capacity))
        self.hits = 0
        self.misses = 0
        #: Hits served from the persistent tier (disjoint from ``hits``).
        self.store_hits = 0
        #: Whether this cache's consumer wants full traces (see above).
        self.keep_traces = keep_traces
        self._entries: OrderedDict[bytes, CandidateResult] = OrderedDict()
        self._store = store
        self._context = context

    @staticmethod
    def key(design_text: str) -> bytes:
        """Content address: SHA-256 of the candidate source text."""
        return hashlib.sha256(design_text.encode("utf-8")).digest()

    def store_key(self, design_text: str) -> str:
        """Persistent-tier key: context digest x candidate digest."""
        return hashlib.sha256(
            self._context.encode("ascii") + self.key(design_text)
        ).hexdigest()

    def get(self, design_text: str) -> CandidateResult | None:
        """Return the recorded result for ``design_text``, or None."""
        if self.capacity == 0:
            return None
        key = self.key(design_text)
        result = self._entries.get(key)
        if result is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return result
        result = self._from_store(design_text)
        if result is None:
            self.misses += 1
            return None
        self.store_hits += 1
        self._insert(key, result)
        return result

    def put(self, design_text: str, result: CandidateResult) -> None:
        """Record a result (quarantined results are never cached)."""
        if self.capacity == 0 or result.failure is not None:
            return
        self._insert(self.key(design_text), result)
        if self._store is not None:
            self._store.put(self.store_key(design_text), encode_eval_payload(result))

    def info(self) -> dict[str, object]:
        """Hit/miss counters and occupancy (for benchmarks and tests)."""
        info: dict[str, object] = {
            "hits": self.hits,
            "misses": self.misses,
            "store_hits": self.store_hits,
            "size": len(self._entries),
            "capacity": self.capacity,
        }
        if self._store is not None:
            info["store"] = self._store.info()
        return info

    # -- internals -----------------------------------------------------

    def _insert(self, key: bytes, result: CandidateResult) -> None:
        """Admit one entry to the memory tier (LRU position: newest)."""
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def _from_store(self, design_text: str) -> CandidateResult | None:
        """Look one candidate up in the persistent tier (may be absent)."""
        if self._store is None:
            return None
        payload = self._store.get(self.store_key(design_text))
        if payload is None:
            return None
        result = decode_eval_payload(payload)
        if result is None:
            return None
        if self.keep_traces and result.trace is None and result.breakdown is not None:
            # A stripped *successful* entry (written by a pool run)
            # replayed into a serial run would change the localization
            # re-simulation count; recompute (and upgrade the entry).
            # Failed evaluations carry no trace on any backend, so they
            # replay as-is.
            return None
        if not self.keep_traces and result.trace is not None:
            result = result.without_trace()
        return result


# ----------------------------------------------------------------------
# Backend interface and implementations
# ----------------------------------------------------------------------


class EvaluationBackend(Protocol):
    """Interface the engine uses to score batches of candidate designs.

    Implementations must preserve input order: ``evaluate_batch(texts)[i]``
    is the result for ``texts[i]``.  The engine relies on this (plus its
    own child-index-ordered submission) for seed determinism.  Backends
    are context managers (``with make_backend(...) as backend:``) whose
    exit calls :meth:`close`.
    """

    def evaluate_batch(self, design_texts: Sequence[str]) -> list[CandidateResult]:
        """Evaluate every design text and return results in input order."""
        ...  # pragma: no cover - protocol

    def take_incidents(self) -> list[SupervisionIncident]:
        """Drain and return supervision incidents since the last drain."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release any resources (worker processes) held by the backend."""
        ...  # pragma: no cover - protocol

    def __enter__(self) -> "EvaluationBackend":
        """Enter the backend's lifecycle scope."""
        ...  # pragma: no cover - protocol

    def __exit__(self, *exc_info: object) -> None:
        """Close the backend on scope exit."""
        ...  # pragma: no cover - protocol


class SerialBackend:
    """Evaluates candidates inline in the calling process.

    This is the original CirFix behaviour and the default.  Results carry
    full traces, which the engine feeds into its trace LRU so that parent
    re-localization rarely needs to re-simulate.
    """

    def __init__(
        self,
        testbench: ast.Source,
        oracle: SimulationTrace,
        config: RepairConfig,
        testbench_text: str | None = None,
    ):
        self.testbench = testbench
        self.oracle = oracle
        self.config = config
        store = open_eval_store(config)
        context = ""
        if store is not None:
            # The persistent tier keys on the testbench text; regenerate
            # it from the tree only when a caller did not hand it over
            # (and only when the tier is actually enabled).
            if testbench_text is None:
                testbench_text = generate(testbench)
            context = eval_context_digest(testbench_text, oracle, config)
        self.cache = EvalCache(
            config.eval_cache_size, store=store, context=context, keep_traces=True
        )

    @staticmethod
    def for_problem(problem: "RepairProblem", config: RepairConfig) -> "SerialBackend":
        """Build a serial backend for a :class:`RepairProblem`."""
        return SerialBackend(
            problem.testbench, problem.oracle, config,
            testbench_text=problem.testbench_text,
        )

    def evaluate_batch(self, design_texts: Sequence[str]) -> list[CandidateResult]:
        """Evaluate the batch one candidate at a time, in order."""
        results: list[CandidateResult] = []
        for text in design_texts:
            cached = self.cache.get(text)
            if cached is not None:
                results.append(cached)
                continue
            result = evaluate_design_text(text, self.testbench, self.oracle, self.config)
            self.cache.put(text, result)
            results.append(result)
        return results

    def take_incidents(self) -> list[SupervisionIncident]:
        """Serial evaluation is unsupervised: there are never incidents."""
        return []

    def close(self) -> None:
        """No resources to release."""

    def __enter__(self) -> "SerialBackend":
        """Support ``with SerialBackend(...) as backend:``."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Nothing to release."""
        self.close()


# ----------------------------------------------------------------------
# Test-only chaos faults (docs/fuzzing.md "chaos smoke")
# ----------------------------------------------------------------------

#: Environment variable carrying a chaos spec (e.g. ``hang@3,exit@7:once``).
CHAOS_ENV = "REPRO_EVAL_CHAOS"

#: Plantable chaos fault kinds (see :func:`parse_chaos_spec`).
CHAOS_KINDS = ("hang", "exit", "balloon")

#: In-process chaos plan override, installed by
#: :func:`repro.fuzz.faults.plant_eval_chaos` (None = consult the env var).
_CHAOS_PLAN_OVERRIDE: dict[int, tuple[str, bool]] | None = None

#: Bytes the chaos balloon allocates per step / max steps without an
#: ``RLIMIT_AS`` sandbox (a ~2 GiB backstop before self-reporting OOM).
_BALLOON_STEP_BYTES = 32 << 20
_BALLOON_MAX_STEPS = 64


def parse_chaos_spec(spec: str) -> dict[int, tuple[str, bool]]:
    """Parse ``"hang@3,exit@7:once"`` into ``{ordinal: (kind, once)}``.

    Ordinals count the supervised pool's task dispatches (0-based, per
    backend instance, first attempts only) — a deterministic position in
    the engine's chunk schedule.  A ``:once`` suffix plants the fault on
    the first attempt only, so the retry succeeds (for testing the
    requeue path); without it every retry re-triggers the fault and the
    candidate is quarantined.
    """
    plan: dict[int, tuple[str, bool]] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        once = part.endswith(":once")
        if once:
            part = part[: -len(":once")]
        kind, sep, ordinal = part.partition("@")
        if not sep or kind not in CHAOS_KINDS:
            raise ValueError(
                f"bad chaos spec entry {part!r} "
                f"(expected kind@ordinal with kind in {', '.join(CHAOS_KINDS)})"
            )
        # int() alone is too permissive here: it would accept "1_0", "-1",
        # and " 3" (silently planting the wrong ordinal) and raise a bare
        # ValueError for "hang@" or "exit@5:twice" that never names the
        # offending entry.
        if not (ordinal.isascii() and ordinal.isdigit()):
            raise ValueError(
                f"bad chaos spec entry {part!r} "
                f"(ordinal must be a non-negative decimal integer, "
                f"got {ordinal!r})"
            )
        plan[int(ordinal)] = (kind, once)
    return plan


def set_chaos_plan(
    plan: dict[int, tuple[str, bool]] | None,
) -> dict[int, tuple[str, bool]] | None:
    """Install (or clear, with None) the chaos plan; returns the old one.

    Test-only: prefer the :func:`repro.fuzz.faults.plant_eval_chaos`
    context manager, which restores the previous plan on exit.  The plan
    is snapshotted by :class:`ProcessPoolBackend` at construction.
    """
    global _CHAOS_PLAN_OVERRIDE
    previous = _CHAOS_PLAN_OVERRIDE
    _CHAOS_PLAN_OVERRIDE = plan
    return previous


def _active_chaos_plan() -> dict[int, tuple[str, bool]]:
    """The chaos plan in force (override, else env var, else empty)."""
    if _CHAOS_PLAN_OVERRIDE is not None:
        return dict(_CHAOS_PLAN_OVERRIDE)
    spec = os.environ.get(CHAOS_ENV, "")
    if not spec:
        return {}
    try:
        return parse_chaos_spec(spec)
    except ValueError as exc:
        logger.warning("ignoring malformed %s (%s)", CHAOS_ENV, exc)
        return {}


def _trigger_chaos(kind: str) -> None:
    """Worker-side: misbehave like a pathological mutant (test-only)."""
    if kind == "hang":
        while True:  # killed by the supervisor's deadline
            time.sleep(0.1)
    elif kind == "exit":
        os._exit(43)  # hard worker death, bypassing all cleanup
    elif kind == "balloon":
        hog = []
        while len(hog) < _BALLOON_MAX_STEPS:  # RLIMIT_AS usually trips first
            hog.append(bytearray(_BALLOON_STEP_BYTES))
        raise MemoryError("chaos balloon reached its allocation backstop")


# ----------------------------------------------------------------------
# Supervised worker processes
# ----------------------------------------------------------------------

#: Recursion-limit ceiling applied in workers (sandbox: a runaway-deep
#: mutant raises RecursionError instead of exhausting the C stack).
_WORKER_RECURSION_LIMIT = 20_000

#: Seconds close() waits for a graceful worker shutdown before escalating
#: to terminate()/kill().
_CLOSE_GRACE_SECONDS = 2.0

#: Seconds to wait for a killed worker to be reaped.
_REAP_TIMEOUT_SECONDS = 2.0


def _sandbox_worker(config: RepairConfig) -> None:
    """Apply per-worker resource limits (worker-side, at init).

    Bounds the recursion limit, and with ``config.worker_mem_mb > 0``
    caps the worker's address-space *growth* via ``RLIMIT_AS`` so a
    memory-ballooning mutant raises ``MemoryError`` inside the worker
    (reported as a contained ``oom`` failure) instead of taking down the
    host.  The cap is relative — current address space at worker init
    plus ``worker_mem_mb`` of headroom — because a forked worker inherits
    the parent's full image: an absolute cap smaller than that image
    would make ordinary allocations fail, with the effective budget
    depending on how much memory the *parent* happened to be using.
    Best-effort: platforms without ``resource`` (or ``/proc/self/statm``)
    skip or approximate the cap.
    """
    sys.setrecursionlimit(min(sys.getrecursionlimit(), _WORKER_RECURSION_LIMIT))
    if config.worker_mem_mb > 0:
        try:
            import resource

            limit = _current_address_space() + (int(config.worker_mem_mb) << 20)
            resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
        except (ImportError, ValueError, OSError):  # pragma: no cover - platform
            logger.warning("worker_mem_mb set but RLIMIT_AS unavailable; skipping")


def _current_address_space() -> int:
    """This process's mapped address space in bytes (0 if unknown)."""
    try:
        pages = int(Path("/proc/self/statm").read_text().split()[0])
        return pages * (os.sysconf("SC_PAGE_SIZE") or 4096)
    except (OSError, ValueError, IndexError):  # pragma: no cover - platform
        return 0


def _worker_main(
    conn: multiprocessing.connection.Connection,
    testbench_text: str,
    oracle: SimulationTrace,
    config: RepairConfig,
) -> None:
    """Supervised worker loop: recv one task, evaluate, send one result.

    Messages in: ``None`` (shutdown) or ``(design_text, chaos_kind)``.
    Messages out: ``("ok", CandidateResult)`` or ``("fail", kind)`` for
    failures contained inside the worker (``oom`` for ``MemoryError``,
    ``crash`` for anything else that escapes the pipeline's guards).
    """
    _sandbox_worker(config)
    testbench = parse(testbench_text)
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if task is None:
            break
        text, chaos = task
        try:
            if chaos is not None:
                _trigger_chaos(chaos)
            result = evaluate_design_text(text, testbench, oracle, config)
            conn.send(("ok", result.without_trace()))
        except MemoryError:
            _report_failure(conn, "oom")
        except Exception:
            _report_failure(conn, "crash")


def _report_failure(conn: multiprocessing.connection.Connection, kind: str) -> None:
    """Worker-side: report a contained failure, or die visibly trying."""
    try:
        conn.send(("fail", kind))
    except Exception:  # pragma: no cover - pipe already broken
        os._exit(1)  # the supervisor will see the death instead


@dataclass
class _Task:
    """One candidate queued for supervised evaluation."""

    #: Position in the batch (``results[index]`` receives the outcome).
    index: int
    #: The candidate design text to score.
    text: str
    #: Planted chaos fault ``(kind, once)``, or None (the normal case).
    chaos: tuple[str, bool] | None = None
    #: Dispatch attempts made so far (incremented on assignment).
    attempts: int = 0


class _Worker:
    """One supervised worker process plus its duplex task pipe."""

    __slots__ = ("conn", "process", "task", "deadline")

    def __init__(self, ctx: multiprocessing.context.BaseContext, init_args: tuple):
        self.conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main, args=(child_conn, *init_args), daemon=True
        )
        self.process.start()
        # Close the child's end in the parent so a dead worker surfaces
        # as EOF on our end of the pipe.
        child_conn.close()
        #: The in-flight :class:`_Task`, or None when idle.
        self.task: _Task | None = None
        #: Monotonic deadline for the in-flight task (None = no deadline).
        self.deadline: float | None = None

    @property
    def idle(self) -> bool:
        """True when no task is in flight on this worker."""
        return self.task is None


def _mp_context() -> multiprocessing.context.BaseContext:
    """The preferred multiprocessing context (fork where available)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class ProcessPoolBackend:
    """A supervised pool of worker processes scoring candidates in parallel.

    Workers parse the instrumented testbench and load the oracle once at
    initialisation; each task ships only a candidate design text and each
    result only ``(fitness, breakdown, compiled, trace summary)``.  The
    pool persists across generations (and across seeds, when shared via
    :func:`repro.core.repair.repair`), so the per-candidate overhead is
    one pickle round-trip, not a process spawn.

    Unlike a blocking ``pool.map``, dispatch is per task under a
    supervisor: deadlines, crash detection, respawn, bounded retries,
    and quarantine (module docstring, "Fault tolerance").  Results are
    keyed by batch index, so input order is preserved regardless of
    completion order — with no faults the output is bit-identical to the
    serial backend's.
    """

    def __init__(
        self,
        testbench_text: str,
        oracle: SimulationTrace,
        config: RepairConfig,
        workers: int = 2,
    ):
        self.workers = max(1, int(workers))
        self.config = config
        self.oracle = oracle
        self._testbench_text = testbench_text
        self._testbench_tree: ast.Source | None = None  # for inline fallback
        self._init_args = (testbench_text, oracle, config)
        store = open_eval_store(config)
        context = (
            eval_context_digest(testbench_text, oracle, config)
            if store is not None
            else ""
        )
        # keep_traces=False: pool results never carry traces, so disk
        # hits are stripped to match what this backend's compute path
        # would have returned.
        self.cache = EvalCache(
            config.eval_cache_size, store=store, context=context, keep_traces=False
        )
        self._ctx = _mp_context()
        self._incidents: list[SupervisionIncident] = []
        #: Task dispatch counter (first attempts only) — the ordinal the
        #: chaos plan keys on; deterministic given the engine's schedule.
        self._dispatch_ordinal = 0
        self._chaos_plan = _active_chaos_plan()
        self._workers: list[_Worker] | None = None
        spawned: list[_Worker] = []
        try:
            for _ in range(self.workers):
                spawned.append(_Worker(self._ctx, self._init_args))
        except BaseException:
            for worker in spawned:
                _discard_worker(worker)
            raise
        self._workers = spawned

    @staticmethod
    def for_problem(
        problem: "RepairProblem", config: RepairConfig, workers: int | None = None
    ) -> "ProcessPoolBackend":
        """Build a pool backend for a :class:`RepairProblem`."""
        return ProcessPoolBackend(
            problem.testbench_text,
            problem.oracle,
            config,
            workers if workers is not None else config.workers,
        )

    # ------------------------------------------------------------------
    # Batch evaluation under supervision
    # ------------------------------------------------------------------

    def evaluate_batch(self, design_texts: Sequence[str]) -> list[CandidateResult]:
        """Fan the batch out over the pool; results come back in order.

        Each candidate is dispatched as its own task (workers are
        load-balanced — a non-compiling mutant is ~100x cheaper than a
        full simulation, so larger chunks would serialise behind
        stragglers) and supervised against the configured deadline and
        retry budget.  Every input slot is always filled: a candidate
        that exhausts its retries comes back as a quarantined
        :class:`EvalFailure` result.
        """
        if self._workers is None:
            raise RuntimeError("ProcessPoolBackend used after close()")
        texts = list(design_texts)
        if not texts:
            return []
        results: list[CandidateResult | None] = [None] * len(texts)
        pending: deque[_Task] = deque()
        misses: list[int] = []
        for i, text in enumerate(texts):
            cached = self.cache.get(text)
            if cached is not None:
                results[i] = cached
                continue
            misses.append(i)
            chaos = self._chaos_plan.get(self._dispatch_ordinal)
            self._dispatch_ordinal += 1
            pending.append(_Task(i, text, chaos))
        if pending:
            self._supervise(pending, results)
        for i in misses:
            result = results[i]
            if result is not None:
                self.cache.put(texts[i], result)
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def take_incidents(self) -> list[SupervisionIncident]:
        """Drain the supervision incidents recorded since the last drain."""
        incidents, self._incidents = self._incidents, []
        return incidents

    # -- supervisor internals ------------------------------------------

    def _supervise(
        self, pending: deque[_Task], results: list[CandidateResult | None]
    ) -> None:
        """Drive tasks to completion: assign, wait, collect, recover."""
        workers = self._workers
        assert workers is not None
        while pending or any(not w.idle for w in workers):
            if not workers:
                # Could not respawn a single worker: never wedge — finish
                # the batch inline (no sandbox/deadline, but no faults
                # either outside deliberate chaos runs).
                self._evaluate_inline(pending, results)
                return
            for worker in workers:
                if not pending:
                    break
                if worker.idle:
                    task = pending.popleft()
                    if not self._assign(worker, task):
                        self._recover(worker, task, "crash", pending, results)
            busy = [w for w in workers if not w.idle]
            if not busy:
                continue
            ready = self._wait_on(busy)
            now = time.monotonic()
            for worker in busy:
                if worker.conn in ready:
                    self._collect(worker, pending, results)
                elif worker.process.sentinel in ready or not worker.process.is_alive():
                    task = worker.task
                    assert task is not None
                    self._recover(worker, task, None, pending, results)
                elif worker.deadline is not None and now >= worker.deadline:
                    task = worker.task
                    assert task is not None
                    worker.process.kill()
                    self._recover(worker, task, "timeout", pending, results)

    def _assign(self, worker: _Worker, task: _Task) -> bool:
        """Send one task to an idle worker; False if the pipe is broken."""
        task.attempts += 1
        chaos_kind: str | None = None
        if task.chaos is not None:
            kind, once = task.chaos
            if not once or task.attempts == 1:
                chaos_kind = kind
        try:
            worker.conn.send((task.text, chaos_kind))
        except (OSError, ValueError):
            return False
        worker.task = task
        deadline_s = self.config.eval_deadline_seconds
        worker.deadline = (
            time.monotonic() + deadline_s if deadline_s > 0 else None
        )
        return True

    def _wait_on(self, busy: list[_Worker]) -> set[object]:
        """Block until a result, a worker death, or the nearest deadline."""
        timeout: float | None = None
        deadlines = [w.deadline for w in busy if w.deadline is not None]
        if deadlines:
            timeout = max(0.0, min(deadlines) - time.monotonic())
        handles = [w.conn for w in busy] + [w.process.sentinel for w in busy]
        return set(multiprocessing.connection.wait(handles, timeout))

    def _collect(
        self,
        worker: _Worker,
        pending: deque[_Task],
        results: list[CandidateResult | None],
    ) -> None:
        """Read one worker message (result or contained failure)."""
        task = worker.task
        assert task is not None
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            self._recover(worker, task, None, pending, results)
            return
        worker.task = None
        worker.deadline = None
        status, payload = message
        if status == "ok":
            results[task.index] = payload
        else:
            # Contained worker-side failure ("oom"/"crash"): the worker
            # survives, only the candidate is retried or quarantined.
            self._fail_task(task, payload, None, pending, results)

    def _recover(
        self,
        worker: _Worker,
        task: _Task,
        kind: str | None,
        pending: deque[_Task],
        results: list[CandidateResult | None],
    ) -> None:
        """Replace a dead/killed worker and retry or quarantine its task.

        ``kind`` is ``"timeout"`` / ``"crash"`` when the supervisor knows
        why; None classifies from the exit code (SIGKILL without a
        deadline expiry reads as the OOM killer → ``"oom"``).
        """
        workers = self._workers
        assert workers is not None
        exitcode = _reap(worker)
        if worker in workers:
            workers.remove(worker)
        if kind is None:
            kind = "oom" if exitcode == -9 else "crash"
        try:
            workers.append(_Worker(self._ctx, self._init_args))
        except (OSError, ValueError):
            logger.warning(
                "could not respawn an evaluation worker (%d left)", len(workers)
            )
        self._fail_task(task, kind, exitcode, pending, results)

    def _fail_task(
        self,
        task: _Task,
        kind: str,
        exitcode: int | None,
        pending: deque[_Task],
        results: list[CandidateResult | None],
    ) -> None:
        """Requeue a failed task, or quarantine it when retries are spent."""
        quarantined = task.attempts > self.config.eval_max_retries
        self._incidents.append(
            SupervisionIncident(kind, task.attempts, quarantined, exitcode)
        )
        logger.warning(
            "candidate evaluation %s (attempt %d): %s",
            kind, task.attempts,
            "quarantined" if quarantined else "requeued",
        )
        if quarantined:
            results[task.index] = _quarantine_result(kind, task.attempts)
        else:
            pending.append(task)

    def _evaluate_inline(
        self, pending: deque[_Task], results: list[CandidateResult | None]
    ) -> None:
        """Last-resort serial fallback when no worker can be spawned."""
        logger.warning(
            "no evaluation workers available; finishing the batch inline"
        )
        if self._testbench_tree is None:
            self._testbench_tree = parse(self._testbench_text)
        while pending:
            task = pending.popleft()
            results[task.index] = evaluate_design_text(
                task.text, self._testbench_tree, self.oracle, self.config
            ).without_trace()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the pool down gracefully, escalating only on a timeout.

        Workers receive a shutdown sentinel and get a short grace period
        to drain and exit on their own (so a normal shutdown never
        discards in-flight state); stragglers are terminated, then
        killed.  Idempotent.
        """
        workers, self._workers = self._workers, None
        if workers is None:
            return
        for worker in workers:
            try:
                worker.conn.send(None)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + _CLOSE_GRACE_SECONDS
        for worker in workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
        for worker in workers:
            _discard_worker(worker)

    def __enter__(self) -> "ProcessPoolBackend":
        """Support ``with ProcessPoolBackend(...) as backend:``."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Close the pool on scope exit."""
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def _reap(worker: _Worker) -> int | None:
    """Join (escalating to kill) one worker and close its pipe."""
    process = worker.process
    if process.is_alive():
        process.join(_REAP_TIMEOUT_SECONDS)
        if process.is_alive():
            process.kill()
            process.join(_REAP_TIMEOUT_SECONDS)
    try:
        worker.conn.close()
    except (OSError, ValueError):  # pragma: no cover - already closed
        pass
    return process.exitcode


def _discard_worker(worker: _Worker) -> None:
    """Terminate-then-kill one worker during shutdown (best-effort)."""
    process = worker.process
    if process.is_alive():
        process.terminate()
        process.join(_REAP_TIMEOUT_SECONDS)
        if process.is_alive():  # pragma: no cover - stubborn worker
            process.kill()
            process.join(_REAP_TIMEOUT_SECONDS)
    try:
        worker.conn.close()
    except (OSError, ValueError):  # pragma: no cover - already closed
        pass


# ----------------------------------------------------------------------
# Unsupervised baseline (benchmarks only)
# ----------------------------------------------------------------------

#: Per-worker state installed by :func:`_pool_initializer` — the retained
#: pre-supervision ``multiprocessing.Pool`` path, kept as the baseline
#: that ``benchmarks/test_supervised_eval.py`` measures overhead against.
_WORKER_STATE: dict[str, object] = {}


def _pool_initializer(testbench_text: str, oracle: SimulationTrace, config: RepairConfig) -> None:
    """Worker-side init: parse the instrumented testbench and keep the oracle."""
    _WORKER_STATE["testbench"] = parse(testbench_text)
    _WORKER_STATE["oracle"] = oracle
    _WORKER_STATE["config"] = config


def _pool_evaluate(design_text: str) -> CandidateResult:
    """Worker-side task: evaluate one candidate against the cached state."""
    result = evaluate_design_text(
        design_text,
        _WORKER_STATE["testbench"],  # type: ignore[arg-type]
        _WORKER_STATE["oracle"],  # type: ignore[arg-type]
        _WORKER_STATE["config"],  # type: ignore[arg-type]
    )
    return result.without_trace()


def make_backend(problem: "RepairProblem", config: RepairConfig) -> EvaluationBackend:
    """Build the evaluation backend selected by ``config``.

    ``config.backend`` is ``"serial"``, ``"process"``, or ``"auto"``
    (pool when ``config.workers > 1``, serial otherwise).  If the host
    cannot start worker processes — including ``backend = "process"``
    inside an already-pooled (daemonic) trial or scenario worker, which
    may not spawn children — the pool silently degrades to a
    :class:`SerialBackend`: results are identical, only slower.
    """
    choice = config.backend
    workers = max(1, config.workers)
    if choice not in BACKEND_NAMES:
        raise ValueError(
            f"unknown evaluation backend {choice!r}; "
            f"valid backends: {', '.join(BACKEND_NAMES)}"
        )
    if choice == "serial" or (choice == "auto" and workers <= 1):
        return SerialBackend.for_problem(problem, config)
    if multiprocessing.current_process().daemon:
        logger.warning("already inside a worker process; evaluating serially")
        return SerialBackend.for_problem(problem, config)
    try:
        return ProcessPoolBackend.for_problem(problem, config, workers)
    except (OSError, ValueError, ImportError, AssertionError) as exc:
        logger.warning("process pool unavailable (%s); falling back to serial", exc)
        return SerialBackend.for_problem(problem, config)
