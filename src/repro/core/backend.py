"""Candidate-evaluation backends for the repair engine.

The paper reports that >90% of repair wall-clock goes to fitness
evaluations (candidate simulations), and evaluations within a generation
are independent.  This module factors the evaluation pipeline
(parse → splice testbench → elaborate → simulate → fitness) out of the
engine and puts an :class:`EvaluationBackend` interface in front of it:

- :class:`SerialBackend` evaluates candidates inline in the engine's
  process — the paper's original behaviour and the default;
- :class:`ProcessPoolBackend` keeps a persistent ``multiprocessing`` pool
  whose workers parse the instrumented testbench and load the oracle
  **once** at initialisation, then score batches of candidate design
  texts, returning compact ``(fitness, breakdown, compiled, summary)``
  results (full traces never cross the process boundary).

Both backends run the identical pipeline on the identical inputs, so a
batch submitted in child-index order produces identical results either
way — the engine's determinism guarantee does not depend on the backend
(see ``docs/repair_engine.md``).
"""

from __future__ import annotations

import logging
import multiprocessing
import multiprocessing.pool
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence

from ..hdl import ParseError, ast, parse
from ..hdl.lexer import LexError
from ..hdl.node_ids import max_node_id, number_nodes
from ..instrument.trace import SimulationTrace, output_mismatch
from ..sim.elaborate import ElaborationError
from ..sim.simulator import Simulator
from .config import BACKEND_NAMES, RepairConfig
from .fitness import FitnessBreakdown, evaluate_fitness

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (repair → backend)
    from .repair import RepairProblem

logger = logging.getLogger("repro.repair")


# ----------------------------------------------------------------------
# Result types
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TraceSummary:
    """Compact description of a candidate's simulation trace.

    Pool workers return this instead of the full trace: it is enough for
    engine diagnostics and keeps per-task result payloads small.  A parent
    whose full trace is needed again (fault re-localization) is
    re-simulated in the engine's process.
    """

    #: Number of recorded trace rows (``$cirfix_record`` samples).
    rows: int
    #: Number of distinct recorded variables.
    recorded_vars: int
    #: Output wires that ever differ from the oracle, sorted.
    mismatched_vars: tuple[str, ...]


@dataclass
class CandidateResult:
    """What a backend reports for one candidate design text.

    ``trace`` is populated only when the evaluation ran in the calling
    process (:class:`SerialBackend`); pool workers drop it and keep just
    the :class:`TraceSummary`.  The trailing stats fields are the
    telemetry payload (repro.obs): measured where the evaluation actually
    ran, so pool workers batch them back with the chunk results instead
    of emitting events across the process boundary.
    """

    fitness: float
    breakdown: FitnessBreakdown | None
    compiled: bool
    trace: SimulationTrace | None
    summary: TraceSummary | None
    #: Wall-clock of the whole evaluation (codegen output → fitness).
    eval_seconds: float = 0.0
    #: Wall-clock of the frontend span (parse + splice + elaborate).
    parse_seconds: float = 0.0
    #: Wall-clock of the simulate + fitness span.
    sim_seconds: float = 0.0
    #: Scheduler callbacks the candidate's simulation executed.
    sim_events: int = 0
    #: Statements the candidate's simulation executed.
    sim_steps: int = 0

    def without_trace(self) -> "CandidateResult":
        """A copy safe to ship across a process boundary (no trace)."""
        return CandidateResult(
            self.fitness,
            self.breakdown,
            self.compiled,
            None,
            self.summary,
            eval_seconds=self.eval_seconds,
            parse_seconds=self.parse_seconds,
            sim_seconds=self.sim_seconds,
            sim_events=self.sim_events,
            sim_steps=self.sim_steps,
        )


# ----------------------------------------------------------------------
# The evaluation pipeline (shared by every backend)
# ----------------------------------------------------------------------


def splice_testbench(design: ast.Source, testbench: ast.Source) -> ast.Source:
    """Combine a freshly parsed design with cloned testbench modules.

    Candidate evaluation used to re-parse ``design_text + testbench_text``
    for every candidate even though the testbench never changes.  Instead
    the pre-parsed testbench module ASTs are cloned and spliced after the
    design's modules; clones are renumbered above the design's ids so the
    combined tree keeps unique node ids.  Cloning is measurably cheaper
    than re-lexing/re-parsing the testbench text.
    """
    clones = [module.clone() for module in testbench.modules]
    next_id = max_node_id(design) + 1
    for module in clones:
        next_id = number_nodes(module, next_id)
    return ast.Source(list(design.modules) + clones)


def evaluate_design_text(
    design_text: str,
    testbench: ast.Source,
    oracle: SimulationTrace,
    config: RepairConfig,
) -> CandidateResult:
    """Score one candidate design: parse → splice → simulate → fitness.

    Never raises: a candidate that fails to parse or elaborate scores 0.0
    with ``compiled=False``; one that crashes at runtime scores 0.0 with
    ``compiled=True`` (the search must survive arbitrary mutants).

    Each result carries its telemetry stats (phase wall-clock and the
    simulator's event-loop counters) measured in the process that ran
    the pipeline — serial callers and pool workers report identically.
    """
    started = time.perf_counter()
    try:
        design = parse(design_text)
        combined = splice_testbench(design, testbench)
        sim = Simulator(combined, max_steps=config.max_sim_steps)
    except (ParseError, LexError, ElaborationError, RecursionError):
        elapsed = time.perf_counter() - started
        return CandidateResult(
            0.0, None, False, None, None,
            eval_seconds=elapsed, parse_seconds=elapsed,
        )
    parse_seconds = time.perf_counter() - started
    try:
        result = sim.run(config.max_sim_time)
    except Exception:
        # Any uncontained runtime failure (width-cap violations from a
        # monitor callback, pathological recursion, ...) scores zero.
        elapsed = time.perf_counter() - started
        return CandidateResult(
            0.0, None, True, None, None,
            eval_seconds=elapsed,
            parse_seconds=parse_seconds,
            sim_seconds=elapsed - parse_seconds,
            sim_events=sim.scheduler.events_executed,
            sim_steps=sim.steps_used,
        )
    trace = SimulationTrace.from_records(result.trace)
    breakdown = evaluate_fitness(trace, oracle, config.phi)
    summary = TraceSummary(
        rows=len(trace),
        recorded_vars=len(trace.variables()),
        mismatched_vars=tuple(sorted(output_mismatch(oracle, trace))),
    )
    elapsed = time.perf_counter() - started
    return CandidateResult(
        breakdown.fitness, breakdown, True, trace, summary,
        eval_seconds=elapsed,
        parse_seconds=parse_seconds,
        sim_seconds=elapsed - parse_seconds,
        sim_events=result.events_executed,
        sim_steps=result.steps_used,
    )


# ----------------------------------------------------------------------
# Backend interface and implementations
# ----------------------------------------------------------------------


class EvaluationBackend(Protocol):
    """Interface the engine uses to score batches of candidate designs.

    Implementations must preserve input order: ``evaluate_batch(texts)[i]``
    is the result for ``texts[i]``.  The engine relies on this (plus its
    own child-index-ordered submission) for seed determinism.
    """

    def evaluate_batch(self, design_texts: Sequence[str]) -> list[CandidateResult]:
        """Evaluate every design text and return results in input order."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release any resources (worker processes) held by the backend."""
        ...  # pragma: no cover - protocol


class SerialBackend:
    """Evaluates candidates inline in the calling process.

    This is the original CirFix behaviour and the default.  Results carry
    full traces, which the engine feeds into its trace LRU so that parent
    re-localization rarely needs to re-simulate.
    """

    def __init__(self, testbench: ast.Source, oracle: SimulationTrace, config: RepairConfig):
        self.testbench = testbench
        self.oracle = oracle
        self.config = config

    @staticmethod
    def for_problem(problem: "RepairProblem", config: RepairConfig) -> "SerialBackend":
        """Build a serial backend for a :class:`RepairProblem`."""
        return SerialBackend(problem.testbench, problem.oracle, config)

    def evaluate_batch(self, design_texts: Sequence[str]) -> list[CandidateResult]:
        """Evaluate the batch one candidate at a time, in order."""
        return [
            evaluate_design_text(text, self.testbench, self.oracle, self.config)
            for text in design_texts
        ]

    def close(self) -> None:
        """No resources to release."""


#: Per-worker state installed by :func:`_pool_initializer` (each worker
#: parses the testbench and keeps the oracle exactly once).
_WORKER_STATE: dict[str, object] = {}


def _pool_initializer(testbench_text: str, oracle: SimulationTrace, config: RepairConfig) -> None:
    """Worker-side init: parse the instrumented testbench and keep the oracle."""
    _WORKER_STATE["testbench"] = parse(testbench_text)
    _WORKER_STATE["oracle"] = oracle
    _WORKER_STATE["config"] = config


def _pool_evaluate(design_text: str) -> CandidateResult:
    """Worker-side task: evaluate one candidate against the cached state."""
    result = evaluate_design_text(
        design_text,
        _WORKER_STATE["testbench"],  # type: ignore[arg-type]
        _WORKER_STATE["oracle"],  # type: ignore[arg-type]
        _WORKER_STATE["config"],  # type: ignore[arg-type]
    )
    return result.without_trace()


def _mp_context() -> multiprocessing.context.BaseContext:
    """The preferred multiprocessing context (fork where available)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class ProcessPoolBackend:
    """A persistent worker pool evaluating candidate batches in parallel.

    Workers parse the instrumented testbench and load the oracle once at
    initialisation; each task ships only a candidate design text and each
    result only ``(fitness, breakdown, compiled, trace summary)``.  The
    pool persists across generations (and across seeds, when shared via
    :func:`repro.core.repair.repair`), so the per-candidate overhead is
    one pickle round-trip, not a process spawn.
    """

    def __init__(
        self,
        testbench_text: str,
        oracle: SimulationTrace,
        config: RepairConfig,
        workers: int = 2,
    ):
        self.workers = max(1, int(workers))
        self._pool: multiprocessing.pool.Pool | None = _mp_context().Pool(
            processes=self.workers,
            initializer=_pool_initializer,
            initargs=(testbench_text, oracle, config),
        )

    @staticmethod
    def for_problem(
        problem: "RepairProblem", config: RepairConfig, workers: int | None = None
    ) -> "ProcessPoolBackend":
        """Build a pool backend for a :class:`RepairProblem`."""
        return ProcessPoolBackend(
            problem.testbench_text,
            problem.oracle,
            config,
            workers if workers is not None else config.workers,
        )

    def evaluate_batch(self, design_texts: Sequence[str]) -> list[CandidateResult]:
        """Fan the batch out over the pool; results come back in order."""
        if self._pool is None:
            raise RuntimeError("ProcessPoolBackend used after close()")
        if not design_texts:
            return []
        # chunksize=1 keeps workers load-balanced: candidate costs vary
        # wildly (a non-compiling mutant is ~100x cheaper than a full
        # simulation), so large chunks would serialise behind stragglers.
        return self._pool.map(_pool_evaluate, list(design_texts), chunksize=1)

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def make_backend(problem: "RepairProblem", config: RepairConfig) -> EvaluationBackend:
    """Build the evaluation backend selected by ``config``.

    ``config.backend`` is ``"serial"``, ``"process"``, or ``"auto"``
    (pool when ``config.workers > 1``, serial otherwise).  If the host
    cannot start worker processes — including ``backend = "process"``
    inside an already-pooled (daemonic) trial or scenario worker, which
    may not spawn children — the pool silently degrades to a
    :class:`SerialBackend`: results are identical, only slower.
    """
    choice = config.backend
    workers = max(1, config.workers)
    if choice not in BACKEND_NAMES:
        raise ValueError(
            f"unknown evaluation backend {choice!r}; "
            f"valid backends: {', '.join(BACKEND_NAMES)}"
        )
    if choice == "serial" or (choice == "auto" and workers <= 1):
        return SerialBackend.for_problem(problem, config)
    if multiprocessing.current_process().daemon:
        logger.warning("already inside a worker process; evaluating serially")
        return SerialBackend.for_problem(problem, config)
    try:
        return ProcessPoolBackend.for_problem(problem, config, workers)
    except (OSError, ValueError, ImportError, AssertionError) as exc:
        logger.warning("process pool unavailable (%s); falling back to serial", exc)
        return SerialBackend.for_problem(problem, config)
