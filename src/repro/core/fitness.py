"""The CirFix fitness function (paper §3.2).

Given a simulation result ``S`` and expected output ``O`` (both
``Time -> Var -> {0,1,x,z}`` traces), the fitness sums a per-bit score over
every timestamp the oracle annotates:

====================  =======
bit pair (O, S)        score
====================  =======
(0,0) or (1,1)          +1
(x,x) or (z,z)          +φ
(1,0) or (0,1)          -1
any other x/z pair      -φ
====================  =======

``total`` accumulates the corresponding positive weights, and the
normalised fitness is ``max(0, sum) / total`` — 1.0 means a plausible
(testbench-adequate) repair.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..instrument.trace import SimulationTrace
from ..sim.logic import Value

#: Paper default x/z penalty weight (§4.2: φ = 2).
DEFAULT_PHI = 2.0


@dataclass(frozen=True)
class FitnessBreakdown:
    """Fitness with its components, for analysis and tests."""

    fitness: float
    raw_sum: float
    total: float
    matches: int
    mismatches: int
    xz_positions: int

    @property
    def is_plausible(self) -> bool:
        """True for a testbench-adequate candidate (fitness == 1.0)."""
        return self.fitness >= 1.0


def _bit_score(expected: str, actual: str, phi: float) -> tuple[float, float]:
    """Return (sum contribution, total contribution) for one bit pair."""
    if expected in "01" and actual in "01":
        return (1.0, 1.0) if expected == actual else (-1.0, 1.0)
    if expected == actual:  # (x,x) or (z,z)
        return phi, phi
    return -phi, phi


def evaluate_fitness(
    simulated: SimulationTrace,
    expected: SimulationTrace,
    phi: float = DEFAULT_PHI,
) -> FitnessBreakdown:
    """Score ``simulated`` against the oracle ``expected``.

    Timestamps are matched exactly: the oracle defines which (time, var)
    pairs count (§3.2 footnote — the developer may provide expected values
    only at certain intervals).  A (time, var) pair the candidate failed to
    produce at all is scored as an all-x observation.
    """
    simulated_by_time: dict[int, dict[str, Value]] = {
        time: values for time, values in simulated.rows
    }
    raw_sum = 0.0
    total = 0.0
    matches = mismatches = xz_positions = 0
    for time, expected_values in expected.rows:
        actual_values = simulated_by_time.get(time)
        for var, exp in expected_values.items():
            if actual_values is not None and var in actual_values:
                act = actual_values[var].resized(exp.width)
            else:
                act = Value.unknown(exp.width)
            for bit in range(exp.width):
                expected_bit = exp.bit(bit)
                actual_bit = act.bit(bit)
                score, weight = _bit_score(expected_bit, actual_bit, phi)
                raw_sum += score
                total += weight
                if expected_bit in "xz" or actual_bit in "xz":
                    xz_positions += 1
                if score > 0:
                    matches += 1
                else:
                    mismatches += 1
    if total <= 0:
        return FitnessBreakdown(0.0, raw_sum, total, matches, mismatches, xz_positions)
    fitness = max(0.0, raw_sum) / total
    return FitnessBreakdown(fitness, raw_sum, total, matches, mismatches, xz_positions)


def fitness_score(
    simulated: SimulationTrace,
    expected: SimulationTrace,
    phi: float = DEFAULT_PHI,
) -> float:
    """Convenience wrapper returning only the normalised fitness."""
    return evaluate_fitness(simulated, expected, phi).fitness
