"""GP repair operators: mutation (replace / insert / delete) and
single-point crossover (paper §3.4), plus template application (§3.3).

All operators act on :class:`~repro.core.patch.Patch` values against the
current *variant tree* (the base design with the parent's patch applied),
so the fault/fix spaces reflect every edit the parent already carries.
"""

from __future__ import annotations

import random

from ..hdl import ast
from . import fixloc
from .patch import Edit, Patch
from .templates import applicable_templates


def mutate(
    parent: Patch,
    variant_tree: ast.Source,
    fault_ids: set[int],
    rng: random.Random,
    delete_threshold: float = 0.3,
    insert_threshold: float = 0.3,
) -> Patch:
    """Apply one mutation (replace/insert/delete) to ``parent``.

    The sub-operator is chosen by the user thresholds (paper §4.2 defaults:
    delete 0.3, insert 0.3, replace 0.4).  When the chosen sub-operator has
    no applicable site the parent is returned unchanged (a neutral child).
    """
    roll = rng.random()
    if roll < delete_threshold:
        return _mutate_delete(parent, variant_tree, fault_ids, rng)
    if roll < delete_threshold + insert_threshold:
        return _mutate_insert(parent, variant_tree, fault_ids, rng)
    return _mutate_replace(parent, variant_tree, fault_ids, rng)


def _fault_nodes(variant_tree: ast.Source, fault_ids: set[int]) -> list[ast.Node]:
    return [
        node
        for node in variant_tree.walk()
        if node.node_id is not None and node.node_id in fault_ids
    ]


def _mutate_delete(
    parent: Patch, variant_tree: ast.Source, fault_ids: set[int], rng: random.Random
) -> Patch:
    targets = fixloc.deletable_targets(variant_tree, fault_ids)
    if not targets:
        return parent
    target = rng.choice(targets)
    assert target.node_id is not None
    return parent.extended(Edit("delete", target.node_id))


def _mutate_insert(
    parent: Patch, variant_tree: ast.Source, fault_ids: set[int], rng: random.Random
) -> Patch:
    sources = fixloc.insertion_sources(variant_tree)
    anchors = [
        node
        for node in fixloc.insertion_anchors(variant_tree)
        if node.node_id in fault_ids
    ] or fixloc.insertion_anchors(variant_tree)
    if not sources or not anchors:
        return parent
    source = rng.choice(sources)
    anchor = rng.choice(anchors)
    assert anchor.node_id is not None
    return parent.extended(Edit("insert_after", anchor.node_id, source.clone()))


def _mutate_replace(
    parent: Patch, variant_tree: ast.Source, fault_ids: set[int], rng: random.Random
) -> Patch:
    fault_nodes = _fault_nodes(variant_tree, fault_ids)
    if not fault_nodes:
        return parent
    # Try a few target choices before giving up (some targets have no
    # compatible sources).
    for _ in range(8):
        target = rng.choice(fault_nodes)
        sources = fixloc.replacement_sources(variant_tree, target)
        if _is_lhs_position(variant_tree, target):
            sources = [s for s in sources if fixloc.is_lvalue_expr(s)]
        if not sources:
            continue
        source = rng.choice(sources)
        assert target.node_id is not None
        return parent.extended(Edit("replace", target.node_id, source.clone()))
    return parent


def _is_lhs_position(tree: ast.Source, node: ast.Node) -> bool:
    """Is ``node`` the direct LHS of some assignment?"""
    for candidate in tree.walk():
        if isinstance(
            candidate, (ast.BlockingAssign, ast.NonBlockingAssign, ast.ContinuousAssign)
        ):
            if candidate.lhs is node:
                return True
    return False


def apply_fix_pattern(
    parent: Patch,
    variant_tree: ast.Source,
    fault_ids: set[int],
    rng: random.Random,
    extended: bool = False,
) -> Patch:
    """Apply a random repair template to a random applicable fault node
    (Algorithm 1 line 8).  With ``extended``, the future-work template set
    from :mod:`repro.core.templates_ext` joins the candidate pool."""
    candidates: list[tuple[int, str]] = []
    for node in _fault_nodes(variant_tree, fault_ids):
        for name in applicable_templates(node):
            assert node.node_id is not None
            candidates.append((node.node_id, name))
    if extended:
        from .templates_ext import applicable_extended, extra_candidates

        for node in _fault_nodes(variant_tree, fault_ids):
            for name in applicable_extended(node):
                assert node.node_id is not None
                candidates.append((node.node_id, name))
        candidates.extend(extra_candidates(variant_tree, fault_ids))
    # Sensitivity templates also apply to always blocks *containing* faulty
    # code (and to their individual sensitivity items) even when the Always
    # node itself is not in the fault set — the sensitivity list governs
    # when the implicated assignments execute.
    for node in variant_tree.walk():
        if isinstance(node, ast.Always) and node.senslist is not None:
            contains_fault = any(
                child.node_id in fault_ids for child in node.walk() if child.node_id
            )
            if contains_fault:
                targets: list[ast.Node] = [node, *node.senslist.items]
                for target in targets:
                    for name in applicable_templates(target):
                        if target.node_id is not None:
                            candidates.append((target.node_id, name))
    if not candidates:
        return parent
    # Mixed sampling.  Pattern-first choice (uniform over template names,
    # then over that pattern's targets) keeps rare-but-decisive patterns —
    # one sensitivity list among dozens of numeric literals — discoverable;
    # uniform choice over (target, template) pairs favours target-rich
    # patterns when the defect is numeric.  Half/half covers both shapes.
    if rng.random() < 0.5:
        by_template: dict[str, list[int]] = {}
        for target_id, template in candidates:
            by_template.setdefault(template, []).append(target_id)
        template = rng.choice(sorted(by_template))
        target_id = rng.choice(by_template[template])
    else:
        target_id, template = rng.choice(candidates)
    return parent.extended(Edit("template", target_id, template=template))


def crossover(
    parent1: Patch, parent2: Patch, rng: random.Random
) -> tuple[Patch, Patch]:
    """Standard single-point crossover over edit lists (paper §3.4).

    A cut point is picked in each parent; the edit-suffixes to the right of
    the points are swapped, producing two children each carrying genetic
    material from both parents.
    """
    cut1 = rng.randint(0, len(parent1.edits))
    cut2 = rng.randint(0, len(parent2.edits))
    child1 = Patch(parent1.edits[:cut1] + parent2.edits[cut2:])
    child2 = Patch(parent2.edits[:cut2] + parent1.edits[cut1:])
    return child1, child2
