"""Parent selection: tournament selection with elitism (paper §3.5)."""

from __future__ import annotations

import random
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def tournament_select(
    population: Sequence[T],
    fitness_of: Callable[[T], float],
    rng: random.Random,
    tournament_size: int = 5,
) -> T:
    """Pick ``tournament_size`` random members and return the fittest.

    The paper uses t = 5 "to increase the selection pressure on candidate
    variants".
    """
    if not population:
        raise ValueError("cannot select from an empty population")
    pool_size = min(tournament_size, len(population))
    pool = [rng.choice(population) for _ in range(pool_size)]
    return max(pool, key=fitness_of)


def elite(
    population: Sequence[T],
    fitness_of: Callable[[T], float],
    fraction: float = 0.05,
) -> list[T]:
    """The top ``fraction`` of the population, fittest first (elitism: the
    paper propagates the top e = 5% unchanged into the next generation)."""
    if not population:
        return []
    count = max(1, int(len(population) * fraction))
    ranked = sorted(population, key=fitness_of, reverse=True)
    return list(ranked[:count])
