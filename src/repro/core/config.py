"""CirFix configuration (paper §4.2 experimental parameters).

The defaults mirror the paper: population 5000, 8 generations, repair
template threshold 0.2, mutation threshold 0.7, delete/insert/replace
thresholds 0.3/0.3/0.4, tournament size 5, elitism 5%, φ = 2, 12-hour
wall-clock bound.  Tests and benchmarks use scaled-down budgets via
:meth:`RepairConfig.scaled`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class RepairConfig:
    """All knobs of the CirFix search (Algorithm 1 inputs)."""

    #: GP population size (paper: 5000).
    population_size: int = 5000
    #: Maximum generations of evolution (paper: 8).
    max_generations: int = 8
    #: Probability of applying a repair template instead of an operator.
    rt_threshold: float = 0.2
    #: Probability of mutation (vs crossover) among operator applications.
    mut_threshold: float = 0.7
    #: Mutation sub-operator thresholds (delete, insert; replace is the rest).
    delete_threshold: float = 0.3
    insert_threshold: float = 0.3
    #: Tournament size for parent selection (paper: t = 5).
    tournament_size: int = 5
    #: Fraction of top candidates propagated unchanged (paper: e = 5%).
    elitism_fraction: float = 0.05
    #: Penalty weight for x/z bit comparisons (paper: φ = 2).
    phi: float = 2.0
    #: Wall-clock bound in seconds (paper: 12 hours).
    max_wall_seconds: float = 12 * 3600.0
    #: Hard bound on fitness evaluations (simulations); None = unbounded.
    max_fitness_evals: int | None = None
    #: Simulation bounds passed to the simulator for each candidate.
    max_sim_time: int = 1_000_000
    max_sim_steps: int = 2_000_000
    #: Budget for the minimization step's plausibility checks.
    minimize_budget: int = 256
    #: Enable the extension template set (repro.core.templates_ext) —
    #: the paper's "adding more repair templates" future-work direction.
    #: Off by default so the reproduction matches the paper's template set.
    extended_templates: bool = False
    #: Worker processes for candidate evaluation (and, in ``repair()`` /
    #: the experiment drivers, for independent trials and scenario sweeps).
    #: 1 = fully serial, the paper's original behaviour.
    workers: int = 1
    #: Evaluation backend: "serial", "process", or "auto" (process pool
    #: when ``workers > 1``).  See :mod:`repro.core.backend`.
    backend: str = "auto"
    #: Candidates submitted to the backend per batch chunk.  The engine
    #: checks budgets and scans for a plausible winner between chunks, so
    #: this bounds how much work a found repair can strand; it is part of
    #: the deterministic schedule and must not depend on worker count.
    eval_chunk_size: int = 16

    def scaled(self, **overrides: object) -> "RepairConfig":
        """A copy with some fields replaced (for laptop-scale runs)."""
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]


#: A small configuration suitable for unit tests and CI: the GP dynamics
#: are identical, only budgets shrink.
TEST_CONFIG = RepairConfig(
    population_size=24,
    max_generations=6,
    max_wall_seconds=120.0,
    max_fitness_evals=600,
    max_sim_time=200_000,
    max_sim_steps=400_000,
    minimize_budget=64,
)
